//! Vendored, dependency-free fork-join worker pool.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rayon`-shaped API the engine actually
//! needs: order-preserving parallel map over a slice, two-way [`join`],
//! and a [`Pool`] handle carrying a thread count. Everything is built on
//! [`std::thread::scope`] — no `unsafe`, no global worker threads, no
//! work stealing.
//!
//! # Determinism
//!
//! Parallelism here never changes *what* is computed, only *where*:
//!
//! * [`par_map`] splits the input into `min(threads, len)` contiguous
//!   chunks, maps each chunk independently, and concatenates the chunk
//!   results **in input order**. The output is bit-identical to
//!   `items.iter().map(f).collect()` for every thread count, provided
//!   `f` is a pure function of its argument.
//! * [`join`] always returns `(a(), b())` in that tuple order.
//!
//! OS scheduling therefore cannot reorder results; callers that only
//! apply pure functions inherit sequential semantics for free. Callers
//! that fold shared state must do so *after* the parallel section, over
//! the order-preserved output (shard-and-merge).
//!
//! # Thread-count resolution
//!
//! [`default_threads`] resolves, in order: the `MINIPOOL_THREADS`
//! environment variable, the process-wide override set by
//! [`set_default_threads`], then [`std::thread::available_parallelism`].
//! A resolved count of 1 (or tiny inputs) short-circuits to inline
//! execution with zero thread spawns.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide default thread count; 0 means "unset".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cached `MINIPOOL_THREADS` environment override; 0 means "absent".
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        // audit: allow(D2, thread-count knob only - par_map/join results are order-preserving and bit-identical at every width by construction)
        std::env::var("MINIPOOL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Sets the process-wide default thread count returned by
/// [`default_threads`] (unless `MINIPOOL_THREADS` overrides it).
/// Passing 0 clears the override.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// Resolves the default worker count: `MINIPOOL_THREADS` env var, then
/// [`set_default_threads`], then the OS-reported available parallelism
/// (1 when unknown).
pub fn default_threads() -> usize {
    let env = env_threads();
    if env > 0 {
        return env;
    }
    let set = DEFAULT_THREADS.load(Ordering::Relaxed);
    if set > 0 {
        return set;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Inputs shorter than this are always mapped inline: spawning costs
/// more than the work saved.
const MIN_ITEMS_PER_THREAD: usize = 16;

/// Balanced contiguous chunk lengths: `len` split into `k` parts whose
/// sizes differ by at most one, earlier chunks larger.
fn chunk_lens(len: usize, k: usize) -> Vec<usize> {
    let base = len / k;
    let rem = len % k;
    (0..k)
        .map(|i| base + usize::from(i < rem))
        .filter(|&l| l > 0)
        .collect()
}

/// Order-preserving parallel map: semantically identical to
/// `items.iter().map(f).collect()` for any `threads`, assuming `f` is
/// pure. Runs inline when `threads <= 1` or the input is small.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let len = items.len();
    if threads <= 1 || len < 2 * MIN_ITEMS_PER_THREAD {
        return items.iter().map(f).collect();
    }
    let k = threads.min(len / MIN_ITEMS_PER_THREAD).max(1);
    if k <= 1 {
        return items.iter().map(f).collect();
    }
    let lens = chunk_lens(len, k);
    let mut chunks: Vec<&[T]> = Vec::with_capacity(lens.len());
    let mut rest = items;
    for &l in &lens {
        let (head, tail) = rest.split_at(l);
        chunks.push(head);
        rest = tail;
    }
    let fref = &f;
    let mut out: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks[1..]
            .iter()
            .map(|chunk| scope.spawn(move || chunk.iter().map(fref).collect::<Vec<U>>()))
            .collect();
        // The caller's thread takes the first chunk instead of idling.
        let first: Vec<U> = chunks[0].iter().map(fref).collect();
        let mut parts = Vec::with_capacity(chunks.len());
        parts.push(first);
        for h in handles {
            match h.join() {
                Ok(v) => parts.push(v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        parts
    });
    let mut merged = Vec::with_capacity(len);
    for part in &mut out {
        merged.append(part);
    }
    merged
}

/// Runs both closures — concurrently when `threads > 1` — and returns
/// `(a(), b())`. The tuple order never depends on scheduling.
pub fn join<A, B, FA, FB>(threads: usize, a: FA, b: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if threads <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

/// A fork-join handle carrying a fixed worker count, for call sites
/// that thread a configured width through several parallel phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool that fans out across `threads` workers (1 = inline).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`default_threads`].
    pub fn from_env() -> Self {
        Pool::new(default_threads())
    }

    /// A pool that always runs inline.
    pub fn sequential() -> Self {
        Pool::new(1)
    }

    /// The worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Order-preserving parallel map; see [`par_map`].
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        par_map(self.threads, items, f)
    }

    /// Two-way fork-join; see [`join`].
    pub fn join<A, B, FA, FB>(&self, a: FA, b: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        join(self.threads, a, b)
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_balanced_and_cover() {
        for len in [1usize, 2, 15, 16, 33, 100, 257] {
            for k in 1..=8usize {
                let lens = chunk_lens(len, k);
                assert_eq!(lens.iter().sum::<usize>(), len);
                let max = *lens.iter().max().unwrap();
                let min = *lens.iter().min().unwrap();
                assert!(max - min <= 1, "len={len} k={k} lens={lens:?}");
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_for_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xabcd).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = par_map(threads, &items, |&x| x.wrapping_mul(x) ^ 0xabcd);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_tiny_inputs_inline() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(8, &items, |&x| x + 1), vec![2, 3, 4]);
        let empty: [u32; 0] = [];
        assert_eq!(par_map(8, &empty, |&x| x + 1), Vec::<u32>::new());
    }

    #[test]
    fn join_returns_in_tuple_order() {
        for threads in [1, 2] {
            let (a, b) = join(threads, || "left", || "right");
            assert_eq!((a, b), ("left", "right"));
        }
    }

    #[test]
    fn pool_wraps_the_free_functions() {
        let p = Pool::new(4);
        assert_eq!(p.threads(), 4);
        let items: Vec<u32> = (0..200).collect();
        assert_eq!(
            p.par_map(&items, |&x| x * 2),
            items.iter().map(|&x| x * 2).collect::<Vec<_>>()
        );
        assert_eq!(p.join(|| 1, || 2), (1, 2));
        assert_eq!(Pool::sequential().threads(), 1);
    }

    #[test]
    fn default_threads_is_positive_and_overridable() {
        assert!(default_threads() >= 1);
        // The env override is cached, so only exercise the setter here.
        set_default_threads(3);
        if env_threads() == 0 {
            assert_eq!(default_threads(), 3);
        }
        set_default_threads(0);
    }
}
