//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `criterion` its micro-benchmarks use:
//! [`Criterion::bench_function`], [`Bencher::iter`]/[`iter_batched`],
//! [`BatchSize`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Timing is plain wall-clock sampling — no outlier analysis, no plots,
//! no saved baselines — reported as mean ± stddev over the sample.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

// audit: allow-file(D2, vendored wall-clock bench shim - timing is this crate's entire purpose and it never feeds mining outcomes)

use std::time::{Duration, Instant};

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint (ignored by the shim; inputs are always per-call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Warm-up: repeat single iterations until the budget is spent,
        // which also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut per_iter = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter = b.elapsed;
            warm_iters += 1;
        }

        // Size each sample so all samples fit the measurement budget.
        let budget_per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget_per_sample / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        println!(
            "{id:<40} time: [{} ± {}]  ({} samples × {iters_per_sample} iters)",
            fmt_time(mean),
            fmt_time(var.sqrt()),
            samples.len(),
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
