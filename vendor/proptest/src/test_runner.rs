//! Case generation and execution.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed; the test fails.
    Fail(String),
    /// The case was vacuous (`prop_assume!`); it is regenerated.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The deterministic generator handed to strategies. Streams are a pure
/// function of (test name, case number), so failures always reproduce.
pub struct TestRng(StdRng);

impl TestRng {
    /// Wraps an explicitly seeded generator (used by internal tests).
    pub fn from_std(rng: StdRng) -> Self {
        TestRng(rng)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Outcome of one executed case (internal; produced by the `proptest!`
/// expansion).
pub enum CaseResult {
    /// Counted towards the case budget.
    Pass,
    /// Regenerated without being counted.
    Reject(String),
    /// Fails the test: message plus rendered inputs.
    Fail(String, String),
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `case` until `config.cases` cases pass, panicking on the first
/// failure or when rejections overwhelm generation.
pub fn run_cases(name: &str, config: &Config, mut case: impl FnMut(&mut TestRng) -> CaseResult) {
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = (config.cases as u64).saturating_mul(16).max(1024);
    let mut stream = 0u64;
    while passed < config.cases {
        let mut rng = TestRng(StdRng::seed_from_u64(
            base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ));
        stream += 1;
        match case(&mut rng) {
            CaseResult::Pass => passed += 1,
            CaseResult::Reject(reason) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {passed} passes); last reason: {reason}"
                    );
                }
            }
            CaseResult::Fail(msg, inputs) => {
                panic!(
                    "proptest '{name}' failed after {passed} passing case(s)\n\
                     {msg}\nfailing inputs:\n{inputs}"
                );
            }
        }
    }
}
