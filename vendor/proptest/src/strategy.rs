//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::fmt::Debug;
use std::rc::Rc;

/// A generation-time rejection (e.g. a filter that never matched). The
/// runner regenerates the whole case without counting it.
#[derive(Debug, Clone)]
pub struct Rejection(pub String);

/// Produces values of one type from a deterministic generator.
///
/// Unlike upstream proptest there are no value trees and no shrinking:
/// `gen_value` directly yields a value (or a [`Rejection`]).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; gives up (rejecting the case)
    /// after a bounded number of attempts.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        self.0.gen_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        for _ in 0..64 {
            let v = self.inner.gen_value(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(self.reason.clone()))
    }
}

/// A uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// Builds from the alternatives; must be non-empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union(alternatives)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

int_range_strategy!(i32, i64, u32, u64, usize, f64);

/// A literal string is a strategy generating matches of a simple regex
/// subset (character classes, `.`, `{n,m}` quantifiers).
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> Result<String, Rejection> {
        Ok(crate::string::generate(self, rng))
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                let ($($name,)+) = self;
                Ok(($($name.gen_value(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
