//! Vendored, dependency-light subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of `proptest` its test suites use: the [`proptest!`]
//! macro, strategy combinators (`prop_map`, `prop_filter`, `boxed`,
//! tuples, ranges, [`strategy::Just`], `prop_oneof!`,
//! [`collection::vec`], [`option::of`], [`arbitrary::any`] and
//! string-regex strategies for simple character-class patterns), plus the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: failing cases are **not shrunk** — the
//! failing inputs are printed verbatim — and case generation is
//! deterministic per test name, so failures always reproduce.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod string;

/// Everything a test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-style access (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` item
/// becomes a zero-argument test running [`test_runner::Config::cases`]
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &config,
                    |rng| {
                        use $crate::strategy::Strategy as _;
                        $(
                            let $arg = match ($strat).gen_value(rng) {
                                Ok(v) => v,
                                Err(r) => return $crate::test_runner::CaseResult::Reject(r.0),
                            };
                        )*
                        let inputs = format!(
                            concat!($("  ", stringify!($arg), " = {:?}\n"),*),
                            $(&$arg),*
                        );
                        let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                        match outcome {
                            Ok(()) => $crate::test_runner::CaseResult::Pass,
                            Err($crate::test_runner::TestCaseError::Reject(r)) =>
                                $crate::test_runner::CaseResult::Reject(r),
                            Err($crate::test_runner::TestCaseError::Fail(msg)) =>
                                $crate::test_runner::CaseResult::Fail(msg, inputs),
                        }
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Fails the current case (without panicking the generator loop) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (it is regenerated, not counted) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// A uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
