//! String generation from a small regex subset.
//!
//! Supports exactly the shapes this workspace's tests use: literal
//! characters, `.` (any printable ASCII), `[...]` character classes with
//! ranges and literals, and the quantifiers `{n}`, `{n,m}`, `*`, `+`, `?`
//! (starred/plus repetition is capped at 8). No alternation, anchors,
//! escapes or groups — patterns outside the subset panic, loudly, at
//! generation time.

use crate::test_runner::TestRng;
use rand::Rng as _;

enum Atom {
    /// `.` — any printable ASCII character.
    Any,
    /// `[...]` — inclusive ranges; singles are `(c, c)`.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((chars[i], chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((chars[i], chars[i]));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in pattern {pattern:?}"
                );
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '(' | ')' | '|' | '\\' | '^' | '$' => {
                panic!(
                    "regex feature {:?} not supported by the vendored proptest shim",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn draw_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Any => char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap(),
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    return char::from_u32(lo as u32 + pick).unwrap();
                }
                pick -= span;
            }
            unreachable!("pick within total")
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = rng.gen_range(piece.min..=piece.max);
        for _ in 0..n {
            out.push(draw_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::from_std(StdRng::seed_from_u64(42))
    }

    #[test]
    fn identifier_pattern_matches_shape() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[A-Za-z][A-Za-z0-9_]{0,6}", &mut rng);
            assert!((1..=7).contains(&s.len()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic());
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s:?}");
        }
    }

    #[test]
    fn dot_quantifier_bounds_length() {
        let mut rng = rng();
        let mut seen_empty = false;
        for _ in 0..300 {
            let s = generate(".{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
            seen_empty |= s.is_empty();
        }
        let _ = seen_empty; // empty strings are possible but not guaranteed
    }
}
