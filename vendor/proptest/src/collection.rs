//! Collection strategies.

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;
use rand::Rng as _;

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}
