//! `Option` strategies.

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;
use rand::Rng as _;

/// `Some(value)` three times out of four, `None` otherwise (matching
/// upstream's default Some-biased weighting).
pub fn of<S: Strategy>(value: S) -> OptionStrategy<S> {
    OptionStrategy { value }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    value: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Result<Option<S::Value>, Rejection> {
        if rng.gen_range(0..4usize) == 0 {
            Ok(None)
        } else {
            self.value.gen_value(rng).map(Some)
        }
    }
}
