//! `any::<T>()` strategies for primitive types.

use crate::strategy::{Rejection, Strategy};
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one value from the whole domain.
    fn draw(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn draw(rng: &mut TestRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn draw(rng: &mut TestRng) -> Self {
        rng.gen::<u32>()
    }
}

impl Arbitrary for usize {
    fn draw(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() as usize
    }
}

impl Arbitrary for bool {
    fn draw(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn draw(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(T::draw(rng))
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
