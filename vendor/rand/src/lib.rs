//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods `gen`, `gen_range` and `gen_bool`, and [`seq::SliceRandom`]
//! shuffling. The generator is xoshiro256++ seeded via SplitMix64 — *not*
//! the ChaCha12 core of upstream `StdRng` — so streams differ from
//! upstream, but every consumer in this repo only relies on streams being
//! deterministic per seed, which this shim guarantees.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro256++ must not start from the all-zero state
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A value drawable uniformly from the generator's full word stream
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64()
    }
}

/// A range a uniform value can be sampled from.
pub trait SampleRange<T> {
    /// Draws one value from the range; panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize);

/// A uniform draw from `[0, span)` by rejection, so all values are
/// equally likely.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.unit_f64() < p
    }

    /// A draw from the full-word (`Standard`) distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
            let f = rng.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 40_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
