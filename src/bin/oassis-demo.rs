//! `oassis-demo` — a small CLI for exploring the library.
//!
//! ```sh
//! cargo run --release --bin oassis-demo -- domains
//! cargo run --release --bin oassis-demo -- mine figure1 --theta 0.4
//! cargo run --release --bin oassis-demo -- mine travel --theta 0.2 --members 100
//! cargo run --release --bin oassis-demo -- parse examples/query.oql   # or any file
//! cargo run --release --bin oassis-demo -- export-ontology figure1 out.json
//! ```

use oassis::crowd::population::{generate, HabitProfile, PopulationConfig};
use oassis::ontology::domains::{culinary, figure1, self_treatment, travel, DomainScale};
use oassis::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  oassis-demo domains\n  oassis-demo mine <figure1|travel|culinary|self-treatment> \
         [--theta X] [--members N] [--seed S]\n  oassis-demo parse <query-file>\n  \
         oassis-demo export-ontology <domain> <out.json>"
    );
    ExitCode::FAILURE
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("domains") => {
            println!("built-in domains:");
            for (name, ont, query, dag) in [
                (
                    "figure1",
                    figure1::ontology(),
                    figure1::SIMPLE_QUERY.to_owned(),
                    112,
                ),
                {
                    let d = travel(DomainScale::paper());
                    ("travel", d.ontology, d.query, 4773)
                },
                {
                    let d = culinary(DomainScale::paper());
                    ("culinary", d.ontology, d.query, 10512)
                },
                {
                    let d = self_treatment(DomainScale::paper());
                    ("self-treatment", d.ontology, d.query, 2310)
                },
            ] {
                println!(
                    "  {name:<15} {:>5} elements  {:>5} facts  assignment DAG ≈ {dag} nodes",
                    ont.vocab().num_elems(),
                    ont.num_facts()
                );
                let _ = query;
            }
            ExitCode::SUCCESS
        }
        Some("parse") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse(&src) {
                Ok(q) => {
                    println!("parsed OK; canonical form:\n{q}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("parse error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("export-ontology") => {
            let (Some(domain), Some(out)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let ont = match domain.as_str() {
                "figure1" => figure1::ontology(),
                "travel" => travel(DomainScale::paper()).ontology,
                "culinary" => culinary(DomainScale::paper()).ontology,
                "self-treatment" => self_treatment(DomainScale::paper()).ontology,
                other => {
                    eprintln!("unknown domain {other}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = std::fs::write(out, ont.to_json()) {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Some("mine") => {
            let Some(domain) = args.get(1) else {
                return usage();
            };
            let theta: f64 = flag(&args, "--theta")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.2);
            let members: usize = flag(&args, "--members")
                .and_then(|s| s.parse().ok())
                .unwrap_or(60);
            let seed: u64 = flag(&args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(7);

            let (ont, query) = match domain.as_str() {
                "figure1" => (figure1::ontology(), figure1::SIMPLE_QUERY.to_owned()),
                "travel" => {
                    let d = travel(DomainScale::small());
                    (d.ontology, d.query)
                }
                "culinary" => {
                    let d = culinary(DomainScale::small());
                    (d.ontology, d.query)
                }
                "self-treatment" => {
                    let d = self_treatment(DomainScale::small());
                    (d.ontology, d.query)
                }
                other => {
                    eprintln!("unknown domain {other}");
                    return ExitCode::FAILURE;
                }
            };
            let v = ont.vocab();

            // a small demo crowd: for figure1 use the Table-3 histories;
            // for generated domains plant a few habits over the domain's
            // vocabulary
            let crowd_members: Vec<SimulatedMember> = if domain == "figure1" {
                let [d1, d2] = figure1::personal_dbs(&ont);
                let mut tx = d1;
                for _ in 0..3 {
                    tx.extend(d2.iter().cloned());
                }
                (0..members.clamp(1, 20) as u64)
                    .map(|i| {
                        SimulatedMember::new(
                            PersonalDb::from_transactions(tx.clone()),
                            MemberBehavior::default(),
                            AnswerModel::Exact,
                            i,
                        )
                    })
                    .collect()
            } else {
                let fact = |s: &str, r: &str, o: &str| v.fact(s, r, o).expect("domain term");
                let profiles = match domain.as_str() {
                    "travel" => vec![
                        HabitProfile {
                            facts: vec![
                                fact("ActivityKind5", "doAt", "Attraction1"),
                                fact("Snack1", "eatAt", "Restaurant1"),
                            ],
                            adoption: 0.95,
                            frequency: 0.6,
                        },
                        HabitProfile {
                            facts: vec![
                                fact("ActivityKind7", "doAt", "Attraction2"),
                                fact("Snack2", "eatAt", "Restaurant2"),
                            ],
                            adoption: 0.7,
                            frequency: 0.4,
                        },
                    ],
                    "culinary" => vec![
                        HabitProfile {
                            facts: vec![fact("DishKind4", "servedWith", "DrinkKind3")],
                            adoption: 0.9,
                            frequency: 0.55,
                        },
                        HabitProfile {
                            facts: vec![
                                fact("DishKind11", "servedWith", "DrinkKind7"),
                                fact("DishKind12", "servedWith", "DrinkKind7"),
                            ],
                            adoption: 0.7,
                            frequency: 0.45,
                        },
                    ],
                    _ => vec![
                        HabitProfile {
                            facts: vec![fact("RemedyKind3", "takenFor", "SymptomKind2")],
                            adoption: 0.85,
                            frequency: 0.5,
                        },
                        HabitProfile {
                            facts: vec![fact("RemedyKind7", "takenFor", "SymptomKind5")],
                            adoption: 0.6,
                            frequency: 0.35,
                        },
                    ],
                };
                generate(
                    &profiles,
                    &PopulationConfig {
                        members,
                        answer_model: AnswerModel::Bucketed5,
                        seed,
                        ..Default::default()
                    },
                )
            };

            let engine = Oassis::new(&ont);
            let cfg = MiningConfig {
                threshold: Some(theta),
                seed,
                ..Default::default()
            };
            let request = QueryRequest::new(&query).with_mining(cfg);
            let answer = match engine.run(
                &request,
                CrowdBinding::single(&mut SimulatedCrowd::new(v, crowd_members)),
                &FixedSampleAggregator { sample_size: 5 },
            ) {
                Ok(outcome) => outcome.into_patterns().expect("pattern query"),
                Err(e) => {
                    eprintln!("query failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "domain {domain}, Θ = {theta}: {} questions, {} MSPs ({} valid), complete: {}",
                answer.outcome.mining.questions,
                answer.outcome.mining.msps.len(),
                answer.outcome.mining.valid_msps.len(),
                answer.outcome.mining.complete
            );
            for a in &answer.answers {
                println!("  • {a}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
