//! # OASSIS — query-driven crowd mining
//!
//! A from-scratch Rust reproduction of *"OASSIS: Query Driven Crowd
//! Mining"* (Amsterdamer, Davidson, Milo, Novgorodov, Somech; SIGMOD
//! 2014): pose a declarative OASSIS-QL query combining an **ontology
//! selection** with a **crowd-mining task**, and receive the concise set
//! of *most specific significant patterns* (MSPs) of crowd behaviour,
//! mined with as few questions as possible.
//!
//! ```
//! use oassis::prelude::*;
//!
//! // general knowledge: the paper's Figure-1 NYC ontology
//! let ont = oassis::ontology::domains::figure1::ontology();
//!
//! // individual knowledge: the u_avg member of Example 4.6, whose answers
//! // are the exact average of the Table-3 members u1 and u2 (realized by
//! // concatenating D_u1 with three copies of D_u2)
//! let [d1, d2] = oassis::ontology::domains::figure1::personal_dbs(&ont);
//! let mut tx = d1;
//! for _ in 0..3 { tx.extend(d2.iter().cloned()); }
//! let member = SimulatedMember::new(PersonalDb::from_transactions(tx),
//!     MemberBehavior::default(), AnswerModel::Exact, 0);
//! let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![member]);
//!
//! // the query of Figure 2 (simplified): activities at child-friendly
//! // NYC attractions, mined at support threshold 0.4
//! let engine = Oassis::new(&ont);
//! let request = QueryRequest::pattern(oassis::ontology::domains::figure1::SIMPLE_QUERY);
//! let answer = engine
//!     .run(&request, CrowdBinding::single(&mut crowd),
//!          &FixedSampleAggregator { sample_size: 1 })
//!     .unwrap()
//!     .into_patterns()
//!     .unwrap();
//! assert!(answer.answers.iter().any(|a| a == "Biking doAt Central Park"));
//! ```
//!
//! The workspace crates (re-exported here):
//!
//! | crate | contents |
//! |---|---|
//! | [`ontology`] | vocabularies, the semantic partial orders `≤E`/`≤R`, facts, fact-sets, pattern-sets, the Figure-1 ontology and the generated evaluation domains (§2, §6.3) |
//! | [`ql`] | the OASSIS-QL language: parser, binder, WHERE evaluation (§3, §5) |
//! | [`crowd`] | personal databases, the question/answer protocol, answer models, simulated members, population generation, quality filtering (§2, §4.2, §6.2) |
//! | [`core`] | the assignment DAG, the vertical algorithm, multi-user engine, aggregators, baselines, CrowdCache, synthetic workloads, NL templates (§4–§6) |
//! | [`rules`] | the SIGMOD'13 association-rule crowd-mining framework (the paper's reference \[3\]) |
//! | [`server`] | the long-lived crowd-mining service: line-delimited JSON over TCP, WAL-backed persistent sessions, recovery by replay (DESIGN.md §17) |

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

pub use crowd;
pub use oassis_core as core;
pub use oassis_ql as ql;
pub use oassis_server as server;
pub use ontology;
pub use telemetry;

/// The SIGMOD'13 companion framework (`crowdrules`).
pub use crowdrules as rules;

/// Convenient glob-import surface for applications.
///
/// Covers the single-entry query API ([`Oassis::run`](crate::core::Oassis::run)
/// with [`QueryRequest`](crate::core::QueryRequest) /
/// [`CrowdBinding`](crate::core::CrowdBinding)), its error and outcome
/// types, the persistent-session façade
/// ([`SessionManager`](crate::server::SessionManager) /
/// [`SessionHandle`](crate::server::SessionHandle) — the same request
/// surface over a WAL-backed session), the telemetry handles, and the
/// crowd/ontology vocabulary most applications need.
pub mod prelude {
    pub use crate::core::{
        run_horizontal, run_multi, run_naive, run_vertical, Assignment, Class, Classifier,
        CrowdBinding, CrowdCache, Dag, EarlyDecisionAggregator, ExecuteOptions,
        FixedSampleAggregator, MiningConfig, MiningOutcome, MultiOutcome, Oassis, OassisError,
        PlantedOracle, QueryAnswer, QueryOutcome, QueryRequest, QuestionTemplates, RuleAnswer,
        RuleMiningConfig, SharedCrowdCache,
    };
    pub use crate::ql::{bind, evaluate_where, parse, BoundQuery, MatchMode, Value};
    pub use crate::server::{
        CrowdProvider, QueryReply, RecoveredQuery, ServerError, SessionHandle, SessionManager,
        SessionSpec,
    };
    pub use crowd::{
        Answer, AnswerModel, CrowdPolicy, CrowdSource, MemberBehavior, MemberId, PersonalDb,
        Question, SimulatedCrowd, SimulatedMember,
    };
    pub use ontology::{
        Fact, FactSet, Ontology, OntologyBuilder, PatternFact, PatternSet, Vocabulary,
        VocabularyBuilder,
    };
    pub use telemetry::{NoopSink, Telemetry, TelemetrySink};
}
