//! Robustness of the query-language front end: the parser never panics on
//! arbitrary input, and WHERE evaluation on the generated domains produces
//! exactly the product-structured valid sets DESIGN.md §4 predicts.

use oassis::ontology::domains::{culinary, self_treatment, travel, DomainScale};
use oassis::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in ".{0,200}") {
        let _ = parse(&src); // Ok or Err, never a panic
    }

    #[test]
    fn parser_never_panics_on_token_shaped_input(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("SELECT".to_owned()),
                Just("FACT-SETS".to_owned()),
                Just("WHERE".to_owned()),
                Just("SATISFYING".to_owned()),
                Just("WITH".to_owned()),
                Just("SUPPORT".to_owned()),
                Just("MORE".to_owned()),
                Just("IMPLYING".to_owned()),
                Just("TOP".to_owned()),
                Just("ASKING".to_owned()),
                Just("=".to_owned()),
                Just(".".to_owned()),
                Just("[]".to_owned()),
                Just("0.4".to_owned()),
                Just("$x".to_owned()),
                Just("doAt".to_owned()),
                Just("\"x y\"".to_owned()),
                Just("+".to_owned()),
                Just("*".to_owned()),
            ],
            0..30,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse(&src);
    }
}

#[test]
fn travel_where_matches_design_product() {
    let d = travel(DomainScale::paper());
    let b = {
        let q = parse(&d.query).unwrap();
        bind(&q, &d.ontology).unwrap()
    };
    let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
    // valid base assignments = 30 attractions × 37 activities × 2
    // restaurants (w is determined by x)
    assert_eq!(base.len(), 30 * 37 * 2);
    // every x is a labeled instance
    let x = b.var_by_name("x").unwrap();
    for a in &base {
        let e = a.get(x).unwrap().as_elem().unwrap();
        assert!(d.ontology.has_label(e, "child-friendly"));
    }
}

#[test]
fn class_level_domains_are_full_products() {
    let c = culinary(DomainScale::paper());
    let b = {
        let q = parse(&c.query).unwrap();
        bind(&q, &c.ontology).unwrap()
    };
    assert_eq!(
        evaluate_where(&b, &c.ontology, MatchMode::Exact).len(),
        72 * 146
    );

    let s = self_treatment(DomainScale::paper());
    let b = {
        let q = parse(&s.query).unwrap();
        bind(&q, &s.ontology).unwrap()
    };
    assert_eq!(
        evaluate_where(&b, &s.ontology, MatchMode::Exact).len(),
        42 * 55
    );
}

#[test]
fn binder_rejects_every_structural_violation() {
    let ont = travel(DomainScale::small()).ontology;
    let reject = |src: &str| {
        let parsed = parse(src);
        match parsed {
            Err(_) => {} // parse-level rejection is fine too
            Ok(q) => assert!(bind(&q, &ont).is_err(), "accepted: {src}"),
        }
    };
    reject(
        "SELECT FACT-SETS WHERE $x+ instanceOf Restaurant SATISFYING $x doAt $x WITH SUPPORT = 0.2",
    );
    reject(
        "SELECT FACT-SETS WHERE $x hasLabel Attraction SATISFYING $x doAt $x WITH SUPPORT = 0.2",
    );
    reject("SELECT FACT-SETS WHERE SATISFYING $x hasLabel \"y\" WITH SUPPORT = 0.2");
    reject("SELECT FACT-SETS WHERE $x nosuchrel $y SATISFYING $x doAt $y WITH SUPPORT = 0.2");
    reject("SELECT FACT-SETS WHERE $x instanceOf NoSuchElement SATISFYING $x doAt $x WITH SUPPORT = 0.2");
    reject(
        "SELECT FACT-SETS WHERE $p instanceOf Restaurant SATISFYING NYC $p NYC WITH SUPPORT = 0.2",
    );
}
