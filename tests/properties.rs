//! Property-based tests (proptest) on the core invariants:
//! partial-order laws, inference soundness (Observation 4.4), algorithm
//! agreement with brute force, parser round-trips, and the lazy/eager DAG
//! equivalence.

use oassis::core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis::core::{run_horizontal, run_naive, run_vertical, Dag, MiningConfig};
use oassis::prelude::*;
use oassis::ql::ast::{
    Multiplicity, OutputFormat, Pred, Query, SatisfyingClause, SelectClause, Term, TriplePattern,
};
use ontology::synth::{random_ontology, SynthConfig};
use proptest::prelude::*;

// ---------- vocabulary / fact order laws over random ontologies ----------

fn arb_synth() -> impl Strategy<Value = SynthConfig> {
    (5usize..40, 1usize..4, 0.0f64..0.4, 0usize..30, any::<u64>()).prop_map(
        |(elems, rels, dag_prob, facts, seed)| SynthConfig {
            elems,
            rels,
            dag_prob,
            facts,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn elem_order_is_a_partial_order(cfg in arb_synth()) {
        let ont = random_ontology(cfg);
        let v = ont.vocab();
        let elems: Vec<_> = v.elems().collect();
        for &a in &elems {
            prop_assert!(v.elem_leq(a, a));
        }
        for &a in &elems {
            for &b in &elems {
                if a != b && v.elem_leq(a, b) {
                    prop_assert!(!v.elem_leq(b, a), "antisymmetry");
                }
            }
        }
        // transitivity on sampled triples
        for (i, &a) in elems.iter().enumerate() {
            for &b in elems.iter().skip(i % 3).step_by(3) {
                for &c in elems.iter().step_by(4) {
                    if v.elem_leq(a, b) && v.elem_leq(b, c) {
                        prop_assert!(v.elem_leq(a, c), "transitivity");
                    }
                }
            }
        }
    }

    #[test]
    fn fact_order_respects_component_order(cfg in arb_synth()) {
        let ont = random_ontology(cfg);
        let v = ont.vocab();
        let facts: Vec<Fact> = ont.facts().iter().collect();
        for &f in facts.iter().take(12) {
            for &g in facts.iter().take(12) {
                let leq = v.fact_leq(f, g);
                let manual = v.elem_leq(f.subject, g.subject)
                    && v.rel_leq(f.rel, g.rel)
                    && v.elem_leq(f.object, g.object);
                prop_assert_eq!(leq, manual);
            }
        }
    }

    #[test]
    fn factset_order_is_reflexive_and_transitive(cfg in arb_synth()) {
        let ont = random_ontology(cfg);
        let v = ont.vocab();
        let all: Vec<Fact> = ont.facts().iter().collect();
        if all.len() < 3 {
            return Ok(());
        }
        let sets: Vec<FactSet> = (0..all.len().min(8))
            .map(|i| FactSet::from_iter(all.iter().copied().skip(i).take(3)))
            .collect();
        for s in &sets {
            prop_assert!(s.leq(v, s));
        }
        for a in &sets {
            for b in &sets {
                for c in &sets {
                    if a.leq(v, b) && b.leq(v, c) {
                        prop_assert!(a.leq(v, c));
                    }
                }
            }
        }
    }

    #[test]
    fn support_is_antitone_in_the_pattern_order(cfg in arb_synth(), seed in any::<u64>()) {
        // if A ≤ B (A more general) then supp(A) ≥ supp(B) in every DB
        let ont = random_ontology(cfg);
        let v = ont.vocab();
        let facts: Vec<Fact> = ont.facts().iter().collect();
        if facts.len() < 4 {
            return Ok(());
        }
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tx: Vec<FactSet> = (0..10)
            .map(|_| {
                FactSet::from_iter(
                    (0..3).map(|_| facts[rng.gen_range(0..facts.len())]),
                )
            })
            .collect();
        let db = PersonalDb::from_transactions(tx);
        // generalize a random fact along one parent step
        let f = facts[rng.gen_range(0..facts.len())];
        let parents = v.elem_parents(f.subject);
        if let Some(&p) = parents.first() {
            let spec = PatternSet::from_facts([f]);
            let gen = PatternSet::from_facts([Fact::new(p, f.rel, f.object)]);
            prop_assert!(gen.leq(v, &spec));
            prop_assert!(db.support(v, &gen) >= db.support(v, &spec));
        }
    }
}

// ---------- parser round-trip over generated ASTs ----------

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FACT-SETS",
    "VARIABLES",
    "ALL",
    "TOP",
    "DIVERSE",
    "WHERE",
    "SATISFYING",
    "IMPLYING",
    "MORE",
    "WITH",
    "SUPPORT",
    "AND",
    "CONFIDENCE",
];

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,6}".prop_filter("not a keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

fn arb_term(sat: bool) -> impl Strategy<Value = Term> {
    let mult = if sat {
        prop_oneof![
            Just(Multiplicity::ExactlyOne),
            Just(Multiplicity::AtLeastOne),
            Just(Multiplicity::Any),
            Just(Multiplicity::Optional),
        ]
        .boxed()
    } else {
        Just(Multiplicity::ExactlyOne).boxed()
    };
    prop_oneof![
        ("[a-z]{1,4}".prop_map(|s| s), mult).prop_map(|(name, mult)| Term::Var { name, mult }),
        arb_name().prop_map(Term::Elem),
        "[A-Za-z ]{1,8}".prop_map(Term::Literal),
        Just(Term::Blank),
    ]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    prop_oneof![
        (arb_name(), any::<bool>()).prop_map(|(name, star)| Pred::Rel { name, star }),
        "[a-z]{1,4}".prop_map(Pred::Var),
    ]
}

fn arb_pattern(sat: bool) -> impl Strategy<Value = TriplePattern> {
    (arb_term(sat), arb_pred(), arb_term(sat)).prop_map(|(subject, predicate, object)| {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop_oneof![Just(OutputFormat::FactSets), Just(OutputFormat::Variables)],
        any::<bool>(),
        prop::collection::vec(arb_pattern(false), 0..5),
        prop::collection::vec(arb_pattern(true), 1..4),
        any::<bool>(),
        (0u32..=100).prop_map(|x| x as f64 / 100.0),
        // extensions: TOP k [DIVERSE], IMPLYING … AND CONFIDENCE, ASKING
        proptest::option::of((1usize..50, any::<bool>())),
        proptest::option::of((
            prop::collection::vec(arb_pattern(true), 1..3),
            (0u32..=100).prop_map(|x| x as f64 / 100.0),
        )),
        proptest::option::of("[A-Za-z][A-Za-z ]{0,10}"),
    )
        .prop_map(
            |(
                format,
                all,
                where_patterns,
                patterns,
                more,
                support_threshold,
                top,
                implying,
                asking,
            )| {
                let (top, diverse) = match top {
                    Some((k, d)) => (Some(k), d),
                    None => (None, false),
                };
                let (implying, confidence_threshold) = match implying {
                    Some((imp, c)) => (imp, Some(c)),
                    None => (Vec::new(), None),
                };
                Query {
                    select: SelectClause {
                        format,
                        all,
                        top,
                        diverse,
                    },
                    asking,
                    where_patterns,
                    satisfying: SatisfyingClause {
                        patterns,
                        more,
                        implying,
                        support_threshold,
                        confidence_threshold,
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(q in arb_query()) {
        let printed = q.to_string();
        let reparsed = oassis::ql::parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- source ---\n{printed}")))?;
        prop_assert_eq!(q, reparsed, "\n--- source ---\n{}", printed);
    }
}

// ---------- algorithm agreement with brute force ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn vertical_output_equals_true_msps(
        width in 20usize..80,
        depth in 3usize..6,
        msp_count in 1usize..8,
        seed in any::<u64>(),
    ) {
        let d = synthetic_domain(width, depth, 0);
        let q = oassis::ql::parse(&d.query).unwrap();
        let b = oassis::ql::bind(&q, &d.ontology).unwrap();
        let base = oassis::ql::evaluate_where(&b, &d.ontology, MatchMode::Exact);

        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, msp_count, true, MspDistribution::Uniform, seed);
        prop_assume!(!planted.is_empty());
        let patterns: Vec<PatternSet> =
            planted.iter().map(|&id| full.node(id).assignment.apply(&b)).collect();

        // brute-force truth
        let oracle_ref = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 1, 0);
        let truth: std::collections::BTreeSet<String> =
            oassis::core::synth::true_msps(&mut full, &oracle_ref)
                .into_iter()
                .map(|id| full.node(id).assignment.apply(&b).to_display(d.ontology.vocab()))
                .collect();

        // vertical, lazily
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 1, 0);
        let out = run_vertical(&mut dag, &mut oracle, MemberId(0), &MiningConfig::default());
        prop_assert!(out.complete);
        let got: std::collections::BTreeSet<String> = out
            .msps
            .iter()
            .map(|m| m.apply(&b).to_display(d.ontology.vocab()))
            .collect();
        prop_assert_eq!(&got, &truth);

        // horizontal and naive agree too
        let mut dag_h = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        dag_h.materialize_all();
        let mut oracle_h = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 1, 0);
        let out_h = run_horizontal(&mut dag_h, &mut oracle_h, MemberId(0), &MiningConfig::default());
        let got_h: std::collections::BTreeSet<String> = out_h
            .msps
            .iter()
            .map(|m| m.apply(&b).to_display(d.ontology.vocab()))
            .collect();
        prop_assert_eq!(&got_h, &truth);

        let mut dag_n = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        dag_n.materialize_all();
        let mut oracle_n = PlantedOracle::new(d.ontology.vocab(), patterns, 1, 0);
        let out_n = run_naive(&mut dag_n, &mut oracle_n, MemberId(0), &MiningConfig::default());
        let got_n: std::collections::BTreeSet<String> = out_n
            .msps
            .iter()
            .map(|m| m.apply(&b).to_display(d.ontology.vocab()))
            .collect();
        prop_assert_eq!(&got_n, &truth);
    }

    #[test]
    fn inference_never_misclassifies(
        width in 20usize..60,
        depth in 3usize..5,
        msp_count in 1usize..6,
        seed in any::<u64>(),
        spec_ratio in 0.0f64..1.0,
        pruning in 0.0f64..0.6,
    ) {
        // After a vertical run with any mix of specialization questions
        // and pruning clicks, every classification matches ground truth.
        let d = synthetic_domain(width, depth, 0);
        let q = oassis::ql::parse(&d.query).unwrap();
        let b = oassis::ql::bind(&q, &d.ontology).unwrap();
        let base = oassis::ql::evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, msp_count, true, MspDistribution::Uniform, seed);
        prop_assume!(!planted.is_empty());
        let patterns: Vec<PatternSet> =
            planted.iter().map(|&id| full.node(id).assignment.apply(&b)).collect();
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 1, seed);
        oracle.pruning_prob = pruning;
        let cfg = MiningConfig { specialization_ratio: spec_ratio, seed, ..Default::default() };
        let out = run_vertical(&mut dag, &mut oracle, MemberId(0), &cfg);
        prop_assert!(out.complete);
        // every reported MSP is truly significant and truly maximal
        let truth_oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, 0);
        for m in &out.msps {
            let p = m.apply(&b);
            prop_assert!(truth_oracle.is_significant(&p), "false positive MSP");
        }
    }
}
