//! Cross-crate integration test: the paper's worked running example,
//! end-to-end through the public umbrella API (Examples 2.3–4.6).

use oassis::ontology::domains::figure1;
use oassis::prelude::*;

mod common;
use common::figure1_avg_member as u_avg;

#[test]
fn full_figure_2_query_with_restaurants() {
    // The complete query of Figure 2, not just the grey simplification:
    // activities at child-friendly NYC attractions with a nearby
    // restaurant, plus MORE tips, at Θ = 0.4.
    let ont = figure1::ontology();
    let v = ont.vocab();
    let member = {
        let mut m = u_avg(&ont, 0);
        m.behavior.more_tip_prob = 1.0;
        m
    };
    let mut crowd = SimulatedCrowd::new(v, vec![member]);
    let engine = Oassis::new(&ont);
    let answer = engine
        .run(
            &QueryRequest::new(figure1::SAMPLE_QUERY),
            CrowdBinding::single(&mut crowd),
            &FixedSampleAggregator { sample_size: 1 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(answer.outcome.mining.complete);

    // The paper's expected answers (Introduction + Section 3):
    // "Go biking in Central Park and eat at Maoz Vegetarian (tip: rent the
    // bikes at the Boathouse)" and "Feed a monkey at the Bronx Zoo and eat
    // at Pine Restaurant".
    let biking_with_tip = answer.answers.iter().any(|a| {
        a.contains("Biking doAt Central Park")
            && a.contains("eatAt Maoz Veg")
            && a.contains("Rent Bikes doAt Boathouse")
    });
    assert!(
        biking_with_tip,
        "missing the Boathouse tip: {:#?}",
        answer.answers
    );
    let monkey = answer
        .answers
        .iter()
        .any(|a| a.contains("Feed a Monkey doAt Bronx Zoo") && a.contains("eatAt Pine"));
    assert!(
        monkey,
        "missing the Bronx Zoo answer: {:#?}",
        answer.answers
    );
    // Baseball (1/3 < 0.4) must not appear.
    assert!(!answer.answers.iter().any(|a| a.contains("Baseball")));
}

#[test]
fn example_3_1_significance_decisions() {
    // φ16 (y→Biking) significant at 0.4 (avg 5/12), φ20 (y→Baseball) not
    // (avg 1/3) — checked through the mining output.
    let ont = figure1::ontology();
    let engine = Oassis::new(&ont);
    let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 0)]);
    let all_query = figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT FACT-SETS ALL");
    let answer = engine
        .run(
            &QueryRequest::new(&all_query),
            CrowdBinding::single(&mut crowd),
            &FixedSampleAggregator { sample_size: 1 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(answer
        .answers
        .iter()
        .any(|a| a == "Biking doAt Central Park"));
    assert!(!answer
        .answers
        .iter()
        .any(|a| a == "Baseball doAt Central Park"));
    // generalizations of significant patterns are significant (ALL output)
    assert!(answer
        .answers
        .iter()
        .any(|a| a == "Sport doAt Central Park"));
    assert!(answer
        .answers
        .iter()
        .any(|a| a == "Activity doAt Central Park"));
}

#[test]
fn threshold_sweep_monotonicity_of_significant_sets() {
    // Raising Θ can only shrink the significant region (MSP counts may
    // fluctuate — footnote 8 — but the union of cones shrinks).
    let ont = figure1::ontology();
    let engine = Oassis::new(&ont);
    let v = ont.vocab();
    let run = |theta: f64| {
        let mut crowd = SimulatedCrowd::new(v, vec![u_avg(&ont, 0)]);
        let cfg = MiningConfig {
            threshold: Some(theta),
            ..Default::default()
        };
        let all_query = figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT FACT-SETS ALL");
        engine
            .run(
                &QueryRequest::new(&all_query).with_mining(cfg),
                CrowdBinding::single(&mut crowd),
                &FixedSampleAggregator { sample_size: 1 },
            )
            .unwrap()
            .into_patterns()
            .unwrap()
    };
    let mut prev: Option<std::collections::HashSet<String>> = None;
    for theta in [0.2, 0.3, 0.4, 0.5] {
        let ans = run(theta);
        let set: std::collections::HashSet<String> = ans.answers.iter().cloned().collect();
        if let Some(p) = &prev {
            assert!(
                set.is_subset(p),
                "significant set grew when Θ rose to {theta}"
            );
        }
        prev = Some(set);
    }
}

#[test]
fn questions_scale_with_threshold_like_figure_4a() {
    // The per-threshold question counts exist and the run completes for
    // every threshold of Figure 4's sweep.
    let ont = figure1::ontology();
    let engine = Oassis::new(&ont);
    let v = ont.vocab();
    for theta in [0.2, 0.3, 0.4, 0.5] {
        let mut crowd = SimulatedCrowd::new(v, vec![u_avg(&ont, 0)]);
        let cfg = MiningConfig {
            threshold: Some(theta),
            ..Default::default()
        };
        let ans = engine
            .run(
                &QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(cfg),
                CrowdBinding::single(&mut crowd),
                &FixedSampleAggregator { sample_size: 1 },
            )
            .unwrap()
            .into_patterns()
            .unwrap();
        assert!(ans.outcome.mining.complete, "Θ={theta} incomplete");
        assert!(ans.outcome.mining.questions > 0);
    }
}

#[test]
fn natural_language_rendering_of_the_paper_question() {
    let ont = figure1::ontology();
    let v = ont.vocab();
    let engine = Oassis::new(&ont).with_templates(QuestionTemplates::travel_defaults(v));
    let q = Question::Concrete {
        pattern: PatternSet::from_facts([
            v.fact("Biking", "doAt", "Central Park").unwrap(),
            v.fact("Falafel", "eatAt", "Maoz Veg").unwrap(),
        ]),
    };
    let rendered = engine.render_question(&q);
    assert!(rendered.starts_with("How often do you"));
    assert!(rendered.contains("biking in Central Park"));
    assert!(rendered.contains("eat falafel at Maoz Veg"));
}
