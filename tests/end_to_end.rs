//! End-to-end scenarios across the generated evaluation domains, with
//! failure injection: leaving members, spammers, undecided aggregation,
//! and cache-backed threshold sweeps.

use oassis::crowd::population::{generate, HabitProfile, PopulationConfig};
use oassis::ontology::domains::{culinary, self_treatment, travel, DomainScale};
use oassis::prelude::*;

mod common;
use common::travel_profiles;

#[test]
fn travel_domain_end_to_end() {
    let domain = travel(DomainScale::small());
    let ont = &domain.ontology;
    let members = generate(
        &travel_profiles(ont),
        &PopulationConfig {
            members: 80,
            answer_model: AnswerModel::Bucketed5,
            seed: 1,
            ..Default::default()
        },
    );
    let engine = Oassis::new(ont);
    let cfg = MiningConfig {
        threshold: Some(0.2),
        ..Default::default()
    };
    let ans = engine
        .run(
            &QueryRequest::new(&domain.query).with_mining(cfg.clone()),
            CrowdBinding::single(&mut SimulatedCrowd::new(ont.vocab(), members)),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    // the strongly planted habit must surface
    assert!(
        ans.answers.iter().any(|a| a.contains("doAt Attraction1")),
        "{:#?}",
        ans.answers
    );
    // instance-level query: invalid MSPs (class-level x/z) may exist, so
    // #MSPs ≥ #valid — and here the counters must be coherent
    let m = &ans.outcome.mining;
    assert!(m.msps.len() >= m.valid_msps.len());
    assert_eq!(ans.answers.len(), m.valid_msps.len());
}

#[test]
fn class_level_domains_have_only_valid_msps() {
    for domain in [
        culinary(DomainScale::small()),
        self_treatment(DomainScale::small()),
    ] {
        let ont = &domain.ontology;
        let v = ont.vocab();
        // simple planted habit per domain: first two universe elements
        let (rel, lhs_root, rhs_root) = match domain.name {
            "culinary" => ("servedWith", "DishKind3", "DrinkKind3"),
            _ => ("takenFor", "RemedyKind3", "SymptomKind3"),
        };
        let profiles = vec![HabitProfile {
            facts: vec![v.fact(lhs_root, rel, rhs_root).unwrap()],
            adoption: 0.9,
            frequency: 0.55,
        }];
        let members = generate(
            &profiles,
            &PopulationConfig {
                members: 60,
                answer_model: AnswerModel::Exact,
                seed: 2,
                ..Default::default()
            },
        );
        let engine = Oassis::new(ont);
        let ans = engine
            .run(
                &QueryRequest::new(&domain.query).with_mining(MiningConfig {
                    threshold: Some(0.25),
                    ..Default::default()
                }),
                CrowdBinding::single(&mut SimulatedCrowd::new(v, members)),
                &FixedSampleAggregator { sample_size: 5 },
            )
            .unwrap()
            .into_patterns()
            .unwrap();
        let m = &ans.outcome.mining;
        assert_eq!(
            m.msps.len(),
            m.valid_msps.len(),
            "{}: invalid MSPs in a class-level query",
            domain.name
        );
        assert!(!m.msps.is_empty(), "{}: nothing mined", domain.name);
    }
}

#[test]
fn crowd_exhaustion_reports_incomplete() {
    let domain = travel(DomainScale::small());
    let ont = &domain.ontology;
    let members = generate(
        &travel_profiles(ont),
        &PopulationConfig {
            members: 6,
            behavior: MemberBehavior {
                session_limit: Some(3),
                ..Default::default()
            },
            seed: 3,
            ..Default::default()
        },
    );
    let engine = Oassis::new(ont);
    let ans = engine
        .run(
            &QueryRequest::new(&domain.query).with_mining(MiningConfig {
                threshold: Some(0.2),
                ..Default::default()
            }),
            CrowdBinding::single(&mut SimulatedCrowd::new(ont.vocab(), members)),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(!ans.outcome.mining.complete);
    assert!(ans.outcome.mining.questions <= 18);
    assert!(ans.outcome.undecided > 0);
}

#[test]
fn spammers_change_results_unless_filtered() {
    let domain = self_treatment(DomainScale::small());
    let ont = &domain.ontology;
    let v = ont.vocab();
    let profiles = vec![HabitProfile {
        facts: vec![v.fact("RemedyKind3", "takenFor", "SymptomKind2").unwrap()],
        adoption: 0.9,
        frequency: 0.5,
    }];
    let mut members = generate(
        &profiles,
        &PopulationConfig {
            members: 40,
            seed: 4,
            answer_model: AnswerModel::Exact,
            ..Default::default()
        },
    );
    for m in members.iter_mut().take(20) {
        m.behavior.spammer = true;
    }
    let engine = Oassis::new(ont);
    let cfg = MiningConfig {
        threshold: Some(0.3),
        ..Default::default()
    };

    // trust-weighted aggregation with perfect spammer knowledge
    let mut trust = std::collections::HashMap::new();
    for i in 0..20u32 {
        trust.insert(MemberId(i), 0.0);
    }
    let weighted = oassis::core::TrustWeightedAggregator {
        sample_size: 5,
        trust,
    };
    let request = QueryRequest::new(&domain.query).with_mining(cfg.clone());
    let filtered = engine
        .run(
            &request,
            CrowdBinding::single(&mut SimulatedCrowd::new(v, members.clone())),
            &weighted,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    // unweighted: spam noise inflates/deflates the answer set
    for m in members.iter_mut() {
        m.reset_session();
    }
    let unfiltered = engine
        .run(
            &request,
            CrowdBinding::single(&mut SimulatedCrowd::new(v, members)),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(
        filtered.answers.iter().any(|a| a.contains("RemedyKind3")),
        "{:#?}",
        filtered.answers
    );
    assert_ne!(
        filtered.answers, unfiltered.answers,
        "spam should have changed the unfiltered output"
    );
}

#[test]
fn cache_snapshot_survives_serialization_between_runs() {
    let domain = self_treatment(DomainScale::small());
    let ont = &domain.ontology;
    let v = ont.vocab();
    let profiles = vec![HabitProfile {
        facts: vec![v.fact("RemedyKind2", "takenFor", "SymptomKind4").unwrap()],
        adoption: 0.9,
        frequency: 0.6,
    }];
    let members = generate(
        &profiles,
        &PopulationConfig {
            members: 30,
            seed: 6,
            answer_model: AnswerModel::Exact,
            ..Default::default()
        },
    );
    let engine = Oassis::new(ont);
    let mut cache = CrowdCache::new();
    {
        let crowd = SimulatedCrowd::new(v, members.clone());
        let mut caching = oassis::core::CachingCrowd::new(crowd, &mut cache);
        engine
            .run(
                &QueryRequest::new(&domain.query).with_mining(MiningConfig {
                    threshold: Some(0.2),
                    ..Default::default()
                }),
                CrowdBinding::single(&mut caching),
                &FixedSampleAggregator { sample_size: 5 },
            )
            .unwrap();
    }
    let json = cache.to_json();
    let mut restored = CrowdCache::from_json(&json).unwrap();
    assert_eq!(restored.len(), cache.len());
    // run at a new threshold from the restored cache
    let crowd = SimulatedCrowd::new(v, members);
    let mut caching = oassis::core::CachingCrowd::new(crowd, &mut restored);
    let ans = engine
        .run(
            &QueryRequest::new(&domain.query).with_mining(MiningConfig {
                threshold: Some(0.4),
                ..Default::default()
            }),
            CrowdBinding::single(&mut caching),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(caching.fresh_questions() < caching.total_questions());
    assert!(ans.outcome.mining.questions > 0);
}

#[test]
fn semantic_match_mode_widens_the_where_results() {
    // nearBy ≤R inside lets semantic matching find assignments the exact
    // (SPARQL) mode misses.
    let ont = oassis::ontology::domains::figure1::ontology();
    let src = r#"
SELECT FACT-SETS
WHERE
  $p nearBy NYC
SATISFYING
  Biking doAt $p
WITH SUPPORT = 0.2
"#;
    let q = parse(src).unwrap();
    let b = bind(&q, &ont).unwrap();
    let exact = evaluate_where(&b, &ont, MatchMode::Exact);
    let semantic = evaluate_where(&b, &ont, MatchMode::Semantic);
    assert!(exact.is_empty());
    assert_eq!(semantic.len(), 3); // the three inside-NYC attractions
}
