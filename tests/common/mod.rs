//! Shared population/member builders for the integration tests.
//!
//! Each test binary compiles this module independently, so helpers a
//! given binary does not use are expected dead code.
#![allow(dead_code)]

use oassis::crowd::population::HabitProfile;
use oassis::ontology::domains::figure1;
use oassis::prelude::*;

/// The Figure-1 habit mix used across the failure-injection scenarios:
/// a biking-in-Central-Park majority habit and a zoo minority habit.
pub fn figure1_profiles(ont: &Ontology) -> Vec<HabitProfile> {
    let v = ont.vocab();
    vec![
        HabitProfile {
            facts: vec![v.fact("Biking", "doAt", "Central Park").unwrap()],
            adoption: 0.9,
            frequency: 0.6,
        },
        HabitProfile {
            facts: vec![v.fact("Feed a Monkey", "doAt", "Bronx Zoo").unwrap()],
            adoption: 0.85,
            frequency: 0.5,
        },
    ]
}

/// The travel-domain habit mix of the end-to-end scenarios: two profile
/// groups with distinct activity/snack pairings.
pub fn travel_profiles(ont: &Ontology) -> Vec<HabitProfile> {
    let v = ont.vocab();
    let fact = |s: &str, r: &str, o: &str| v.fact(s, r, o).expect("domain term");
    vec![
        HabitProfile {
            facts: vec![
                fact("ActivityKind5", "doAt", "Attraction1"),
                fact("Snack1", "eatAt", "Restaurant1"),
            ],
            adoption: 0.95,
            frequency: 0.6,
        },
        HabitProfile {
            facts: vec![
                fact("ActivityKind7", "doAt", "Attraction2"),
                fact("Snack2", "eatAt", "Restaurant2"),
            ],
            adoption: 0.7,
            frequency: 0.45,
        },
    ]
}

/// The paper's "average user" over the Figure-1 personal DBs (three
/// copies of db1 plus db2), answering exactly.
pub fn figure1_avg_member(ont: &Ontology, seed: u64) -> SimulatedMember {
    let [d1, d2] = figure1::personal_dbs(ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    SimulatedMember::new(
        PersonalDb::from_transactions(tx),
        MemberBehavior::default(),
        AnswerModel::Exact,
        seed,
    )
}
