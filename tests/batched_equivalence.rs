//! Differential guarantee of the question-batch planner: batching only
//! changes *when* questions are asked (several per member per round, all
//! mutually ≤-incomparable), never *what the miner concludes*. With a
//! noise-free oracle — answers a pure function of the question — the MSP
//! set must be identical at every batch width and pool width.
//!
//! The second half property-tests the planner's antichain rule itself:
//! `debug_checks` makes the engine assert, on every planned batch, that
//! no two targets are ≤-comparable, and the proptest drives that
//! assertion across randomized domains, planted MSP counts and widths.

use std::collections::BTreeSet;

use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{run_multi, Dag, FixedSampleAggregator, MiningConfig};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};
use proptest::prelude::*;

/// Runs the multi-user miner on a planted synthetic workload and returns
/// the MSP set (as display strings), the valid-MSP set, the completeness
/// flag and the round count.
#[allow(clippy::too_many_arguments)]
fn mine(
    dom_width: usize,
    dom_depth: usize,
    n_msps: usize,
    plant_seed: u64,
    batch_width: usize,
    pool: Option<usize>,
    seed: u64,
    debug_checks: bool,
) -> (BTreeSet<String>, BTreeSet<String>, bool, usize) {
    let dom = synthetic_domain(dom_width, dom_depth, 1);
    let q = parse(&dom.query).unwrap();
    let b = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(
        &mut full,
        n_msps,
        true,
        MspDistribution::Uniform,
        plant_seed,
    );
    let patterns: Vec<_> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();

    let mut dag = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    // noise-free oracle: answers depend only on the question pattern, so
    // question *order* (the one thing batching changes) cannot leak into
    // the outcome
    let mut oracle = PlantedOracle::new(dom.ontology.vocab(), patterns, 6, seed + 9);
    let agg = FixedSampleAggregator { sample_size: 3 };
    let cfg = MiningConfig {
        specialization_ratio: 0.25,
        seed,
        batch_width,
        debug_checks,
        pool: pool.map_or(minipool::Pool::sequential(), minipool::Pool::new),
        ..Default::default()
    };
    let out = run_multi(&mut dag, &mut oracle, &agg, &cfg);
    let vocab = dom.ontology.vocab();
    let msps: BTreeSet<String> = out
        .mining
        .msps
        .iter()
        .map(|m| m.apply(&b).to_display(vocab))
        .collect();
    let valid: BTreeSet<String> = out
        .mining
        .valid_msps
        .iter()
        .map(|m| m.apply(&b).to_display(vocab))
        .collect();
    (msps, valid, out.mining.complete, out.rounds)
}

#[test]
fn batched_rounds_reproduce_the_unbatched_msp_set() {
    for seed in [8u64, 9, 10] {
        let (ref_msps, ref_valid, complete, ref_rounds) = mine(120, 5, 6, 31, 1, None, seed, false);
        assert!(
            complete,
            "seed {seed}: unbatched reference did not converge"
        );
        assert!(!ref_msps.is_empty(), "seed {seed}: reference found no MSPs");
        for k in [2usize, 4, 8] {
            for pool in [None, Some(4)] {
                let (msps, valid, complete, rounds) = mine(120, 5, 6, 31, k, pool, seed, false);
                let pw = pool.unwrap_or(1);
                assert!(
                    complete,
                    "seed {seed}: batch width {k} (pool {pw}) did not converge"
                );
                assert_eq!(
                    msps, ref_msps,
                    "seed {seed}: batch width {k} (pool {pw}) changed the MSP set"
                );
                assert_eq!(
                    valid, ref_valid,
                    "seed {seed}: batch width {k} (pool {pw}) changed the valid-MSP set"
                );
                assert!(
                    rounds <= ref_rounds,
                    "seed {seed}: batch width {k} (pool {pw}) took {rounds} rounds, \
                     more than the unbatched {ref_rounds}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every planned batch is an antichain under ≤ — no two targets in
    /// one batch are ordered. `debug_checks` puts the assertion inside
    /// the planner itself, so a violation panics the run; the proptest's
    /// job is to drive that check across randomized workloads.
    #[test]
    fn planned_batches_never_contain_a_leq_ordered_pair(
        dom_width in 60usize..140,
        n_msps in 3usize..8,
        plant_seed in 0u64..1000,
        batch_width in 2usize..=8,
        seed in 0u64..1000,
    ) {
        let (msps, _, complete, _) = mine(
            dom_width, 5, n_msps, plant_seed, batch_width, None, seed, true,
        );
        prop_assert!(complete);
        prop_assert!(!msps.is_empty());
    }
}
