//! Static/dynamic D7 agreement: the acquisition orders a real sim run
//! takes at runtime must be compatible with the order the static
//! analyzer derived.
//!
//! Rule D7 (`crates/audit/src/locks.rs`) proves an over-approximation of
//! acquisition-order edges from the call graph; the runtime sanitizer
//! (`telemetry::lockorder`, always on in debug builds) records the exact
//! orders taken. Each catches what the other cannot — the static pass
//! sees schedules that never ran, the dynamic pass sees acquisitions
//! routed through dispatch the static pass cannot resolve — so this test
//! closes the loop: every edge the run *observed* must not be the
//! reverse of an edge the analyzer *derived*. (The planted-inversion
//! fixture `crates/audit/tests/fixtures/d7_locks.rs` exercises the
//! static half; `dynamic_sanitizer_catches_the_planted_inversion` below
//! replays the same shape at runtime.)

use std::collections::BTreeMap;

use audit::{find_workspace_root, lock_order_edges};
use telemetry::lockorder::{observed_edges, TrackedMutex};

/// Runtime lock name → static lock id, for every tracked lock in the
/// tree. Keeping this map total is deliberate: adding a `TrackedMutex`
/// without extending it fails the assertion below, which is the nudge
/// to put the new lock under both layers.
fn name_map() -> BTreeMap<&'static str, &'static str> {
    BTreeMap::from([
        ("core.cache.inner", "SharedCrowdCache.inner"),
        ("telemetry.sink.state", "TelemetrySink.state"),
        (
            "crowd.parallel.returned",
            "crates/crowd/src/parallel.rs::with_parallel_crowd::returned",
        ),
    ])
}

#[test]
fn sim_run_lock_orders_agree_with_the_static_analysis() {
    // Drive every tracked lock: two cluster sim sessions (telemetry
    // sink under faults) and a parallel-crowd session (worker-pool
    // return lock). The sanitizer is live throughout — an inversion
    // would panic right here.
    let report = simtest::run_cluster_seed(11, 2);
    assert!(report.shards >= 1);
    let report = simtest::run_cluster_seed(23, 4);
    assert!(report.shards >= 1);

    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with Cargo.toml");
    let statically_derived = lock_order_edges(&root).expect("static lock analysis runs");
    let map = name_map();

    for (held, acquired) in observed_edges() {
        // The order graph is process-global; planted-fixture tests in
        // this binary use the `planted.` prefix so their deliberate
        // inversions don't masquerade as production locks here.
        if held.starts_with("planted.") || acquired.starts_with("planted.") {
            continue;
        }
        let (Some(h), Some(a)) = (map.get(held), map.get(acquired)) else {
            panic!(
                "runtime lock `{held}` → `{acquired}` involves a name missing from \
                 name_map(); register new TrackedMutex names here so both layers see them"
            );
        };
        assert!(
            !statically_derived.contains(&(a.to_string(), h.to_string())),
            "runtime acquired `{acquired}` while holding `{held}`, but the static \
             analyzer derived the opposite order — one of the two schedules deadlocks"
        );
    }
}

#[test]
#[should_panic(expected = "lock-order inversion")]
fn dynamic_sanitizer_catches_the_planted_inversion() {
    // The runtime half of the planted fixture: same AB/BA shape as
    // `fixtures/d7_locks.rs`, unique names so the shared order graph
    // stays clean for the agreement test above.
    let a = TrackedMutex::new("planted.inversion.a", 0u32);
    let b = TrackedMutex::new("planted.inversion.b", 0u32);
    {
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
    }
    let _gb = b.lock().unwrap();
    let _ga = a.lock().unwrap();
}
