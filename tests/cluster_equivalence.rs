//! Property tests for the sharded cluster (`core::cluster` +
//! `simtest::net`): arbitrary member→shard assignments and shuffled
//! delivery orders must reproduce the single-node MSP/valid sets and
//! digests bit-for-bit, and crash-at-tick + restart must recover to the
//! same digest through the watermark resync.
#![recursion_limit = "256"]

use proptest::prelude::*;
use simtest::{
    run_cluster, single_node_reference, ClusterConfig, Schedule, ShardMap, CLUSTER_MEMBERS,
};

/// `(shards, arbitrary member→shard assignment over that many shards)`.
fn arb_shard_map() -> impl Strategy<Value = (u32, Vec<u32>)> {
    let members = CLUSTER_MEMBERS as usize;
    // the vendored proptest has no prop_flat_map; draw raw u32s and fold
    // them into range with a mod (uniform enough for coverage here)
    (
        1u32..=8,
        prop::collection::vec(0u32..8, members..members + 1),
    )
        .prop_map(|(shards, raw)| {
            let assign = raw.into_iter().map(|v| v % shards).collect();
            (shards, assign)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The headline oracle, quantified over maps and delivery orders:
    // however the members are spread (skewed maps and empty shards
    // included) and however the network interleaves the op streams,
    // the fault-free merge IS the single-node outcome.
    #[test]
    fn arbitrary_maps_and_delivery_orders_reproduce_the_single_node_run(
        seed in 0u64..24,
        shard_map in arb_shard_map(),
        net_seed in any::<u64>(),
    ) {
        let (shards, assign) = shard_map;
        let mut cfg = ClusterConfig::from_seed(seed, shards);
        cfg.net_seed = net_seed;
        let map = ShardMap::from_assignments(assign, shards).expect("strategy respects bounds");
        let (reference, planted) = single_node_reference(&cfg).map_err(
            |p| TestCaseError::fail(format!("reference panicked: {p}")))?;
        prop_assert_eq!(&reference.msps, &planted, "single node must find the planted truth");
        let run = run_cluster(&cfg, &map, &Schedule::fault_free(), &telemetry::Telemetry::off())
            .map_err(|p| TestCaseError::fail(format!("cluster panicked: {p}")))?;
        prop_assert!(run.net.fully_delivered, "fault-free net lost ops: {:?}", run.net);
        prop_assert_eq!(&run.outcome, &reference);
        prop_assert_eq!(run.digest, reference.digest());
    }

    // Crash-at-tick + restart: the node comes back amnesiac, resyncs
    // from the coordinator watermark, and the merge still lands on the
    // single-node digest.
    #[test]
    fn crash_and_restart_recover_to_the_single_node_digest(
        seed in 0u64..16,
        node in 0u32..2,
        at in 0u64..20,
        down in 1u64..12,
        net_seed in any::<u64>(),
    ) {
        let mut cfg = ClusterConfig::from_seed(seed, 2);
        cfg.net_seed = net_seed;
        let map = ShardMap::round_robin(CLUSTER_MEMBERS, 2);
        let (reference, _) = single_node_reference(&cfg).map_err(
            |p| TestCaseError::fail(format!("reference panicked: {p}")))?;
        let schedule = Schedule::parse(&format!("k{node}@{at}({down})")).expect("valid token");
        let run = run_cluster(&cfg, &map, &schedule, &telemetry::Telemetry::off())
            .map_err(|p| TestCaseError::fail(format!("cluster panicked: {p}")))?;
        prop_assert!(
            run.net.fully_delivered,
            "restartable crash must not lose ops: {:?}", run.net
        );
        prop_assert_eq!(&run.outcome, &reference);
        prop_assert_eq!(run.digest, reference.digest());
    }

    // Permanent kills may only shrink the answer, never corrupt it:
    // the merged MSP/valid sets stay inside the fault-free ones.
    #[test]
    fn permanent_kills_degrade_to_a_subset(
        seed in 0u64..16,
        node in 0u32..4,
        at in 0u64..12,
        net_seed in any::<u64>(),
    ) {
        let mut cfg = ClusterConfig::from_seed(seed, 4);
        cfg.net_seed = net_seed;
        let map = ShardMap::round_robin(CLUSTER_MEMBERS, 4);
        let (reference, _) = single_node_reference(&cfg).map_err(
            |p| TestCaseError::fail(format!("reference panicked: {p}")))?;
        let schedule = Schedule::parse(&format!("k{node}@{at}")).expect("valid token");
        let run = run_cluster(&cfg, &map, &schedule, &telemetry::Telemetry::off())
            .map_err(|p| TestCaseError::fail(format!("cluster panicked: {p}")))?;
        prop_assert!(
            run.outcome.msps.iter().all(|m| reference.msps.binary_search(m).is_ok()),
            "merged MSPs {:?} escape fault-free {:?}", run.outcome.msps, reference.msps
        );
        prop_assert!(
            run.outcome.valid_msps.iter().all(|m| reference.valid_msps.binary_search(m).is_ok()),
            "merged valid MSPs escape the fault-free set"
        );
        prop_assert!(run.outcome.total_valid <= reference.total_valid);
    }
}
