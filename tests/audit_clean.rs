//! Golden gate: the workspace stays clean under its own static
//! analyzer. Runs the `audit` library in-process over the real tree and
//! fails on any unsuppressed finding, so a hash-order leak, stray
//! nondeterminism source, naked `unsafe`, unjustified panic site, or
//! missing crate-root lint cannot land without either a fix or a
//! reasoned `// audit: allow(...)` that shows up in review.

use audit::{audit_workspace, find_workspace_root};

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with Cargo.toml");
    let report = audit_workspace(&root).expect("audit scan succeeds");
    assert!(report.files_scanned > 50, "scan saw the whole tree");
    let open: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        open.is_empty(),
        "audit found {} unsuppressed finding(s):\n{}",
        open.len(),
        open.join("\n")
    );
}

#[test]
fn no_unsafe_anywhere() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with Cargo.toml");
    let report = audit_workspace(&root).expect("audit scan succeeds");
    let total: usize = report.unsafe_census.values().sum();
    assert_eq!(total, 0, "census: {:?}", report.unsafe_census);
}

#[test]
fn every_suppression_is_reasoned_and_used() {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with Cargo.toml");
    let report = audit_workspace(&root).expect("audit scan succeeds");
    for s in &report.suppressions {
        assert!(
            !s.reason.trim().is_empty(),
            "{}:{} allow({}) has no reason",
            s.file,
            s.line,
            s.rule
        );
        assert!(
            s.used,
            "{}:{} allow({}) suppresses nothing — stale, remove it",
            s.file, s.line, s.rule
        );
    }
}
