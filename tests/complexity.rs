//! Empirical check of the crowd-complexity bound of Proposition 4.7:
//! the vertical algorithm asks `O((|E|+|R|)·|msp| + |msp⁻|)` questions,
//! where `msp⁻` is the negative border (the minimal insignificant
//! assignments).

use oassis::core::synth::{
    ground_truth_classes, plant_msps, synthetic_domain, MspDistribution, PlantedOracle,
};
use oassis::core::{run_vertical, Dag, MiningConfig};
use oassis::prelude::*;

fn negative_border(
    dag: &oassis::core::Dag<'_>,
    classes: &std::collections::HashMap<oassis::core::NodeId, bool>,
) -> usize {
    dag.node_ids()
        .filter(|&id| {
            !classes[&id]
                && dag.parents(id).next().is_some()
                && dag.parents(id).all(|p| classes[&p])
        })
        .count()
        // roots that are themselves insignificant are also border elements
        + dag
            .roots()
            .iter()
            .filter(|&&r| !classes[&r])
            .count()
}

#[test]
fn question_count_respects_proposition_4_7() {
    for (width, depth, msps, seed) in [
        (80, 5, 4, 1u64),
        (150, 6, 8, 2),
        (150, 6, 15, 3),
        (250, 7, 10, 4),
    ] {
        let d = synthetic_domain(width, depth, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);

        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, msps, true, MspDistribution::Uniform, seed);
        let patterns: Vec<PatternSet> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();
        let oracle_ref = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 1, 0);
        let classes = ground_truth_classes(&full, &oracle_ref);
        let n_msp = planted.len();
        let n_border = negative_border(&full, &classes);

        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, 0);
        let out = run_vertical(&mut dag, &mut oracle, MemberId(0), &MiningConfig::default());
        assert!(out.complete);

        let e_plus_r = d.ontology.vocab().num_elems() + d.ontology.vocab().num_rels();
        let bound = e_plus_r * n_msp + n_border;
        assert!(
            out.questions <= bound,
            "questions {} exceed the O((|E|+|R|)·|msp| + |msp⁻|) bound {} \
             (|E|+|R| = {e_plus_r}, |msp| = {n_msp}, |msp⁻| = {n_border})",
            out.questions,
            bound
        );
        // and the bound is not vacuous: the algorithm beats asking about
        // every node
        assert!(out.questions < full.len());
    }
}

#[test]
fn question_count_grows_with_msp_count_like_figure_5() {
    // More MSPs ⇒ more questions (the trend behind Figures 5a–5c).
    let d = synthetic_domain(200, 6, 0);
    let q = parse(&d.query).unwrap();
    let b = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
    let total = full.materialize_all();

    let mut last = 0usize;
    let mut counts = Vec::new();
    for pct in [2usize, 5, 10] {
        let k = (total * pct) / 100;
        let planted = plant_msps(&mut full, k, true, MspDistribution::Uniform, 9);
        let patterns: Vec<PatternSet> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, 0);
        let out = run_vertical(&mut dag, &mut oracle, MemberId(0), &MiningConfig::default());
        assert!(out.complete);
        counts.push((pct, out.questions));
        last = out.questions;
    }
    assert!(
        counts[0].1 < counts[2].1,
        "2% {} vs 10% {}: {:?}",
        counts[0].1,
        last,
        counts
    );
}
