//! Permutation-replay guarantee of the answer-operation log: replaying
//! ANY permutation of a run's op log against the post-run DAG reproduces
//! the round-driven engine's digest-bearing outcome bit-identically —
//! the canonical `(tick, member, seq)` merge order makes delivery order
//! irrelevant.
//!
//! Three layers:
//! 1. fixed-seed shuffles × pool widths {1, 4} against the multi-user
//!    engine on planted synthetic workloads (MSP set, valid set and the
//!    outcome digest must all survive);
//! 2. the same oracle under a contradiction/delay/drop fault schedule —
//!    a degraded run's log replays just as faithfully as a clean one's;
//! 3. a proptest driving random domains, plant seeds and shuffle seeds
//!    through the digest comparison, plus compensating-revision
//!    idempotence under duplicated delivery.

use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{
    run_multi, AnswerOp, Dag, FixedSampleAggregator, MiningConfig, MultiOutcome, OpVerdict,
    ReplayOutcome,
};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use simtest::{FaultyCrowd, Schedule};

/// FNV-1a over the digest-bearing fields shared by a round-driven
/// outcome and a replay outcome.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

fn fnv_usize(h: &mut u64, v: usize) {
    fnv(h, &v.to_le_bytes());
}

struct DigestFields<'a> {
    questions: usize,
    msps: usize,
    valid_msps: usize,
    undecided: usize,
    total_valid: usize,
    nodes_materialized: usize,
    complete: bool,
    events: &'a [oassis_core::DiscoveryEvent],
}

fn digest(f: &DigestFields<'_>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv_usize(&mut h, f.questions);
    fnv_usize(&mut h, f.msps);
    fnv_usize(&mut h, f.valid_msps);
    fnv_usize(&mut h, f.undecided);
    fnv_usize(&mut h, f.total_valid);
    fnv_usize(&mut h, f.nodes_materialized);
    fnv_usize(&mut h, usize::from(f.complete));
    for e in f.events {
        fnv_usize(&mut h, e.question);
        fnv(&mut h, format!("{:?}", e.kind).as_bytes());
    }
    h
}

fn run_digest(out: &MultiOutcome) -> u64 {
    digest(&DigestFields {
        questions: out.mining.questions,
        msps: out.mining.msps.len(),
        valid_msps: out.mining.valid_msps.len(),
        undecided: out.undecided,
        total_valid: out.mining.total_valid,
        nodes_materialized: out.mining.nodes_materialized,
        complete: out.mining.complete,
        events: &out.mining.events,
    })
}

fn replay_digest(r: &ReplayOutcome) -> u64 {
    digest(&DigestFields {
        questions: r.questions,
        msps: r.msps.len(),
        valid_msps: r.valid_msps.len(),
        undecided: r.undecided,
        total_valid: r.total_valid,
        nodes_materialized: r.nodes_materialized,
        complete: r.complete,
        events: &r.events,
    })
}

/// Mines a planted synthetic workload round-driven, then replays its op
/// log — canonical order plus `n_shuffles` random permutations — at the
/// given replay pool width, asserting the digest and the MSP/valid sets
/// survive every delivery order.
fn assert_permutation_oracle(
    dom_width: usize,
    n_msps: usize,
    plant_seed: u64,
    seed: u64,
    pool_width: usize,
    n_shuffles: u64,
) {
    let dom = synthetic_domain(dom_width, 5, 1);
    let q = parse(&dom.query).unwrap();
    let b = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(
        &mut full,
        n_msps,
        true,
        MspDistribution::Uniform,
        plant_seed,
    );
    let patterns: Vec<_> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();

    let mut dag = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    let mut oracle = PlantedOracle::new(dom.ontology.vocab(), patterns, 4, seed + 9);
    oracle.pruning_prob = 0.2;
    let agg = FixedSampleAggregator { sample_size: 2 };
    let cfg = MiningConfig {
        specialization_ratio: 0.2,
        seed,
        ..Default::default()
    };
    let out = run_multi(&mut dag, &mut oracle, &agg, &cfg);
    assert!(!out.mining.ops.is_empty(), "run recorded no ops");
    let reference = run_digest(&out);

    let pool = if pool_width <= 1 {
        minipool::Pool::sequential()
    } else {
        minipool::Pool::new(pool_width)
    };
    let tele = telemetry::Telemetry::off();
    let ops = &out.mining.ops;

    let replay = ops.replay(&dag, &agg, &pool, &tele);
    assert_eq!(replay.msps, out.mining.msps, "canonical replay MSP set");
    assert_eq!(replay.valid_msps, out.mining.valid_msps);
    assert_eq!(replay.events, out.mining.events);
    assert_eq!(replay_digest(&replay), reference, "canonical replay digest");

    for shuffle_seed in 0..n_shuffles {
        let mut shuffled = ops.ops().to_vec();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed ^ (shuffle_seed << 32)));
        let permuted = ops.with_ops(shuffled).replay(&dag, &agg, &pool, &tele);
        assert_eq!(
            permuted.msps, out.mining.msps,
            "shuffle {shuffle_seed} (pool {pool_width}) changed the MSP set"
        );
        assert_eq!(
            permuted.valid_msps, out.mining.valid_msps,
            "shuffle {shuffle_seed} (pool {pool_width}) changed the valid set"
        );
        assert_eq!(
            replay_digest(&permuted),
            reference,
            "shuffle {shuffle_seed} (pool {pool_width}) changed the digest"
        );
    }
}

#[test]
fn shuffled_replays_reproduce_round_driven_outcomes() {
    for seed in [11u64, 12, 13] {
        for pool_width in [1usize, 4] {
            assert_permutation_oracle(100, 6, 31, seed, pool_width, 4);
        }
    }
}

#[test]
fn faulty_runs_replay_bit_identically_under_permutation() {
    // Contradictions, a delayed answer and drops degrade the run; the
    // log of whatever the engine *did* accept must still replay under
    // any permutation.
    let ont = ontology::domains::figure1::ontology();
    let q = parse(ontology::domains::figure1::SIMPLE_QUERY).unwrap();
    let b = bind(&q, &ont).unwrap();
    let base = evaluate_where(&b, &ont, MatchMode::Exact);
    let mut dag = Dag::new(&b, ont.vocab(), &base);
    let [d1, d2] = ontology::domains::figure1::personal_dbs(&ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    let members: Vec<_> = (0..4)
        .map(|i| {
            crowd::SimulatedMember::new(
                crowd::PersonalDb::from_transactions(tx.clone()),
                crowd::MemberBehavior::default(),
                crowd::AnswerModel::Exact,
                i,
            )
        })
        .collect();
    let schedule = Schedule::parse("c0@0,c1@1,d2@0,y3@0(2)").unwrap();
    let mut faulty = FaultyCrowd::new(
        crowd::SimulatedCrowd::new(ont.vocab(), members),
        &schedule,
        4,
    );
    let agg = FixedSampleAggregator { sample_size: 4 };
    let out = run_multi(&mut dag, &mut faulty, &agg, &MiningConfig::default());
    assert!(!out.mining.ops.is_empty());
    let reference = run_digest(&out);
    let pool = minipool::Pool::sequential();
    let tele = telemetry::Telemetry::off();
    for shuffle_seed in 0..6u64 {
        let mut shuffled = out.mining.ops.ops().to_vec();
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let permuted = out
            .mining
            .ops
            .with_ops(shuffled)
            .replay(&dag, &agg, &pool, &tele);
        assert_eq!(permuted.msps, out.mining.msps);
        assert_eq!(replay_digest(&permuted), reference);
    }
}

#[test]
fn duplicated_contradiction_revisions_are_idempotent() {
    // A compensating revision op delivered twice (at-least-once
    // delivery) must change nothing beyond the compensation counter.
    let dom = synthetic_domain(80, 5, 1);
    let q = parse(&dom.query).unwrap();
    let b = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(&mut full, 5, true, MspDistribution::Uniform, 3);
    let patterns: Vec<_> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();
    let mut dag = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    let mut oracle = PlantedOracle::new(dom.ontology.vocab(), patterns, 2, 5);
    let agg = FixedSampleAggregator { sample_size: 2 };
    let out = run_multi(&mut dag, &mut oracle, &agg, &MiningConfig::default());
    let pool = minipool::Pool::sequential();
    let tele = telemetry::Telemetry::off();
    let ops = &out.mining.ops;
    let baseline = ops.replay(&dag, &agg, &pool, &tele);

    let first = ops.ops().first().expect("run recorded ops").clone();
    let mut with_revision = ops.ops().to_vec();
    for dup in 0..3u32 {
        with_revision.push(AnswerOp {
            tick: first.tick,
            seq: 1000 + dup,
            member: first.member,
            node: first.node,
            verdict: OpVerdict::Revise { support: 1.0 },
        });
    }
    let revised = ops.with_ops(with_revision).replay(&dag, &agg, &pool, &tele);
    assert_eq!(revised.compensated, 3);
    assert_eq!(revised.applied, baseline.applied);
    assert_eq!(replay_digest(&revised), replay_digest(&baseline));
    assert_eq!(revised.msps, baseline.msps);
    assert_eq!(revised.events, baseline.events);
}

#[test]
fn replay_against_a_stale_replica_reproduces_the_semantic_outcome() {
    // Every other replay in this file runs against the post-run DAG,
    // whose nodes were materialized at the ops' own ticks — so replay
    // never had to face an op referencing a node the replica had not
    // generated yet. A merging coordinator (and a restarted node
    // re-applying its durable log) does: its replica is fresh, and every
    // node is interned at merge time, long after the op's tick. Wire the
    // log through assignment addressing into a fresh replica and demand
    // the same semantic outcome.
    use oassis_core::cluster::{to_wire, Coordinator, SemanticOutcome};

    let dom = synthetic_domain(90, 5, 2);
    let q = parse(&dom.query).unwrap();
    let b = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(&mut full, 5, true, MspDistribution::Uniform, 17);
    let patterns: Vec<_> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();
    let mut dag = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    let mut oracle = PlantedOracle::new(dom.ontology.vocab(), patterns, 3, 23);
    oracle.pruning_prob = 0.15; // prune ops must survive the trip too
    let agg = FixedSampleAggregator { sample_size: 2 };
    let out = run_multi(&mut dag, &mut oracle, &agg, &MiningConfig::default());
    assert!(!out.mining.ops.is_empty());

    let wire = to_wire(&out.mining.ops, &dag);
    let mut coord = Coordinator::new(1, out.mining.ops.threshold(), true);
    assert_eq!(coord.ingest(0, 0, &wire), wire.len());
    let mut fresh = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    let pool = minipool::Pool::sequential();
    let tele = telemetry::Telemetry::off();
    let merged = coord.merge(&mut fresh, &agg, &pool, &tele, out.mining.complete);

    // assignments are replica-portable, so the semantic fields compare
    // directly even though every NodeId differs between the replicas
    assert_eq!(merged.msps, out.mining.msps);
    assert_eq!(merged.valid_msps, out.mining.valid_msps);
    assert_eq!(merged.total_valid, out.mining.total_valid);
    assert_eq!(merged.complete, out.mining.complete);
    assert_eq!(
        merged.discarded_msps, 0,
        "a single stream has no duplicates"
    );
    assert_eq!(
        SemanticOutcome::from_replay(&merged, &b, dom.ontology.vocab()),
        SemanticOutcome::from_mining(&out.mining, &b, dom.ontology.vocab()),
    );
    // the stale replica materialized only what the ops forced it to —
    // if these were equal the test would not be exercising staleness
    assert!(
        merged.nodes_materialized < out.mining.nodes_materialized,
        "fresh replica materialized {} >= engine's {}",
        merged.nodes_materialized,
        out.mining.nodes_materialized
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random domains × plant seeds × shuffle seeds: the permutation
    /// oracle holds everywhere, not just on the hand-picked workloads.
    #[test]
    fn random_shuffles_preserve_the_outcome_digest(
        dom_width in 60usize..120,
        n_msps in 3usize..7,
        plant_seed in 0u64..500,
        seed in 0u64..500,
    ) {
        assert_permutation_oracle(dom_width, n_msps, plant_seed, seed, 1, 2);
    }
}
