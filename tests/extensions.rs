//! Integration tests for the Section-8 language extensions: `TOP k`,
//! `TOP k DIVERSE`, and `IMPLYING … AND CONFIDENCE` rule queries.

use oassis::core::RuleMiningConfig;
use oassis::ontology::domains::figure1;
use oassis::prelude::*;

fn u_avg(ont: &Ontology, seed: u64) -> SimulatedMember {
    let [d1, d2] = figure1::personal_dbs(ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    SimulatedMember::new(
        PersonalDb::from_transactions(tx),
        MemberBehavior::default(),
        AnswerModel::Exact,
        seed,
    )
}

#[test]
fn top_k_parses_and_limits_answers() {
    let q = parse(
        "SELECT FACT-SETS TOP 2 WHERE $y subClassOf* Activity SATISFYING $y doAt \"Central Park\" WITH SUPPORT = 0.2",
    )
    .unwrap();
    assert_eq!(q.select.top, Some(2));
    assert!(!q.select.diverse);

    let ont = figure1::ontology();
    let engine = Oassis::new(&ont);
    let agg = FixedSampleAggregator { sample_size: 1 };
    let top_query = figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT FACT-SETS TOP 1");
    let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
    let top = engine
        .run(
            &QueryRequest::new(&top_query),
            CrowdBinding::single(&mut crowd),
            &agg,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert_eq!(top.answers.len(), 1);

    // and it saves questions against the full run
    let mut crowd_full = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
    let full = engine
        .run(
            &QueryRequest::new(figure1::SIMPLE_QUERY),
            CrowdBinding::single(&mut crowd_full),
            &agg,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(
        top.outcome.mining.questions < full.outcome.mining.questions,
        "top-1 {} vs full {}",
        top.outcome.mining.questions,
        full.outcome.mining.questions
    );
    assert!(full.answers.len() >= 3);
}

#[test]
fn top_k_diverse_spreads_answers() {
    let ont = figure1::ontology();
    let engine = Oassis::new(&ont);
    let agg = FixedSampleAggregator { sample_size: 1 };
    // full set has Biking@CP, Ball Game@CP, Feed a Monkey@Bronx Zoo;
    // 2 diverse answers must span both attractions.
    let q = figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT FACT-SETS TOP 2 DIVERSE");
    let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
    let ans = engine
        .run(
            &QueryRequest::new(&q),
            CrowdBinding::single(&mut crowd),
            &agg,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert_eq!(ans.answers.len(), 2);
    let joined = ans.answers.join(" | ");
    assert!(joined.contains("Central Park"), "{joined}");
    assert!(joined.contains("Bronx Zoo"), "{joined}");
}

#[test]
fn rule_query_via_engine() {
    let ont = figure1::ontology();
    let engine = Oassis::new(&ont);
    let src = r#"
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity.
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y doAt $x
IMPLYING
  [] eatAt $z
WITH SUPPORT = 0.3 AND CONFIDENCE = 0.75
"#;
    let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
    let cfg = RuleMiningConfig {
        panel_size: 1,
        ..Default::default()
    };
    let agg = FixedSampleAggregator { sample_size: 1 };
    let ans = engine
        .run(
            &QueryRequest::new(src).with_rules(cfg.clone()),
            CrowdBinding::single(&mut crowd),
            &agg,
        )
        .unwrap()
        .into_rules()
        .unwrap();
    assert!(!ans.answers.is_empty());
    assert!(
        ans.answers
            .iter()
            .any(|a| a.contains("Feed a Monkey doAt Bronx Zoo")
                && a.contains("⇒")
                && a.contains("eatAt Pine")),
        "{:#?}",
        ans.answers
    );
    // run() dispatches on the IMPLYING clause — the same source through a
    // plain request still comes back as a rule outcome, never a pattern one
    let mut crowd2 = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 2)]);
    let outcome = engine
        .run(
            &QueryRequest::new(src).with_rules(cfg),
            CrowdBinding::single(&mut crowd2),
            &agg,
        )
        .unwrap();
    assert!(outcome.as_patterns().is_none());
    assert!(outcome.as_rules().is_some());
}

#[test]
fn extension_syntax_validations() {
    // IMPLYING without CONFIDENCE
    let e = parse("SELECT FACT-SETS WHERE SATISFYING $x r $y IMPLYING $x s $y WITH SUPPORT = 0.2");
    assert!(e.is_err());
    // CONFIDENCE without IMPLYING
    let e =
        parse("SELECT FACT-SETS WHERE SATISFYING $x r $y WITH SUPPORT = 0.2 AND CONFIDENCE = 0.5");
    assert!(e.is_err());
    // MORE inside IMPLYING
    let e = parse(
        "SELECT FACT-SETS WHERE SATISFYING $x r $y IMPLYING MORE WITH SUPPORT = 0.2 AND CONFIDENCE = 0.5",
    );
    assert!(e.is_err());
    // TOP needs a positive integer
    assert!(parse("SELECT FACT-SETS TOP 0.5 WHERE SATISFYING $x r $y WITH SUPPORT = 0.2").is_err());
    // valid combined form round-trips
    let src = "SELECT VARIABLES ALL TOP 3 DIVERSE\nWHERE\nSATISFYING\n  $x r $y\nIMPLYING\n  $x s $y\nWITH SUPPORT = 0.25 AND CONFIDENCE = 0.8";
    let q = parse(src).unwrap();
    let q2 = parse(&q.to_string()).unwrap();
    assert_eq!(q, q2);
    assert_eq!(q.select.top, Some(3));
    assert!(q.select.diverse);
    assert_eq!(q.satisfying.confidence_threshold, Some(0.8));
}

#[test]
fn asking_clause_restricts_the_crowd() {
    // Two locals with real knowledge + two tourists who know nothing;
    // ASKING "local" must recruit only the locals.
    let ont = figure1::ontology();
    let v = ont.vocab();
    let [d1, d2] = figure1::personal_dbs(&ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    let local = |seed| {
        SimulatedMember::new(
            PersonalDb::from_transactions(tx.clone()),
            MemberBehavior::default(),
            AnswerModel::Exact,
            seed,
        )
        .with_profile(&["local"])
    };
    let tourist = |seed| {
        SimulatedMember::new(
            PersonalDb::new(),
            MemberBehavior::default(),
            AnswerModel::Exact,
            seed,
        )
        .with_profile(&["tourist"])
    };
    let members = vec![local(1), tourist(2), local(3), tourist(4)];
    let engine = Oassis::new(&ont);
    let agg = FixedSampleAggregator { sample_size: 2 };
    let asking_query = figure1::SIMPLE_QUERY.replace("WHERE", "ASKING \"local\"\nWHERE");
    let q = parse(&asking_query).unwrap();
    assert_eq!(q.asking.as_deref(), Some("local"));

    let mut crowd = SimulatedCrowd::new(v, members.clone());
    let ans = engine
        .run(
            &QueryRequest::new(&asking_query),
            CrowdBinding::single(&mut crowd),
            &agg,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(
        ans.answers.iter().any(|a| a == "Biking doAt Central Park"),
        "{:?}",
        ans.answers
    );
    // only the two locals were recruited
    assert_eq!(
        ans.outcome.answers_per_member.len(),
        2,
        "recruited: {:?}",
        ans.outcome.answers_per_member
    );
    assert!(ans.outcome.answers_per_member.iter().all(|&n| n > 0));

    // without ASKING, the empty-history tourists dilute the average below
    // the threshold and the answer set changes
    let mut crowd_all = SimulatedCrowd::new(v, members);
    let agg4 = FixedSampleAggregator { sample_size: 4 };
    let all_ans = engine
        .run(
            &QueryRequest::new(figure1::SIMPLE_QUERY),
            CrowdBinding::single(&mut crowd_all),
            &agg4,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(
        !all_ans
            .answers
            .iter()
            .any(|a| a == "Biking doAt Central Park"),
        "{:?}",
        all_ans.answers
    );
}
