//! Cross-crate test: the full multi-user mining engine running over
//! concurrent crowd sessions (crowd::parallel), and agreement with the
//! sequential crowd.

use oassis::crowd::with_parallel_crowd;
use oassis::ontology::domains::figure1;
use oassis::prelude::*;

fn members(ont: &Ontology) -> Vec<SimulatedMember> {
    let [d1, d2] = figure1::personal_dbs(ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    (0..4)
        .map(|i| {
            SimulatedMember::new(
                PersonalDb::from_transactions(tx.clone()),
                MemberBehavior::default(),
                AnswerModel::Exact,
                i,
            )
        })
        .collect()
}

#[test]
fn engine_results_identical_on_parallel_and_sequential_crowds() {
    let ont = figure1::ontology();
    let engine = Oassis::new(&ont);
    let agg = FixedSampleAggregator { sample_size: 4 };
    let cfg = MiningConfig::default();

    let mut seq = SimulatedCrowd::new(ont.vocab(), members(&ont));
    let seq_ans = engine
        .execute(figure1::SIMPLE_QUERY, &mut seq, &agg, &cfg)
        .unwrap();

    let (par_ans, returned) = with_parallel_crowd(ont.vocab(), members(&ont), |crowd| {
        engine
            .execute(figure1::SIMPLE_QUERY, crowd, &agg, &cfg)
            .unwrap()
    });

    let mut a = seq_ans.answers.clone();
    let mut b = par_ans.answers.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(
        seq_ans.outcome.mining.questions,
        par_ans.outcome.mining.questions
    );
    assert!(par_ans.outcome.mining.complete);
    // every member worked
    assert!(returned.iter().all(|m| m.questions_answered() > 0));
}
