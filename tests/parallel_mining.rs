//! Cross-crate test: the full multi-user mining engine running over
//! concurrent crowd sessions (crowd::parallel), agreement with the
//! sequential crowd, and graceful degradation of the single `run` entry
//! point under simulated fault schedules.

use oassis::crowd::with_parallel_crowd;
use oassis::ontology::domains::figure1;
use oassis::prelude::*;
use simtest::{FaultyCrowd, Schedule};

fn members(ont: &Ontology) -> Vec<SimulatedMember> {
    let [d1, d2] = figure1::personal_dbs(ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    (0..4)
        .map(|i| {
            SimulatedMember::new(
                PersonalDb::from_transactions(tx.clone()),
                MemberBehavior::default(),
                AnswerModel::Exact,
                i,
            )
        })
        .collect()
}

#[test]
fn engine_results_identical_on_parallel_and_sequential_crowds() {
    let ont = figure1::ontology();
    let engine = Oassis::new(&ont);
    let agg = FixedSampleAggregator { sample_size: 4 };
    let cfg = MiningConfig::default();

    let mut seq = SimulatedCrowd::new(ont.vocab(), members(&ont));
    let request = QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(cfg.clone());
    let seq_ans = engine
        .run(&request, CrowdBinding::single(&mut seq), &agg)
        .unwrap()
        .into_patterns()
        .unwrap();

    let (par_ans, returned) = with_parallel_crowd(ont.vocab(), members(&ont), |crowd| {
        engine
            .run(&request, CrowdBinding::single(crowd), &agg)
            .unwrap()
            .into_patterns()
            .unwrap()
    });

    let mut a = seq_ans.answers.clone();
    let mut b = par_ans.answers.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(
        seq_ans.outcome.mining.questions,
        par_ans.outcome.mining.questions
    );
    assert!(par_ans.outcome.mining.complete);
    // every member worked
    assert!(returned.iter().all(|m| m.questions_answered() > 0));
}

#[test]
fn execute_degrades_gracefully_under_fault_schedules() {
    // Drops, absences, a timed-out delay and a mid-query departure hit
    // the Figure-1 crowd; the engine must not panic, must keep the
    // answered subset truthful, and must report the degradation in the
    // partial-answer manifest instead of claiming completeness.
    let ont = figure1::ontology();
    let engine = Oassis::new(&ont).with_policy(oassis::crowd::CrowdPolicy::default());
    let agg = FixedSampleAggregator { sample_size: 4 };
    let cfg = MiningConfig::default();

    let request = QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(cfg.clone());
    let fault_free = {
        let mut crowd = SimulatedCrowd::new(ont.vocab(), members(&ont));
        let mut ans = engine
            .run(&request, CrowdBinding::single(&mut crowd), &agg)
            .unwrap()
            .into_patterns()
            .unwrap();
        ans.answers.sort();
        ans
    };

    let schedule = Schedule::parse("d0@0,d0@1,d0@2,y1@0(9),a2@1(5),x3@2").unwrap();
    let mut faulty = FaultyCrowd::new(
        SimulatedCrowd::new(ont.vocab(), members(&ont)),
        &schedule,
        4,
    );
    let mut ans = engine
        .run(&request, CrowdBinding::single(&mut faulty), &agg)
        .unwrap()
        .into_patterns()
        .unwrap();
    ans.answers.sort();

    for a in &ans.answers {
        assert!(
            fault_free.answers.contains(a),
            "faulty run invented answer {a:?}"
        );
    }
    let out = &ans.outcome.mining;
    assert!(
        out.manifest.timeouts > 0,
        "the schedule's drops must surface as timeouts"
    );
    if !out.manifest.unanswered.is_empty() {
        assert!(!out.complete, "unanswered patterns but complete == true");
    }
}

#[test]
fn execute_concurrent_is_width_independent_under_fault_schedules() {
    // Two thresholds of the same query, each crowd wrapped in the same
    // fault schedule: outcomes (answers, questions, manifest counters)
    // must not depend on the pool width, and replaying must be
    // bit-identical.
    let ont = figure1::ontology();
    let agg = FixedSampleAggregator { sample_size: 4 };
    let cfg = MiningConfig::default();
    let queries = [
        figure1::SIMPLE_QUERY.replace("WITH SUPPORT = 0.4", "WITH SUPPORT = 0.3"),
        figure1::SIMPLE_QUERY.to_owned(),
    ];
    let query_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let schedule = Schedule::parse("d1@0,a0@2(4),c2@3").unwrap();

    let run_at = |width: usize| -> Vec<(Vec<String>, usize, usize, usize, bool)> {
        let engine = Oassis::new(&ont)
            .with_policy(oassis::crowd::CrowdPolicy::default())
            .with_pool(minipool::Pool::new(width));
        let cache = oassis::core::SharedCrowdCache::default();
        let request = QueryRequest::batch(&query_refs).with_mining(cfg.clone());
        let make = |_| {
            FaultyCrowd::new(
                SimulatedCrowd::new(ont.vocab(), members(&ont)),
                &schedule,
                4,
            )
        };
        engine
            .run(&request, CrowdBinding::per_query(make, &cache), &agg)
            .unwrap()
            .into_batch()
            .unwrap()
            .into_iter()
            .map(|r| {
                let a = r.expect("query failed under faults");
                let mut answers = a.answers;
                answers.sort();
                let m = &a.outcome.mining;
                (
                    answers,
                    m.questions,
                    m.manifest.timeouts,
                    m.manifest.retries,
                    m.complete,
                )
            })
            .collect()
    };

    let reference = run_at(1);
    for width in [2usize, 4] {
        assert_eq!(
            run_at(width),
            reference,
            "pool width {width} changed a faulty concurrent outcome"
        );
    }
}
