//! Telemetry determinism and trace-replay guarantees.
//!
//! Two halves:
//!
//! 1. **NoopSink bit-identity** — the golden workloads of
//!    `tests/golden_outcomes.rs` re-run with an explicit [`NoopSink`]
//!    handle at every pool width {sequential, 1, 2, 4, 8} must
//!    reproduce the PR-1 golden digests exactly: disabled telemetry is
//!    observationally free. A recording sink must be outcome-neutral
//!    too — same digest, with a non-empty trace on the side.
//!
//! 2. **Trace replay** — a faulty run recorded through the single-entry
//!    [`Oassis::run`] API (with `with_trace_path`) emits a JSONL trace
//!    whose schema parses with `ontology::json`, whose spans nest
//!    properly with non-decreasing ticks, and whose question accounting
//!    (timeout/retry marks, `engine.questions` and per-kind counters)
//!    matches the run's [`PartialManifest`] and `QuestionStats` exactly.

use crowd::{
    AnswerModel, CrowdPolicy, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember,
};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{
    run_multi, run_vertical, CrowdBinding, Dag, FixedSampleAggregator, MiningConfig, MiningOutcome,
    MultiOutcome, Oassis, QueryRequest,
};
use oassis_ql::{bind, evaluate_where, parse, BoundQuery, MatchMode};
use ontology::domains::figure1;
use ontology::json::{self, Json};
use simtest::{FaultyCrowd, Schedule};
use telemetry::{NoopSink, Telemetry, TelemetrySink, TraceEvent};

// The PR-1 golden constants (see tests/golden_outcomes.rs).
const GOLDEN_VERTICAL_SYNTHETIC: u64 = 0xdeab91c0df65d2d8;
const GOLDEN_MULTI_FIGURE1: u64 = 0x91d1bfe9c869b6ad;
const GOLDEN_MULTI_SYNTHETIC: u64 = 0x4b3695f5ead79508;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fnv_usize(h: &mut u64, v: usize) {
    fnv(h, &(v as u64).to_le_bytes());
}

fn digest_outcome(out: &MiningOutcome, b: &BoundQuery, vocab: &ontology::Vocabulary) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv_usize(&mut h, out.questions);
    fnv_usize(&mut h, out.msps.len());
    fnv_usize(&mut h, out.valid_msps.len());
    fnv_usize(&mut h, out.significant_valid.len());
    fnv_usize(&mut h, out.total_valid);
    fnv_usize(&mut h, out.valid_mult_nodes);
    fnv_usize(&mut h, out.nodes_materialized);
    fnv_usize(&mut h, usize::from(out.complete));
    for m in &out.msps {
        fnv(&mut h, m.apply(b).to_display(vocab).as_bytes());
    }
    for e in &out.events {
        fnv_usize(&mut h, e.question);
        fnv(&mut h, format!("{:?}", e.kind).as_bytes());
    }
    h
}

fn digest_multi(out: &MultiOutcome, b: &BoundQuery, vocab: &ontology::Vocabulary) -> u64 {
    let mut h = digest_outcome(&out.mining, b, vocab);
    fnv_usize(&mut h, out.undecided);
    fnv_usize(&mut h, out.question_stats.concrete);
    fnv_usize(&mut h, out.question_stats.specialization);
    fnv_usize(&mut h, out.question_stats.none_of_these);
    fnv_usize(&mut h, out.question_stats.pruning);
    for &n in &out.answers_per_member {
        fnv_usize(&mut h, n);
    }
    h
}

/// Figure-1 member whose answers average u1 and u2 (Example 4.6).
fn u_avg(ont: &ontology::Ontology, seed: u64) -> SimulatedMember {
    let [d1, d2] = figure1::personal_dbs(ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    SimulatedMember::new(
        PersonalDb::from_transactions(tx),
        MemberBehavior::default(),
        AnswerModel::Exact,
        seed,
    )
}

/// Pools exercised by the bit-identity sweep: the sequential scheduler
/// plus fork-join widths 1, 2, 4 and 8.
fn pools() -> Vec<minipool::Pool> {
    let mut ps = vec![minipool::Pool::sequential()];
    ps.extend([1usize, 2, 4, 8].into_iter().map(minipool::Pool::new));
    ps
}

/// The golden `multi_synthetic_crowd_with_pruning_clicks` recipe with an
/// explicit telemetry handle and pool.
fn multi_synthetic_digest(tele: Telemetry, pool: minipool::Pool) -> u64 {
    let dom = synthetic_domain(120, 5, 1);
    let q = parse(&dom.query).unwrap();
    let b = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(&mut full, 6, true, MspDistribution::Uniform, 31);
    let patterns: Vec<_> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();

    let mut dag = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    let mut oracle = PlantedOracle::new(dom.ontology.vocab(), patterns, 6, 17);
    oracle.pruning_prob = 0.3;
    let agg = FixedSampleAggregator { sample_size: 3 };
    let cfg = MiningConfig {
        specialization_ratio: 0.25,
        seed: 8,
        pool,
        telemetry: tele,
        ..Default::default()
    };
    let out = run_multi(&mut dag, &mut oracle, &agg, &cfg);
    digest_multi(&out, &b, dom.ontology.vocab())
}

/// The golden `vertical_synthetic_with_specialization_questions` recipe
/// with an explicit telemetry handle and pool.
fn vertical_synthetic_digest(tele: Telemetry, pool: minipool::Pool) -> u64 {
    let dom = synthetic_domain(150, 6, 0);
    let q = parse(&dom.query).unwrap();
    let b = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(&mut full, 8, true, MspDistribution::Uniform, 21);
    let patterns: Vec<_> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();

    let mut dag = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    let mut oracle = PlantedOracle::new(dom.ontology.vocab(), patterns, 1, 9);
    oracle.pruning_prob = 0.5;
    let cfg = MiningConfig {
        specialization_ratio: 0.5,
        seed: 4,
        pool,
        telemetry: tele,
        ..Default::default()
    };
    let out = run_vertical(&mut dag, &mut oracle, crowd::MemberId(0), &cfg);
    digest_outcome(&out, &b, dom.ontology.vocab())
}

/// The golden `multi_figure1_two_members` recipe with an explicit
/// telemetry handle and pool.
fn multi_figure1_digest(tele: Telemetry, pool: minipool::Pool) -> u64 {
    let ont = figure1::ontology();
    let q = parse(figure1::SIMPLE_QUERY).unwrap();
    let b = bind(&q, &ont).unwrap();
    let base = evaluate_where(&b, &ont, MatchMode::Exact);
    let mut dag = Dag::new(&b, ont.vocab(), &base);
    let members = vec![u_avg(&ont, 1), u_avg(&ont, 2)];
    let mut crowd = SimulatedCrowd::new(ont.vocab(), members);
    let agg = FixedSampleAggregator { sample_size: 2 };
    let cfg = MiningConfig {
        pool,
        telemetry: tele,
        ..Default::default()
    };
    let out = run_multi(&mut dag, &mut crowd, &agg, &cfg);
    digest_multi(&out, &b, ont.vocab())
}

#[test]
fn noop_sink_reproduces_golden_digests_at_every_pool_width() {
    for pool in pools() {
        assert_eq!(
            multi_figure1_digest(NoopSink.handle(), pool),
            GOLDEN_MULTI_FIGURE1,
            "multi_figure1 digest drifted under NoopSink (pool {pool:?})"
        );
        assert_eq!(
            multi_synthetic_digest(NoopSink.handle(), pool),
            GOLDEN_MULTI_SYNTHETIC,
            "multi_synthetic digest drifted under NoopSink (pool {pool:?})"
        );
        assert_eq!(
            vertical_synthetic_digest(NoopSink.handle(), pool),
            GOLDEN_VERTICAL_SYNTHETIC,
            "vertical_synthetic digest drifted under NoopSink (pool {pool:?})"
        );
    }
}

#[test]
fn recording_sink_is_outcome_neutral_and_trace_is_pool_independent() {
    // a recording sink must not change what the engine asks or concludes
    let sink = TelemetrySink::shared();
    let d = multi_synthetic_digest(Telemetry::recording(&sink), minipool::Pool::sequential());
    assert_eq!(d, GOLDEN_MULTI_SYNTHETIC, "recording perturbed the outcome");
    assert!(
        !sink.events().is_empty(),
        "recording run captured no events"
    );
    assert!(sink.counter("engine.questions") > 0);

    // and the recorded trace itself must not depend on the pool width
    for width in [2usize, 8] {
        let wide = TelemetrySink::shared();
        let dw = multi_synthetic_digest(Telemetry::recording(&wide), minipool::Pool::new(width));
        assert_eq!(dw, GOLDEN_MULTI_SYNTHETIC);
        assert_eq!(
            sink.to_jsonl(),
            wide.to_jsonl(),
            "trace differs at pool width {width}"
        );
        // counters are pool-independent; histograms too, except the
        // `minipool.*` family, which measures parallel fan-out batches
        // and is definitionally absent in sequential mode
        let (a, b) = (sink.snapshot(), wide.snapshot());
        assert_eq!(a.counters, b.counters, "counters differ at width {width}");
        let shard_free = |s: &telemetry::Snapshot| {
            s.histograms
                .iter()
                .filter(|(k, _)| !k.starts_with("minipool."))
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect::<std::collections::BTreeMap<_, _>>()
        };
        assert_eq!(
            shard_free(&a),
            shard_free(&b),
            "histograms differ at width {width}"
        );
    }
}

/// Validates one parsed JSONL line against the trace schema, returning
/// `(type, tick, name, id, parent)`.
fn check_line(doc: &Json) -> (String, u64, Option<String>, Option<u32>, Option<u32>) {
    let ty = doc.field("type").unwrap().as_str().unwrap().to_owned();
    let tick = doc.field("tick").unwrap().as_f64().unwrap() as u64;
    let parent = doc.field("parent").ok().and_then(|p| p.as_u32().ok());
    match ty.as_str() {
        "span_start" => {
            let id = doc.field("id").unwrap().as_u32().unwrap();
            let name = doc.field("name").unwrap().as_str().unwrap().to_owned();
            doc.field("detail").unwrap().as_str().unwrap();
            (ty, tick, Some(name), Some(id), parent)
        }
        "span_end" => {
            let id = doc.field("id").unwrap().as_u32().unwrap();
            (ty, tick, None, Some(id), None)
        }
        "mark" => {
            let name = doc.field("name").unwrap().as_str().unwrap().to_owned();
            doc.field("detail").unwrap().as_str().unwrap();
            (ty, tick, Some(name), None, parent)
        }
        other => panic!("unknown trace event type {other:?}"),
    }
}

#[test]
fn recorded_jsonl_trace_replays_against_the_manifest() {
    let ont = figure1::ontology();
    let sink = TelemetrySink::shared();
    let policy = CrowdPolicy::default();
    let trace_path = std::env::temp_dir().join("oassis-telemetry-trace-test.jsonl");

    // drops on both members force timeouts; the default policy retries,
    // and the FaultyCrowd's drop semantics guarantee the retry succeeds
    let schedule = Schedule::parse("d0@0,d1@2,d0@5").unwrap();
    let crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1), u_avg(&ont, 2)]);
    let mut faulty = FaultyCrowd::new(crowd, &schedule, policy.timeout_ticks)
        .with_telemetry(Telemetry::recording(&sink));

    let engine = Oassis::new(&ont).with_policy(policy);
    let cfg = MiningConfig {
        telemetry: Telemetry::recording(&sink),
        ..Default::default()
    };
    let request = QueryRequest::new(figure1::SIMPLE_QUERY)
        .with_mining(cfg)
        .with_trace_path(&trace_path);
    let answer = engine
        .run(
            &request,
            CrowdBinding::single(&mut faulty),
            &FixedSampleAggregator { sample_size: 2 },
        )
        .expect("query runs")
        .into_patterns()
        .expect("pattern query");

    let manifest = &answer.outcome.mining.manifest;
    assert!(manifest.timeouts > 0, "schedule induced no timeouts");
    assert!(manifest.retries > 0, "policy issued no retries");

    // --- the serialized trace parses and matches the in-memory one ----
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert_eq!(text, sink.to_jsonl(), "file and sink disagree");
    let _ = std::fs::remove_file(&trace_path);

    let mut open: Vec<u32> = Vec::new(); // open span ids, in open order
    let mut last_tick = 0u64;
    let mut timeout_marks = 0usize;
    let mut retry_marks = 0usize;
    let mut question_spans = 0usize;
    for line in text.lines() {
        let doc = json::parse(line).expect("trace line parses as JSON");
        let (ty, tick, name, id, parent) = check_line(&doc);
        assert!(tick >= last_tick, "ticks must be non-decreasing");
        last_tick = tick;
        match ty.as_str() {
            "span_start" => {
                if let Some(p) = parent {
                    assert!(open.contains(&p), "span parent {p} is not open");
                }
                open.push(id.unwrap());
                if name.as_deref() == Some("question") {
                    question_spans += 1;
                }
            }
            "span_end" => {
                let id = id.unwrap();
                assert!(open.contains(&id), "span {id} ended but was never open");
                open.retain(|&x| x != id);
            }
            _ => {
                if let Some(p) = parent {
                    assert!(open.contains(&p), "mark parent {p} is not open");
                }
                match name.as_deref() {
                    Some("timeout") => timeout_marks += 1,
                    Some("retry") => retry_marks += 1,
                    _ => {}
                }
            }
        }
    }
    assert!(open.is_empty(), "spans left open at end of trace: {open:?}");

    // --- question accounting matches the manifest and the stats -------
    assert_eq!(timeout_marks, manifest.timeouts, "timeout marks ≠ manifest");
    assert_eq!(retry_marks, manifest.retries, "retry marks ≠ manifest");
    assert_eq!(
        sink.counter("engine.questions") as usize,
        answer.outcome.mining.questions,
        "engine.questions counter ≠ outcome question count"
    );
    let stats = &answer.outcome.question_stats;
    assert_eq!(sink.counter("questions.concrete") as usize, stats.concrete);
    assert_eq!(
        sink.counter("questions.specialization") as usize,
        stats.specialization
    );
    assert_eq!(
        sink.counter("questions.none_of_these") as usize,
        stats.none_of_these
    );
    assert_eq!(sink.counter("questions.pruning") as usize, stats.pruning);
    // every answered question went through exactly one "question" span
    assert!(question_spans >= answer.outcome.mining.questions);
    // the simulation wrapper's fault counters landed in the same sink
    assert_eq!(sink.counter("sim.drops"), 3);

    // replaying the identical faulty run reproduces the identical trace
    let resink = TelemetrySink::shared();
    let crowd2 = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1), u_avg(&ont, 2)]);
    let mut faulty2 = FaultyCrowd::new(crowd2, &schedule, policy.timeout_ticks)
        .with_telemetry(Telemetry::recording(&resink));
    let cfg2 = MiningConfig {
        telemetry: Telemetry::recording(&resink),
        ..Default::default()
    };
    let request2 = QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(cfg2);
    engine
        .run(
            &request2,
            CrowdBinding::single(&mut faulty2),
            &FixedSampleAggregator { sample_size: 2 },
        )
        .expect("replay runs");
    assert_eq!(text, resink.to_jsonl(), "faulty trace is not replayable");
}

/// The trace events exposed programmatically agree with the JSONL dump.
#[test]
fn in_memory_events_and_jsonl_agree_on_counts() {
    let sink = TelemetrySink::shared();
    multi_synthetic_digest(Telemetry::recording(&sink), minipool::Pool::sequential());
    let events = sink.events();
    let lines = sink.to_jsonl().lines().count();
    assert_eq!(events.len(), lines);
    let starts = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::SpanStart { .. }))
        .count();
    let ends = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::SpanEnd { .. }))
        .count();
    assert_eq!(starts, ends, "every span start must have a matching end");
}
