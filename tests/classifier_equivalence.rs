//! Property test: the indexed classifier (closure-fingerprint postings +
//! eager DAG propagation) is observationally equivalent to the historical
//! witness-scan classifier under arbitrary interleavings of witness
//! marks, pruning clicks and queries.
//!
//! The reference below reimplements the *old* observable semantics from
//! scratch, independently of `classify.rs`:
//!
//! - classification queries are cache-first, and the first non-`Unknown`
//!   answer for a node sticks forever (later contradictory witnesses or
//!   pruning clicks never flip an already-queried node);
//! - an uncached query computes pruned → significant-witness scan →
//!   insignificant-witness scan, in that priority order;
//! - `mark_*` overwrites any cached value for the marked node;
//! - pruning never invalidates the cache (the old `retain` was a no-op —
//!   `Unknown` was never cached).

use oassis_core::synth::synthetic_domain;
use oassis_core::{Class, Classifier, Dag, NodeId};
use oassis_ql::{bind, evaluate_where, parse, MatchMode, Value};
use ontology::{ElemId, Vocabulary};
use proptest::prelude::*;
use std::collections::HashMap;

/// Independent reimplementation of the pre-index classifier semantics.
#[derive(Default)]
struct RefClassifier {
    sig: Vec<NodeId>,
    insig: Vec<NodeId>,
    pruned: Vec<ElemId>,
    cache: HashMap<NodeId, Class>,
}

impl RefClassifier {
    fn mark_significant(&mut self, id: NodeId) {
        self.sig.push(id);
        self.cache.insert(id, Class::Significant);
    }

    fn mark_insignificant(&mut self, id: NodeId) {
        self.insig.push(id);
        self.cache.insert(id, Class::Insignificant);
    }

    fn prune_elem(&mut self, e: ElemId) {
        self.pruned.push(e);
    }

    fn pruned_matches(&self, vocab: &Vocabulary, dag: &Dag<'_>, id: NodeId) -> bool {
        let a = &dag.node(id).assignment;
        let hit = |e: ElemId| self.pruned.iter().any(|&p| vocab.elem_leq(p, e));
        for si in 0..a.num_slots() {
            for &v in a.slot(oassis_core::Slot(si as u16)) {
                if let Value::Elem(e) = v {
                    if hit(e) {
                        return true;
                    }
                }
            }
        }
        a.more().iter().any(|f| hit(f.subject) || hit(f.object))
    }

    fn class(&mut self, dag: &Dag<'_>, id: NodeId) -> Class {
        if let Some(&c) = self.cache.get(&id) {
            return c;
        }
        let vocab = dag.vocab();
        let a = &dag.node(id).assignment;
        let c = if self.pruned_matches(vocab, dag, id) {
            Class::Insignificant
        } else if self
            .sig
            .iter()
            .any(|&w| a.leq(vocab, &dag.node(w).assignment))
        {
            Class::Significant
        } else if self
            .insig
            .iter()
            .any(|&w| dag.node(w).assignment.leq(vocab, a))
        {
            Class::Insignificant
        } else {
            Class::Unknown
        };
        if c != Class::Unknown {
            self.cache.insert(id, c);
        }
        c
    }
}

/// Expands the DAG breadth-first until `cap` nodes are materialized.
fn expand(dag: &mut Dag<'_>, cap: usize) {
    let mut cursor = 0usize;
    while cursor < dag.len() && dag.len() < cap {
        dag.children(NodeId(cursor as u32));
        cursor += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_classifier_matches_witness_scan_reference(
        width in 20usize..80,
        depth in 3usize..6,
        seed in any::<u64>(),
        ops in proptest::collection::vec(any::<u32>(), 1..120),
    ) {
        let d = synthetic_domain(width, depth, seed);
        let q = parse(&d.query).unwrap();
        let bound = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&bound, &d.ontology, MatchMode::Exact);
        let vocab = d.ontology.vocab();
        let mut dag = Dag::new(&bound, vocab, &base);
        expand(&mut dag, 250);
        if dag.is_empty() {
            return Ok(());
        }
        let elems: Vec<ElemId> = vocab.elems().collect();

        let mut cls = Classifier::new();
        let mut reference = RefClassifier::default();
        for &op in &ops {
            let id = NodeId(((op >> 2) as usize % dag.len()) as u32);
            match op % 4 {
                0 => {
                    cls.mark_significant(&dag, id);
                    reference.mark_significant(id);
                }
                1 => {
                    cls.mark_insignificant(&dag, id);
                    reference.mark_insignificant(id);
                }
                2 => {
                    let e = elems[(op >> 2) as usize % elems.len()];
                    cls.prune_elem(&dag, e);
                    reference.prune_elem(e);
                }
                _ => {
                    prop_assert_eq!(
                        cls.class(&dag, id),
                        reference.class(&dag, id),
                        "query diverged on node {:?}",
                        id
                    );
                }
            }
        }
        // final sweep: every materialized node must agree, including ones
        // whose class was pinned by an earlier query
        for id in dag.node_ids() {
            prop_assert_eq!(
                cls.class(&dag, id),
                reference.class(&dag, id),
                "sweep diverged on node {:?}",
                id
            );
        }
    }
}
