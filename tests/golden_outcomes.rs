//! Bit-identity regression guard for the mining engine.
//!
//! Every workload below is fully deterministic (seeded RNGs, fixed
//! ontologies); the digests were captured before the indexed
//! classification engine landed, and the indexed code paths must
//! reproduce them **exactly** — same questions in the same order, same
//! MSPs, same discovery-event streams. A digest change means an
//! optimization altered mining outcomes, which is a bug regardless of
//! how much faster it got.
//!
//! If a deliberate semantic change ever invalidates these values, rerun
//! with `cargo test --test golden_outcomes -- --nocapture` and update the
//! constants — in the same commit as the semantic change, with a log
//! message explaining why outcomes moved.

use crowd::{AnswerModel, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{
    run_multi, run_vertical, Dag, FixedSampleAggregator, MiningConfig, MiningOutcome, MultiOutcome,
};
use oassis_ql::{bind, evaluate_where, parse, BoundQuery, MatchMode};
use ontology::domains::figure1;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fnv_usize(h: &mut u64, v: usize) {
    fnv(h, &(v as u64).to_le_bytes());
}

/// Folds a mining outcome into a digest: counts, rendered MSPs (in
/// discovery order) and the full event stream.
fn digest_outcome(out: &MiningOutcome, b: &BoundQuery, vocab: &ontology::Vocabulary) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv_usize(&mut h, out.questions);
    fnv_usize(&mut h, out.msps.len());
    fnv_usize(&mut h, out.valid_msps.len());
    fnv_usize(&mut h, out.significant_valid.len());
    fnv_usize(&mut h, out.total_valid);
    fnv_usize(&mut h, out.valid_mult_nodes);
    fnv_usize(&mut h, out.nodes_materialized);
    fnv_usize(&mut h, usize::from(out.complete));
    for m in &out.msps {
        fnv(&mut h, m.apply(b).to_display(vocab).as_bytes());
    }
    for e in &out.events {
        fnv_usize(&mut h, e.question);
        fnv(&mut h, format!("{:?}", e.kind).as_bytes());
    }
    h
}

fn digest_multi(out: &MultiOutcome, b: &BoundQuery, vocab: &ontology::Vocabulary) -> u64 {
    let mut h = digest_outcome(&out.mining, b, vocab);
    fnv_usize(&mut h, out.undecided);
    fnv_usize(&mut h, out.question_stats.concrete);
    fnv_usize(&mut h, out.question_stats.specialization);
    fnv_usize(&mut h, out.question_stats.none_of_these);
    fnv_usize(&mut h, out.question_stats.pruning);
    for &n in &out.answers_per_member {
        fnv_usize(&mut h, n);
    }
    h
}

/// Figure-1 member whose answers average u1 and u2 (Example 4.6).
fn u_avg(ont: &ontology::Ontology, behavior: MemberBehavior, seed: u64) -> SimulatedMember {
    let [d1, d2] = figure1::personal_dbs(ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    SimulatedMember::new(
        PersonalDb::from_transactions(tx),
        behavior,
        AnswerModel::Exact,
        seed,
    )
}

#[test]
fn vertical_figure1_sample_query_with_pruning_and_tips() {
    // SAMPLE_QUERY requests MORE facts, so tips exercise attach_more_tip;
    // the pruning probability exercises Irrelevant answers end to end.
    let ont = figure1::ontology();
    let q = parse(figure1::SAMPLE_QUERY).unwrap();
    let b = bind(&q, &ont).unwrap();
    let base = evaluate_where(&b, &ont, MatchMode::Exact);
    let mut dag = Dag::new(&b, ont.vocab(), &base);
    let behavior = MemberBehavior {
        pruning_prob: 0.5,
        more_tip_prob: 0.5,
        ..Default::default()
    };
    let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, behavior, 11)]);
    let cfg = MiningConfig {
        specialization_ratio: 0.3,
        seed: 3,
        ..Default::default()
    };
    let out = run_vertical(&mut dag, &mut crowd, crowd::MemberId(0), &cfg);
    let d = digest_outcome(&out, &b, ont.vocab());
    println!("vertical_figure1 digest = 0x{d:016x}");
    assert_eq!(d, GOLDEN_VERTICAL_FIGURE1);
}

#[test]
fn vertical_synthetic_with_specialization_questions() {
    let dom = synthetic_domain(150, 6, 0);
    let q = parse(&dom.query).unwrap();
    let b = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(&mut full, 8, true, MspDistribution::Uniform, 21);
    let patterns: Vec<_> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();

    let mut dag = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    let mut oracle = PlantedOracle::new(dom.ontology.vocab(), patterns, 1, 9);
    oracle.pruning_prob = 0.5;
    let cfg = MiningConfig {
        specialization_ratio: 0.5,
        seed: 4,
        ..Default::default()
    };
    let out = run_vertical(&mut dag, &mut oracle, crowd::MemberId(0), &cfg);
    let d = digest_outcome(&out, &b, dom.ontology.vocab());
    println!("vertical_synthetic digest = 0x{d:016x}");
    assert_eq!(d, GOLDEN_VERTICAL_SYNTHETIC);
}

#[test]
fn multi_figure1_two_members() {
    let ont = figure1::ontology();
    let q = parse(figure1::SIMPLE_QUERY).unwrap();
    let b = bind(&q, &ont).unwrap();
    let base = evaluate_where(&b, &ont, MatchMode::Exact);
    let mut dag = Dag::new(&b, ont.vocab(), &base);
    let members = vec![
        u_avg(&ont, MemberBehavior::default(), 1),
        u_avg(&ont, MemberBehavior::default(), 2),
    ];
    let mut crowd = SimulatedCrowd::new(ont.vocab(), members);
    let agg = FixedSampleAggregator { sample_size: 2 };
    let out = run_multi(&mut dag, &mut crowd, &agg, &MiningConfig::default());
    let d = digest_multi(&out, &b, ont.vocab());
    println!("multi_figure1 digest = 0x{d:016x}");
    assert_eq!(d, GOLDEN_MULTI_FIGURE1);
}

#[test]
fn multi_synthetic_crowd_with_pruning_clicks() {
    // A 6-member crowd with bucketed answers and pruning clicks over a
    // synthetic domain: exercises the multi-user frontier queues, the
    // aggregator quorum and the bulk pruning path of ask_concrete.
    let dom = synthetic_domain(120, 5, 1);
    let q = parse(&dom.query).unwrap();
    let b = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(&mut full, 6, true, MspDistribution::Uniform, 31);
    let patterns: Vec<_> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();

    let mut dag = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    let mut oracle = PlantedOracle::new(dom.ontology.vocab(), patterns, 6, 17);
    oracle.pruning_prob = 0.3;
    let agg = FixedSampleAggregator { sample_size: 3 };
    let cfg = MiningConfig {
        specialization_ratio: 0.25,
        seed: 8,
        ..Default::default()
    };
    let out = run_multi(&mut dag, &mut oracle, &agg, &cfg);
    let d = digest_multi(&out, &b, dom.ontology.vocab());
    println!("multi_synthetic digest = 0x{d:016x}");
    assert_eq!(d, GOLDEN_MULTI_SYNTHETIC);
}

/// The crowd-rules miner (the only engine path previously without a
/// golden guard): a planted-habit synthetic crowd, a fixed question
/// budget, and a digest over the final candidate/estimate state.
#[test]
fn golden_crowdrules_miner() {
    use crowdrules::{
        AssociationRule, CrowdMiner, ItemId, Itemset, MinerConfig, SimConfig, SimulatedRuleCrowd,
    };
    let iset = |items: &[u32]| Itemset::new(items.iter().map(|&i| ItemId(i)));
    let sim = SimConfig {
        members: 120,
        habits: vec![
            (iset(&[1, 2]), 0.7),
            (iset(&[3, 4]), 0.55),
            (iset(&[5, 6]), 0.05),
        ],
        answer_noise: 0.02,
        seed: 11,
        ..Default::default()
    };
    let mut crowd = SimulatedRuleCrowd::generate(&sim);
    let mut miner = CrowdMiner::new(
        MinerConfig {
            theta_support: 0.35,
            theta_confidence: 0.6,
            seed: 11,
            ..Default::default()
        },
        vec![AssociationRule::new(iset(&[1]), iset(&[2])).unwrap()],
    );
    miner.run(&mut crowd, 500);

    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv_usize(&mut h, miner.questions());
    fnv_usize(&mut h, crowd.questions_asked());
    fnv_usize(&mut h, miner.candidates());
    let mut significant: Vec<String> = miner
        .significant_rules()
        .iter()
        .map(ToString::to_string)
        .collect();
    significant.sort();
    for r in &significant {
        fnv(&mut h, r.as_bytes());
    }
    let mut open: Vec<String> = miner
        .open_candidates()
        .iter()
        .map(ToString::to_string)
        .collect();
    open.sort();
    for r in &open {
        fnv(&mut h, r.as_bytes());
    }
    println!("crowdrules_miner digest = 0x{h:016x}");
    assert_eq!(h, GOLDEN_CROWDRULES_MINER);
}

// Captured from the pre-index witness-scan engine; see module docs.
const GOLDEN_VERTICAL_FIGURE1: u64 = 0x43da68006cc27301;
const GOLDEN_VERTICAL_SYNTHETIC: u64 = 0xdeab91c0df65d2d8;
const GOLDEN_MULTI_FIGURE1: u64 = 0x91d1bfe9c869b6ad;
const GOLDEN_MULTI_SYNTHETIC: u64 = 0x4b3695f5ead79508;
// Captured when the crowd-rules miner gained its golden guard.
const GOLDEN_CROWDRULES_MINER: u64 = 0xa5dbb6fba9ce7cd6;
