//! Failure injection across the stack: flaky members, spam, undecidable
//! aggregation, question budgets, and recovery via cached answers.

use oassis::crowd::population::{generate, PopulationConfig};
use oassis::ontology::domains::figure1;
use oassis::prelude::*;

mod common;
use common::figure1_profiles as profiles;

#[test]
fn everyone_leaving_immediately_yields_empty_but_sane_output() {
    let ont = figure1::ontology();
    let members = generate(
        &profiles(&ont),
        &PopulationConfig {
            members: 10,
            behavior: MemberBehavior {
                session_limit: Some(0),
                ..Default::default()
            },
            seed: 1,
            ..Default::default()
        },
    );
    let engine = Oassis::new(&ont);
    let ans = engine
        .run(
            &QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(MiningConfig {
                threshold: Some(0.2),
                ..Default::default()
            }),
            CrowdBinding::single(&mut SimulatedCrowd::new(ont.vocab(), members)),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert_eq!(ans.outcome.mining.questions, 0);
    assert!(ans.answers.is_empty());
    assert!(!ans.outcome.mining.complete);
}

#[test]
fn quorum_larger_than_crowd_never_decides() {
    let ont = figure1::ontology();
    let members = generate(
        &profiles(&ont),
        &PopulationConfig {
            members: 3,
            seed: 2,
            ..Default::default()
        },
    );
    let engine = Oassis::new(&ont);
    let ans = engine
        .run(
            &QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(MiningConfig {
                threshold: Some(0.2),
                ..Default::default()
            }),
            CrowdBinding::single(&mut SimulatedCrowd::new(ont.vocab(), members)),
            &FixedSampleAggregator { sample_size: 10 }, // unreachable quorum
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(!ans.outcome.mining.complete);
    assert!(ans.answers.is_empty());
    assert!(ans.outcome.mining.msps.is_empty());
    assert!(ans.outcome.undecided > 0);
    // members still explore their personally-significant regions (rule 4),
    // but never re-answer a node, so the run terminates within
    // members × materialized nodes
    assert!(ans.outcome.mining.questions <= 3 * ans.outcome.mining.nodes_materialized);
}

#[test]
fn all_spammers_produce_noise_but_never_panic() {
    let ont = figure1::ontology();
    let mut members = generate(
        &profiles(&ont),
        &PopulationConfig {
            members: 20,
            seed: 3,
            ..Default::default()
        },
    );
    for m in &mut members {
        m.behavior.spammer = true;
    }
    let engine = Oassis::new(&ont);
    let ans = engine
        .run(
            &QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(MiningConfig {
                threshold: Some(0.2),
                specialization_ratio: 0.3,
                ..Default::default()
            }),
            CrowdBinding::single(&mut SimulatedCrowd::new(ont.vocab(), members)),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    // spam produces *some* classification; results are garbage but valid
    assert!(ans.outcome.mining.questions > 0);
    for m in &ans.outcome.mining.msps {
        // every reported MSP is a well-formed assignment
        assert!(m.num_slots() == 2);
    }
}

#[test]
fn tiny_question_budget_is_respected_end_to_end() {
    let ont = figure1::ontology();
    let members = generate(
        &profiles(&ont),
        &PopulationConfig {
            members: 10,
            seed: 4,
            ..Default::default()
        },
    );
    let engine = Oassis::new(&ont);
    for budget in [0usize, 1, 3, 7] {
        let result = engine.run(
            &QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(MiningConfig {
                threshold: Some(0.2),
                max_questions: Some(budget),
                ..Default::default()
            }),
            CrowdBinding::single(&mut SimulatedCrowd::new(
                ont.vocab(),
                generate(
                    &profiles(&ont),
                    &PopulationConfig {
                        members: 10,
                        seed: 4,
                        ..Default::default()
                    },
                ),
            )),
            &FixedSampleAggregator { sample_size: 5 },
        );
        if budget == 0 {
            // a zero budget is rejected up front by run's validation
            assert!(result.is_err(), "budget 0 must be rejected");
            continue;
        }
        let ans = result.unwrap().into_patterns().unwrap();
        assert!(ans.outcome.mining.questions <= budget, "budget {budget}");
    }
    let _ = members;
}

#[test]
fn semantic_match_mode_mines_end_to_end() {
    // nearBy ≤R inside widens the valid set under Semantic matching;
    // mining still converges and finds the planted habits.
    let ont = figure1::ontology();
    let members = generate(
        &profiles(&ont),
        &PopulationConfig {
            members: 10,
            seed: 5,
            answer_model: AnswerModel::Exact,
            ..Default::default()
        },
    );
    let engine = Oassis::new(&ont).with_match_mode(MatchMode::Semantic);
    let ans = engine
        .run(
            &QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(MiningConfig {
                threshold: Some(0.2),
                ..Default::default()
            }),
            CrowdBinding::single(&mut SimulatedCrowd::new(ont.vocab(), members)),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    assert!(ans.outcome.mining.complete);
    assert!(
        ans.answers
            .iter()
            .any(|a| a.contains("Biking doAt Central Park")),
        "{:?}",
        ans.answers
    );
}

#[test]
fn early_decision_aggregator_agrees_with_fixed_sample() {
    let ont = figure1::ontology();
    let mk_members = || {
        generate(
            &profiles(&ont),
            &PopulationConfig {
                members: 12,
                seed: 6,
                answer_model: AnswerModel::Exact,
                ..Default::default()
            },
        )
    };
    let engine = Oassis::new(&ont);
    let cfg = MiningConfig {
        threshold: Some(0.2),
        ..Default::default()
    };
    let request = QueryRequest::new(figure1::SIMPLE_QUERY).with_mining(cfg.clone());
    let fixed = engine
        .run(
            &request,
            CrowdBinding::single(&mut SimulatedCrowd::new(ont.vocab(), mk_members())),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    let early = engine
        .run(
            &request,
            CrowdBinding::single(&mut SimulatedCrowd::new(ont.vocab(), mk_members())),
            &EarlyDecisionAggregator { sample_size: 5 },
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    // early decision may classify from fewer answers, never more
    assert!(early.outcome.mining.questions <= fixed.outcome.mining.questions);
    // both find the dominant habit
    for ans in [&fixed, &early] {
        assert!(
            ans.answers.iter().any(|a| a.contains("doAt Central Park")),
            "{:?}",
            ans.answers
        );
    }
}
