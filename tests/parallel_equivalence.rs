//! Determinism guarantee of the parallel mining engine: at **every** pool
//! width, mining outcomes are bit-identical to the sequential engine.
//!
//! Every parallel phase is shard-and-merge over pure reads (WHERE fork
//! solving, pruning-cone sweeps, witness verification, frozen final
//! classification sweeps), merged in input order — so the thread count
//! must never leak into what the miner asks or concludes. These tests
//! drive a domain workload and a Figure-5-style synthetic workload across
//! pool widths {1, 2, 4, 8} and several seeds, comparing full outcome
//! digests (questions, MSP sets, event streams, per-member counts)
//! against the sequential run.

use bench::{bind_domain, digest_domain_run, run_domain_at_pool};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{
    run_multi, CrowdBinding, Dag, FixedSampleAggregator, MiningConfig, MultiOutcome, Oassis,
    QueryRequest, SharedCrowdCache,
};
use oassis_ql::{bind, evaluate_where, parse, BoundQuery, MatchMode};
use ontology::domains::{travel, DomainScale};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fnv_usize(h: &mut u64, v: usize) {
    fnv(h, &(v as u64).to_le_bytes());
}

/// Full multi-user outcome digest (mirrors `tests/golden_outcomes.rs`).
fn digest_multi(out: &MultiOutcome, b: &BoundQuery, vocab: &ontology::Vocabulary) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv_usize(&mut h, out.mining.questions);
    fnv_usize(&mut h, out.mining.msps.len());
    fnv_usize(&mut h, out.mining.valid_msps.len());
    fnv_usize(&mut h, out.mining.significant_valid.len());
    fnv_usize(&mut h, out.mining.total_valid);
    fnv_usize(&mut h, out.mining.valid_mult_nodes);
    fnv_usize(&mut h, out.mining.nodes_materialized);
    fnv_usize(&mut h, usize::from(out.mining.complete));
    for m in &out.mining.msps {
        fnv(&mut h, m.apply(b).to_display(vocab).as_bytes());
    }
    for e in &out.mining.events {
        fnv_usize(&mut h, e.question);
        fnv(&mut h, format!("{:?}", e.kind).as_bytes());
    }
    fnv_usize(&mut h, out.undecided);
    fnv_usize(&mut h, out.question_stats.concrete);
    fnv_usize(&mut h, out.question_stats.specialization);
    fnv_usize(&mut h, out.question_stats.none_of_these);
    fnv_usize(&mut h, out.question_stats.pruning);
    for &n in &out.answers_per_member {
        fnv_usize(&mut h, n);
    }
    h
}

#[test]
fn domain_workload_digests_match_at_every_pool_width() {
    // The travel-domain multi-user workload (bucketed answers, pruning
    // clicks, specialization questions, answer caching) with a smaller
    // crowd than the paper's 248 to keep 12 runs test-sized.
    let domain = travel(DomainScale::paper());
    let bound = bind_domain(&domain);
    for seed in [7u64, 8, 9] {
        let reference = {
            let mut cache = oassis_core::CrowdCache::new();
            let run = run_domain_at_pool(
                &domain,
                &bound,
                &domain.ontology,
                &mut cache,
                0.2,
                60,
                8,
                seed,
                minipool::Pool::sequential(),
            );
            digest_domain_run(&run)
        };
        for width in WIDTHS {
            let mut cache = oassis_core::CrowdCache::new();
            let run = run_domain_at_pool(
                &domain,
                &bound,
                &domain.ontology,
                &mut cache,
                0.2,
                60,
                8,
                seed,
                minipool::Pool::new(width),
            );
            assert_eq!(
                digest_domain_run(&run),
                reference,
                "seed {seed}: pool width {width} changed the domain outcome"
            );
        }
    }
}

#[test]
fn fig5_synthetic_digests_match_at_every_pool_width() {
    // Figure-5-style synthetic workload: planted MSPs, a 6-member oracle
    // crowd with pruning clicks, a 3-answer quorum and specialization
    // questions — the multi-user engine's full surface.
    let dom = synthetic_domain(120, 5, 1);
    let q = parse(&dom.query).unwrap();
    let b = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(&mut full, 6, true, MspDistribution::Uniform, 31);
    let patterns: Vec<_> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();

    let run_at = |width: Option<usize>, seed: u64| -> u64 {
        let mut dag = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(dom.ontology.vocab(), patterns.clone(), 6, seed + 9);
        oracle.pruning_prob = 0.3;
        let agg = FixedSampleAggregator { sample_size: 3 };
        let cfg = MiningConfig {
            specialization_ratio: 0.25,
            seed,
            pool: width.map_or(minipool::Pool::sequential(), minipool::Pool::new),
            ..Default::default()
        };
        let out = run_multi(&mut dag, &mut oracle, &agg, &cfg);
        digest_multi(&out, &b, dom.ontology.vocab())
    };

    for seed in [8u64, 9, 10] {
        let reference = run_at(None, seed);
        for width in WIDTHS {
            assert_eq!(
                run_at(Some(width), seed),
                reference,
                "seed {seed}: pool width {width} changed the synthetic outcome"
            );
        }
    }
}

#[test]
fn concurrent_queries_match_sequential_execution_at_every_pool_width() {
    // N queries (same domain query at N thresholds) over one shared
    // ontology and shared answer cache, run by execute_concurrent at pool
    // widths 1/2/4: answers and outcome digests must not depend on the
    // width, because the crowd members are pure (rng-free answers) and
    // every query owns its own DAG and classifier.
    let domain = travel(DomainScale::paper());
    let ont = &domain.ontology;
    let thresholds = [0.18f64, 0.22, 0.26, 0.3];
    let queries: Vec<String> = thresholds
        .iter()
        .map(|t| {
            domain
                .query
                .replace("WITH SUPPORT = 0.2", &format!("WITH SUPPORT = {t}"))
        })
        .collect();
    let query_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let agg = FixedSampleAggregator { sample_size: 5 };
    let cfg = MiningConfig {
        specialization_ratio: 0.12,
        seed: 7,
        ..Default::default()
    };

    let run_at = |width: usize| -> Vec<(Vec<String>, u64)> {
        let engine = Oassis::new(ont).with_pool(minipool::Pool::new(width));
        let cache = SharedCrowdCache::default();
        let request = QueryRequest::batch(&query_refs).with_mining(cfg.clone());
        let make = |_| bench::pure_domain_crowd(&domain, ont.vocab(), 40, 8, 7);
        let answers = engine
            .run(&request, CrowdBinding::per_query(make, &cache), &agg)
            .unwrap()
            .into_batch()
            .unwrap();
        answers
            .into_iter()
            .map(|a| {
                let a = a.expect("query failed");
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                fnv_usize(&mut h, a.outcome.mining.questions);
                fnv_usize(&mut h, a.outcome.mining.msps.len());
                fnv_usize(&mut h, a.outcome.undecided);
                fnv_usize(&mut h, usize::from(a.outcome.mining.complete));
                for e in &a.outcome.mining.events {
                    fnv_usize(&mut h, e.question);
                    fnv(&mut h, format!("{:?}", e.kind).as_bytes());
                }
                (a.answers, h)
            })
            .collect()
    };

    let reference = run_at(1);
    for width in [2usize, 4] {
        assert_eq!(
            run_at(width),
            reference,
            "pool width {width} changed a concurrent query's outcome"
        );
    }
}
