//! Culinary preferences: class-level mining with multiplicities
//! (Section 6.3's second domain).
//!
//! "In one of the culinary queries we found, among others, that crowd
//! members often have a steak with fries and a coke" — a multiplicity-2
//! MSP: two dishes assigned to `$x+` served with the same drink. This
//! example plants exactly that shape and shows the lazy combination
//! machinery (Section 5) discovering it.
//!
//! ```sh
//! cargo run --release --example culinary_menus
//! ```

use oassis::crowd::population::{generate, HabitProfile, PopulationConfig};
use oassis::ontology::domains::{culinary, DomainScale};
use oassis::prelude::*;

fn main() {
    let domain = culinary(DomainScale::small());
    let ont = &domain.ontology;
    let v = ont.vocab();
    println!("domain: {} — {} elements\n", domain.name, v.num_elems());

    // Plant: "steak with fries and a coke" — DishKind4 ≈ steak,
    // DishKind9 ≈ fries, DrinkKind3 ≈ coke; plus a muesli-with-yogurt
    // breakfast habit with apple juice (the paper's surprising find).
    let fact = |s: &str, r: &str, o: &str| v.fact(s, r, o).expect("domain term");
    let profiles = vec![
        HabitProfile {
            facts: vec![
                fact("DishKind4", "servedWith", "DrinkKind3"),
                fact("DishKind9", "servedWith", "DrinkKind3"),
            ],
            adoption: 0.9,
            frequency: 0.6,
        },
        HabitProfile {
            facts: vec![
                fact("DishKind11", "servedWith", "DrinkKind7"),
                fact("DishKind12", "servedWith", "DrinkKind7"),
            ],
            adoption: 0.75,
            frequency: 0.5,
        },
        HabitProfile {
            facts: vec![fact("DishKind2", "servedWith", "DrinkKind5")],
            adoption: 0.5,
            frequency: 0.4,
        },
    ];
    let cfg = PopulationConfig {
        members: 100,
        behavior: MemberBehavior {
            session_limit: Some(60),
            ..Default::default()
        },
        answer_model: AnswerModel::Bucketed5,
        seed: 9,
        ..Default::default()
    };
    let members = generate(&profiles, &cfg);

    let engine = Oassis::new(ont);
    println!("query:\n{}\n", domain.query);
    let request = QueryRequest::pattern(&domain.query).threshold(0.25).seed(3);
    let answer = engine
        .run(
            &request,
            CrowdBinding::single(&mut SimulatedCrowd::new(v, members)),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .expect("query runs")
        .into_patterns()
        .expect("pattern query");

    println!(
        "{} answers used; mined menus (valid MSPs):",
        answer.outcome.mining.questions
    );
    for a in &answer.answers {
        println!("  • {a}");
    }

    // Class-level query: every MSP is valid (footnote 7 of the paper).
    assert_eq!(
        answer.outcome.mining.msps.len(),
        answer.outcome.mining.valid_msps.len()
    );
    let multi = answer
        .outcome
        .mining
        .msps
        .iter()
        .filter(|m| m.total_values() > 2)
        .count();
    println!(
        "\nall {} MSPs are valid (class-level query); {} involve multiplicities",
        answer.outcome.mining.msps.len(),
        multi
    );
    println!(
        "lazy generation: {} nodes materialized of a {}-node (paper-scale: {}) DAG",
        answer.outcome.mining.nodes_materialized,
        domain.expected_dag_nodes,
        culinary(DomainScale::paper()).expected_dag_nodes
    );
}
