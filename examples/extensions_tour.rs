//! A tour of the Section-8 language extensions implemented in this
//! reproduction: `TOP k`, `TOP k DIVERSE`, `IMPLYING … AND CONFIDENCE`
//! (association rules), `ASKING "label"` (crowd selection), and ontology
//! snapshots.
//!
//! ```sh
//! cargo run --example extensions_tour
//! ```

use oassis::core::RuleMiningConfig;
use oassis::ontology::domains::figure1;
use oassis::prelude::*;

fn u_avg(ont: &Ontology, seed: u64) -> SimulatedMember {
    let [d1, d2] = figure1::personal_dbs(ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    SimulatedMember::new(
        PersonalDb::from_transactions(tx),
        MemberBehavior::default(),
        AnswerModel::Exact,
        seed,
    )
}

fn main() {
    let ont = figure1::ontology();
    let engine = Oassis::new(&ont);
    let agg = FixedSampleAggregator { sample_size: 1 };

    // ---- TOP k: early termination ----------------------------------
    let top_query = figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT FACT-SETS TOP 1");
    let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
    let top = engine
        .run(
            &QueryRequest::pattern(&top_query),
            CrowdBinding::single(&mut crowd),
            &agg,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    let mut crowd_full = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
    let full = engine
        .run(
            &QueryRequest::pattern(figure1::SIMPLE_QUERY),
            CrowdBinding::single(&mut crowd_full),
            &agg,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    println!(
        "TOP 1 stopped after {} questions (full run: {}):",
        top.outcome.mining.questions, full.outcome.mining.questions
    );
    for a in &top.answers {
        println!("  • {a}");
    }

    // ---- TOP k DIVERSE: spread answers ------------------------------
    let div_query =
        figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT FACT-SETS TOP 2 DIVERSE");
    let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
    let div = engine
        .run(
            &QueryRequest::pattern(&div_query),
            CrowdBinding::single(&mut crowd),
            &agg,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    println!("\nTOP 2 DIVERSE picks answers spanning both attractions:");
    for a in &div.answers {
        println!("  • {a}");
    }

    // ---- IMPLYING … AND CONFIDENCE: association rules ---------------
    let rule_src = r#"
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity.
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y doAt $x
IMPLYING
  [] eatAt $z
WITH SUPPORT = 0.3 AND CONFIDENCE = 0.75
"#;
    let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
    // `run` dispatches on the IMPLYING clause — no separate entry point
    let rules = engine
        .run(
            &QueryRequest::new(rule_src).with_rules(RuleMiningConfig {
                panel_size: 1,
                ..Default::default()
            }),
            CrowdBinding::single(&mut crowd),
            &agg,
        )
        .unwrap()
        .into_rules()
        .unwrap();
    println!(
        "\nassociation rules (activity ⇒ nearby meal), {} questions:",
        rules.outcome.questions
    );
    for a in &rules.answers {
        println!("  • {a}");
    }

    // ---- ASKING: crowd selection ------------------------------------
    let asking_query = figure1::SIMPLE_QUERY.replace("WHERE", "ASKING \"local\"\nWHERE");
    let members = vec![
        u_avg(&ont, 1).with_profile(&["local"]),
        SimulatedMember::new(
            PersonalDb::new(),
            MemberBehavior::default(),
            AnswerModel::Exact,
            2,
        )
        .with_profile(&["tourist"]),
        u_avg(&ont, 3).with_profile(&["local"]),
    ];
    let mut crowd = SimulatedCrowd::new(ont.vocab(), members);
    let agg2 = FixedSampleAggregator { sample_size: 2 };
    let asked = engine
        .run(
            &QueryRequest::pattern(&asking_query),
            CrowdBinding::single(&mut crowd),
            &agg2,
        )
        .unwrap()
        .into_patterns()
        .unwrap();
    println!(
        "\nASKING \"local\" recruited {} of 3 members; answers:",
        asked.outcome.answers_per_member.len()
    );
    for a in &asked.answers {
        println!("  • {a}");
    }

    // ---- ontology snapshots ------------------------------------------
    let json = ont.to_json();
    let restored = Ontology::from_json(&json).unwrap();
    println!(
        "\nontology snapshot: {} bytes of JSON, semantically equal: {}",
        json.len(),
        oassis::ontology::semantically_equal(&ont, &restored)
    );
}
