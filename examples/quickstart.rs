//! Quickstart: run the paper's running example end to end.
//!
//! Builds the Figure-1 NYC ontology, a two-member crowd backed by the
//! Table-3 personal databases, and evaluates the (simplified) Figure-2
//! query — then prints the questions a member would see and the mined
//! MSPs.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use oassis::ontology::domains::figure1;
use oassis::prelude::*;

fn main() {
    // 1. General knowledge: the sample ontology of Figure 1.
    let ont = figure1::ontology();
    println!(
        "ontology: {} elements, {} relations, {} universal facts\n",
        ont.vocab().num_elems(),
        ont.vocab().num_rels(),
        ont.num_facts()
    );

    // 2. Individual knowledge: the personal histories of Table 3 (virtual
    //    in the paper, simulation ground truth here). We use two copies of
    //    the `u_avg` member of Example 4.6 — concatenating D_u1 with three
    //    copies of D_u2 makes every answer the exact average of u1 and u2,
    //    so a 2-answer quorum converges to the paper's worked results.
    let [d1, d2] = figure1::personal_dbs(&ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    let members = vec![
        SimulatedMember::new(
            PersonalDb::from_transactions(tx.clone()),
            MemberBehavior::default(),
            AnswerModel::Exact,
            1,
        ),
        SimulatedMember::new(
            PersonalDb::from_transactions(tx),
            MemberBehavior::default(),
            AnswerModel::Exact,
            2,
        ),
    ];
    let mut crowd = SimulatedCrowd::new(ont.vocab(), members);

    // 3. The user's question, in OASSIS-QL.
    println!("query:\n{}\n", figure1::SIMPLE_QUERY.trim());

    // A taste of what the crowd sees (Section 6.2's templates):
    let engine = Oassis::new(&ont).with_templates(QuestionTemplates::travel_defaults(ont.vocab()));
    let v = ont.vocab();
    let sample_q = crowd::Question::Concrete {
        pattern: PatternSet::from_facts([v.fact("Ball Game", "doAt", "Central Park").unwrap()]),
    };
    println!(
        "a crowd member would be asked e.g.:\n  “{}”\n",
        engine.render_question(&sample_q)
    );

    // 4. Mine the crowd.
    let request = QueryRequest::pattern(figure1::SIMPLE_QUERY);
    let answer = engine
        .run(
            &request,
            CrowdBinding::single(&mut crowd),
            &FixedSampleAggregator { sample_size: 2 },
        )
        .expect("query parses and binds")
        .into_patterns()
        .expect("pattern query yields a pattern answer");

    println!(
        "mined {} question(s); MSPs:",
        answer.outcome.mining.questions
    );
    for a in &answer.answers {
        println!("  • {a}");
    }
    println!(
        "\n({} total MSPs, {} valid, complete: {})",
        answer.outcome.mining.msps.len(),
        answer.outcome.mining.valid_msps.len(),
        answer.outcome.mining.complete
    );
}
