//! OASSIS-QL captures classic frequent itemset mining (Section 4.1), and
//! the SIGMOD'13 association-rule companion.
//!
//! Part 1 — "to capture mining for frequent itemsets, use an empty WHERE
//! clause and `$x+ [] []` as the SATISFYING clause": we mine frequent
//! *fact-sets* over a flat vocabulary with the vertical algorithm and
//! check the result against a direct Apriori run on the same
//! transactions.
//!
//! Part 2 — the `crowdrules` crate mines association rules from a
//! simulated crowd with open/closed questions and CI-based estimates.
//!
//! ```sh
//! cargo run --release --example itemset_mining
//! ```

use oassis::prelude::*;
use oassis::rules::{
    AssociationRule, CrowdMiner, ItemId, Itemset, MinerConfig, QuestionStrategy, SimConfig,
    SimulatedRuleCrowd,
};
use std::collections::BTreeSet;

/// A direct, textbook Apriori over itemsets (sets of ElemIds), returning
/// the *maximal* frequent itemsets for comparison with the MSP output.
fn apriori_maximal(
    transactions: &[BTreeSet<u32>],
    universe: &[u32],
    theta: f64,
) -> Vec<BTreeSet<u32>> {
    let n = transactions.len() as f64;
    let frequent = |s: &BTreeSet<u32>| {
        transactions.iter().filter(|t| s.is_subset(t)).count() as f64 / n >= theta
    };
    let mut level: Vec<BTreeSet<u32>> = universe
        .iter()
        .map(|&i| BTreeSet::from([i]))
        .filter(|s| frequent(s))
        .collect();
    let mut all_frequent: Vec<BTreeSet<u32>> = level.clone();
    while !level.is_empty() {
        let mut next: Vec<BTreeSet<u32>> = Vec::new();
        for s in &level {
            for &i in universe {
                if !s.contains(&i) && i > *s.iter().next_back().unwrap() {
                    let mut c = s.clone();
                    c.insert(i);
                    if frequent(&c) && !next.contains(&c) {
                        next.push(c);
                    }
                }
            }
        }
        all_frequent.extend(next.iter().cloned());
        level = next;
    }
    all_frequent
        .iter()
        .filter(|s| !all_frequent.iter().any(|t| *s != t && s.is_subset(t)))
        .cloned()
        .collect()
}

fn main() {
    // ---------------- Part 1: FIM via OASSIS-QL ----------------
    // Flat vocabulary: items are elements; a single relation `did` links
    // each item to the occasion marker.
    let mut b = OntologyBuilder::new();
    let items = ["coffee", "croissant", "newspaper", "juice", "eggs"];
    for it in items {
        b.element(it);
    }
    b.element("it");
    b.relation("did");
    let ont = b.build().unwrap();
    let v = ont.vocab();

    // transactions: breakfast diaries
    let raw: [&[&str]; 8] = [
        &["coffee", "croissant"],
        &["coffee", "croissant", "newspaper"],
        &["coffee", "newspaper"],
        &["juice", "eggs"],
        &["coffee", "croissant"],
        &["coffee", "eggs"],
        &["coffee", "croissant", "newspaper"],
        &["juice"],
    ];
    let tx: Vec<FactSet> = raw
        .iter()
        .map(|items| FactSet::from_iter(items.iter().map(|i| v.fact(i, "did", "it").unwrap())))
        .collect();
    let member = SimulatedMember::new(
        PersonalDb::from_transactions(tx.clone()),
        MemberBehavior::default(),
        AnswerModel::Exact,
        0,
    );

    // The FIM query of Section 4.1. (`$x+ [] []` in the paper's sketch;
    // with a single relation the equivalent is `$x+ did it`.)
    let query = "SELECT FACT-SETS\nWHERE\nSATISFYING\n  $x+ did it\nWITH SUPPORT = 0.375\n";
    println!("FIM query:\n{query}");
    let engine = Oassis::new(&ont);
    let request = QueryRequest::pattern(query);
    let answer = engine
        .run(
            &request,
            CrowdBinding::single(&mut SimulatedCrowd::new(v, vec![member])),
            &FixedSampleAggregator { sample_size: 1 },
        )
        .expect("query runs")
        .into_patterns()
        .expect("pattern query");
    println!(
        "maximal frequent fact-sets (θ = 3/8), {} questions:",
        answer.outcome.mining.questions
    );
    let mut mined: Vec<String> = answer.answers.clone();
    mined.sort();
    for a in &mined {
        println!("  • {a}");
    }

    // Reference: direct Apriori on the same transactions.
    let ids: Vec<u32> = items.iter().map(|i| v.elem_id(i).unwrap().0).collect();
    let tsets: Vec<BTreeSet<u32>> = raw
        .iter()
        .map(|t| t.iter().map(|i| v.elem_id(i).unwrap().0).collect())
        .collect();
    let maximal = apriori_maximal(&tsets, &ids, 0.375);
    let mut reference: Vec<String> = maximal
        .iter()
        .map(|s| {
            let mut names: Vec<&str> = s
                .iter()
                .map(|&i| v.elem_name(ontology::ElemId(i)))
                .collect();
            names.sort_unstable();
            names
                .iter()
                .map(|n| format!("{n} did it"))
                .collect::<Vec<_>>()
                .join(". ")
        })
        .collect();
    reference.sort();
    println!("Apriori maximal frequent itemsets (same θ):");
    for r in &reference {
        println!("  • {r}");
    }
    assert_eq!(mined, reference, "OASSIS-QL FIM must agree with Apriori");
    println!("  ✓ identical\n");

    // ---------------- Part 2: SIGMOD'13 association rules ----------------
    let iset = |xs: &[u32]| Itemset::new(xs.iter().map(|&i| ItemId(i)));
    let sim = SimConfig {
        members: 120,
        habits: vec![(iset(&[0, 1]), 0.65), (iset(&[2, 3]), 0.5)],
        seed: 17,
        ..Default::default()
    };
    let mut crowd = SimulatedRuleCrowd::generate(&sim);
    let mut miner = CrowdMiner::new(
        MinerConfig {
            theta_support: 0.35,
            theta_confidence: 0.6,
            strategy: QuestionStrategy::Greedy,
            ..Default::default()
        },
        vec![],
    );
    miner.run(&mut crowd, 500);
    println!(
        "crowdrules: after {} questions, significant association rules:",
        miner.questions()
    );
    for r in miner.significant_rules() {
        println!(
            "  • {r}   (true supp {:.2}, conf {:.2})",
            crowd.true_support(&r),
            crowd.true_confidence(&r)
        );
    }
    let truth = vec![
        AssociationRule::new(iset(&[0]), iset(&[1])).unwrap(),
        AssociationRule::new(iset(&[1]), iset(&[0])).unwrap(),
        AssociationRule::new(iset(&[2]), iset(&[3])).unwrap(),
        AssociationRule::new(iset(&[3]), iset(&[2])).unwrap(),
    ];
    let (p, r) = miner.precision_recall(&truth);
    println!("precision {p:.2}, recall {r:.2} against the planted rules");
}
