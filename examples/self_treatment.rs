//! Self-treatment: mining folk remedies, with spammers in the crowd
//! (Section 6.3's third domain + the quality filter of Section 4.2).
//!
//! A fraction of the crowd answers at random. The consistency check —
//! "the support for more specific assignments cannot be larger" — flags
//! them, and a trust-weighted aggregator discounts their answers.
//!
//! ```sh
//! cargo run --release --example self_treatment
//! ```

use oassis::crowd::population::{generate, HabitProfile, PopulationConfig};
use oassis::crowd::quality::{check_consistency, Observation};
use oassis::ontology::domains::{self_treatment, DomainScale};
use oassis::prelude::*;

fn main() {
    let domain = self_treatment(DomainScale::small());
    let ont = &domain.ontology;
    let v = ont.vocab();
    println!("domain: {} — {} elements\n", domain.name, v.num_elems());

    let fact = |s: &str, r: &str, o: &str| v.fact(s, r, o).expect("domain term");
    let profiles = vec![
        HabitProfile {
            facts: vec![fact("RemedyKind3", "takenFor", "SymptomKind2")],
            adoption: 0.85,
            frequency: 0.55,
        },
        HabitProfile {
            facts: vec![fact("RemedyKind7", "takenFor", "SymptomKind5")],
            adoption: 0.6,
            frequency: 0.45,
        },
    ];
    let cfg = PopulationConfig {
        members: 60,
        answer_model: AnswerModel::Bucketed5,
        seed: 5,
        ..Default::default()
    };
    let mut members = generate(&profiles, &cfg);
    // a third of the crowd are spammers
    let spammers = members.len() / 3;
    for m in members.iter_mut().take(spammers) {
        m.behavior.spammer = true;
    }
    println!(
        "crowd: {} members, {} of them spammers\n",
        members.len(),
        spammers
    );

    // --- Step 1: screen members with the consistency check -------------
    // Ask each member a generalization chain; spammers violate
    // monotonicity (support of a specialization exceeding its
    // generalization) far more often.
    let chain: Vec<PatternSet> = ["Remedy", "RemedyKind1", "RemedyKind4"]
        .iter()
        .map(|r| PatternSet::from_facts([fact(r, "takenFor", "Symptom")]))
        .collect();
    let mut flagged = 0usize;
    let mut flags: Vec<bool> = Vec::with_capacity(members.len());
    for m in members.iter_mut() {
        let mut obs = Vec::new();
        for p in &chain {
            if let Answer::Support { support, .. } =
                m.answer(v, &Question::Concrete { pattern: p.clone() })
            {
                obs.push(Observation {
                    pattern: p.clone(),
                    support,
                });
            }
        }
        let report = check_consistency(v, &obs, 0.01);
        let spam = report.is_spammer(0.0);
        flags.push(spam);
        if spam {
            flagged += 1;
        }
        m.reset_session();
    }
    let caught = flags.iter().take(spammers).filter(|&&f| f).count();
    let false_pos = flags.iter().skip(spammers).filter(|&&f| f).count();
    println!(
        "consistency screen: flagged {flagged} members ({caught}/{spammers} true spammers, {false_pos} honest members misflagged)\n"
    );

    // --- Step 2: mine with a trust-weighted aggregator ------------------
    let mut trust = std::collections::HashMap::new();
    for (i, &f) in flags.iter().enumerate() {
        if f {
            trust.insert(MemberId(i as u32), 0.0);
        }
    }
    let aggregator = oassis::core::TrustWeightedAggregator {
        sample_size: 5,
        trust,
    };
    let engine = Oassis::new(ont);
    let request = QueryRequest::pattern(&domain.query).threshold(0.25).seed(1);
    let answer = engine
        .run(
            &request,
            CrowdBinding::single(&mut SimulatedCrowd::new(v, members.clone())),
            &aggregator,
        )
        .expect("query runs")
        .into_patterns()
        .expect("pattern query");
    println!(
        "with trust weighting — {} remedies mined:",
        answer.answers.len()
    );
    for a in &answer.answers {
        println!("  • {a}");
    }

    // --- Comparison: unweighted aggregation over the same crowd ---------
    for m in members.iter_mut() {
        m.reset_session();
    }
    let naive_answer = engine
        .run(
            &request,
            CrowdBinding::single(&mut SimulatedCrowd::new(v, members)),
            &FixedSampleAggregator { sample_size: 5 },
        )
        .expect("query runs")
        .into_patterns()
        .expect("pattern query");
    println!(
        "\nwithout the filter the spam inflates the answer set: {} vs {} MSPs",
        naive_answer.answers.len(),
        answer.answers.len()
    );
}
