//! Travel planner: the paper's motivating scenario on the generated
//! travel domain (Section 6.3), with a realistic simulated crowd.
//!
//! The query asks for popular combinations of an activity at a
//! child-friendly attraction and a nearby restaurant — plus MORE tips.
//! The crowd is a generated population whose members share planted habits
//! with noise, answer on the 5-point never…very-often scale, sometimes
//! volunteer tips, prune irrelevant values, and leave after a bounded
//! number of questions. The same query is then re-evaluated at a higher
//! threshold from the CrowdCache without new crowd work.
//!
//! ```sh
//! cargo run --release --example travel_planner
//! ```

use oassis::crowd::population::{generate, HabitProfile, PopulationConfig};
use oassis::ontology::domains::{travel, DomainScale};
use oassis::prelude::*;

fn main() {
    let domain = travel(DomainScale::small());
    let ont = &domain.ontology;
    let v = ont.vocab();
    println!(
        "domain: {} — {} elements, {} facts",
        domain.name,
        v.num_elems(),
        ont.num_facts()
    );

    // Ground truth: a handful of habits the population shares.
    let fact = |s: &str, r: &str, o: &str| v.fact(s, r, o).expect("domain term");
    let profiles = vec![
        HabitProfile {
            facts: vec![
                fact("ActivityKind5", "doAt", "Attraction1"),
                fact("Snack1", "eatAt", "Restaurant1"),
            ],
            adoption: 0.97,
            frequency: 0.7,
        },
        HabitProfile {
            facts: vec![
                fact("ActivityKind7", "doAt", "Attraction2"),
                fact("Snack2", "eatAt", "Restaurant2"),
                fact("Rent Gear", "doAt", "Attraction2"), // the MORE tip
            ],
            adoption: 0.8,
            frequency: 0.45,
        },
        HabitProfile {
            facts: vec![
                fact("ActivityKind3", "doAt", "Attraction4"),
                fact("Snack1", "eatAt", "Restaurant1"),
            ],
            adoption: 0.35,
            frequency: 0.3,
        },
    ];
    let cfg = PopulationConfig {
        members: 120,
        behavior: MemberBehavior {
            session_limit: Some(40),
            pruning_prob: 0.25,
            more_tip_prob: 0.3,
            spammer: false,
            stall_every: None,
        },
        answer_model: AnswerModel::Bucketed5,
        seed: 42,
        ..Default::default()
    };
    let members = generate(&profiles, &cfg);
    println!(
        "crowd: {} members, ~{} questions each before leaving\n",
        members.len(),
        40
    );

    let engine = Oassis::new(ont).with_templates(QuestionTemplates::travel_defaults(v));
    println!("query:\n{}\n", domain.query);

    // First evaluation at Θ = 0.2, answers flowing into the CrowdCache.
    let mut cache = CrowdCache::new();
    let mining = MiningConfig {
        threshold: Some(0.2),
        specialization_ratio: 0.1,
        seed: 7,
        ..Default::default()
    };
    let request = QueryRequest::pattern(&domain.query).with_mining(mining.clone());
    let (answers_02, used_02, fresh_02) = {
        let crowd = SimulatedCrowd::new(v, members.clone());
        let mut caching = oassis::core::CachingCrowd::new(crowd, &mut cache);
        let ans = engine
            .run(
                &request,
                CrowdBinding::single(&mut caching),
                &FixedSampleAggregator { sample_size: 5 },
            )
            .expect("query runs")
            .into_patterns()
            .expect("pattern query");
        (ans, caching.total_questions(), caching.fresh_questions())
    };
    println!(
        "Θ = 0.2: {} answers used ({} fresh), {} valid MSPs:",
        used_02,
        fresh_02,
        answers_02.answers.len()
    );
    for a in answers_02.answers.iter().take(12) {
        println!("  • {a}");
    }
    let qs = &answers_02.outcome.question_stats;
    println!(
        "answer mix: {} concrete / {} specialization / {} none-of-these / {} pruning clicks\n",
        qs.concrete, qs.specialization, qs.none_of_these, qs.pruning
    );

    // Re-evaluate at Θ = 0.4 — cached answers are reused; the builder
    // override keeps every other mining knob from the first run.
    let request_04 = QueryRequest::pattern(&domain.query)
        .with_mining(mining.clone())
        .threshold(0.4);
    let (answers_04, used_04, fresh_04) = {
        let mut fresh_members = members.clone();
        for m in &mut fresh_members {
            m.reset_session();
        }
        let crowd = SimulatedCrowd::new(v, fresh_members);
        let mut caching = oassis::core::CachingCrowd::new(crowd, &mut cache);
        let ans = engine
            .run(
                &request_04,
                CrowdBinding::single(&mut caching),
                &FixedSampleAggregator { sample_size: 5 },
            )
            .expect("query runs")
            .into_patterns()
            .expect("pattern query");
        (ans, caching.total_questions(), caching.fresh_questions())
    };
    println!(
        "Θ = 0.4 (from cache): {} answers used, only {} fresh crowd questions, {} valid MSPs:",
        used_04,
        fresh_04,
        answers_04.answers.len()
    );
    for a in answers_04.answers.iter().take(12) {
        println!("  • {a}");
    }

    // MORE tips surface as extended MSPs.
    let with_more = answers_02
        .outcome
        .mining
        .msps
        .iter()
        .filter(|m| !m.more().is_empty())
        .count();
    println!("\nMSPs carrying a volunteered MORE tip at Θ=0.2: {with_more}");
}
