//! Criterion micro-benchmarks for the performance-critical primitives:
//! order reachability, fact-set implication, WHERE evaluation, validity
//! checks, DAG child generation, and the indexed classification engine
//! (fingerprint `leq` and posting-indexed classifier lookup vs their
//! exact-scan references).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use oassis_core::synth::synthetic_domain;
use oassis_core::{Class, Classifier, Dag, NodeId};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};
use ontology::domains::{figure1, travel, DomainScale};
use ontology::PatternSet;
use std::hint::black_box;

fn bench_order(c: &mut Criterion) {
    let ont = figure1::ontology();
    let v = ont.vocab();
    let act = v.elem_id("Activity").unwrap();
    let bb = v.elem_id("Basketball").unwrap();
    c.bench_function("elem_leq", |b| {
        b.iter(|| black_box(v.elem_leq(black_box(act), black_box(bb))))
    });

    let [d1, _] = figure1::personal_dbs(&ont);
    let t4 = d1[3].clone();
    let pattern = PatternSet::from_facts([
        v.fact("Sport", "doAt", "Central Park").unwrap(),
        v.fact("Food", "eatAt", "Maoz Veg").unwrap(),
    ]);
    c.bench_function("patternset_supported_by", |b| {
        b.iter(|| black_box(pattern.supported_by(v, black_box(&t4))))
    });
}

fn bench_where_eval(c: &mut Criterion) {
    let ont = figure1::ontology();
    let q = parse(figure1::SAMPLE_QUERY).unwrap();
    let bound = bind(&q, &ont).unwrap();
    c.bench_function("where_eval_figure1", |b| {
        b.iter(|| black_box(evaluate_where(&bound, &ont, MatchMode::Exact).len()))
    });

    let dom = travel(DomainScale::paper());
    let q2 = parse(&dom.query).unwrap();
    let bound2 = bind(&q2, &dom.ontology).unwrap();
    c.bench_function("where_eval_travel_paper_scale", |b| {
        b.iter(|| black_box(evaluate_where(&bound2, &dom.ontology, MatchMode::Exact).len()))
    });
}

fn bench_dag(c: &mut Criterion) {
    let d = synthetic_domain(500, 7, 0);
    let q = parse(&d.query).unwrap();
    let bound = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&bound, &d.ontology, MatchMode::Exact);
    c.bench_function("dag_materialize_500x7", |b| {
        b.iter_batched(
            || Dag::new(&bound, d.ontology.vocab(), &base).without_multiplicities(),
            |mut dag| black_box(dag.materialize_all()),
            BatchSize::LargeInput,
        )
    });

    let dom = travel(DomainScale::paper());
    let q2 = parse(&dom.query).unwrap();
    let bound2 = bind(&q2, &dom.ontology).unwrap();
    let base2 = evaluate_where(&bound2, &dom.ontology, MatchMode::Exact);
    c.bench_function("dag_roots_and_first_level_travel", |b| {
        b.iter_batched(
            || Dag::new(&bound2, dom.ontology.vocab(), &base2),
            |mut dag| {
                let roots = dag.roots().to_vec();
                let mut n = 0;
                for r in roots {
                    n += dag.children(r).len();
                }
                black_box(n)
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_index(c: &mut Criterion) {
    let d = synthetic_domain(120, 5, 1);
    let q = parse(&d.query).unwrap();
    let bound = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&bound, &d.ontology, MatchMode::Exact);
    let vocab = d.ontology.vocab();
    let mut dag = Dag::new(&bound, vocab, &base);
    let mut cursor = 0usize;
    while cursor < dag.len() && dag.len() < 2000 {
        dag.children(NodeId(cursor as u32));
        cursor += 1;
    }
    let n = dag.len();
    let pairs: Vec<(NodeId, NodeId)> = (0..n)
        .map(|i| {
            (
                NodeId((i * 7919 % n) as u32),
                NodeId((i * 104_729 % n) as u32),
            )
        })
        .collect();

    // semantic order check: bitset subset test vs the per-value scan
    c.bench_function("leq_fingerprint_pairs", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &(x, y) in &pairs {
                hits += dag.leq(x, y) as u32;
            }
            black_box(hits)
        })
    });
    c.bench_function("leq_exact_scan_pairs", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &(x, y) in &pairs {
                hits += dag.node(x).assignment.leq(vocab, &dag.node(y).assignment) as u32;
            }
            black_box(hits)
        })
    });

    // classifier lookup on a witness load typical of a converged run:
    // posting-indexed query vs the historical linear witness scan
    let mark = |cls: &mut Classifier| {
        for i in (0..n).step_by(17) {
            cls.mark_significant(&dag, NodeId(i as u32));
        }
        for i in (0..n).skip(5).step_by(13) {
            cls.mark_insignificant(&dag, NodeId(i as u32));
        }
    };
    c.bench_function("classifier_query_indexed", |b| {
        b.iter_batched(
            || {
                let mut cls = Classifier::new();
                mark(&mut cls);
                cls
            },
            |mut cls| {
                let mut sig = 0u32;
                for id in dag.node_ids() {
                    sig += (cls.class(&dag, id) == Class::Significant) as u32;
                }
                black_box(sig)
            },
            BatchSize::LargeInput,
        )
    });
    let mut scan_cls = Classifier::new();
    mark(&mut scan_cls);
    c.bench_function("classifier_query_witness_scan", |b| {
        b.iter(|| {
            let mut sig = 0u32;
            for id in dag.node_ids() {
                sig += (scan_cls.class_by_scan(&dag, id) == Class::Significant) as u32;
            }
            black_box(sig)
        })
    });
}

/// Arena-layout ≤ on the paper-scale travel DAG — the classification hot
/// path's dominant primitive. `dag.leq` walks the contiguous closure-
/// fingerprint arena (dense u32 ids, one flat word slice per node);
/// the reference is the per-value assignment scan it replaced.
fn bench_arena_leq(c: &mut Criterion) {
    let dom = travel(DomainScale::paper());
    let q = parse(&dom.query).unwrap();
    let bound = bind(&q, &dom.ontology).unwrap();
    let base = evaluate_where(&bound, &dom.ontology, MatchMode::Exact);
    let vocab = dom.ontology.vocab();
    let mut dag = Dag::new(&bound, vocab, &base);
    let mut cursor = 0usize;
    while cursor < dag.len() && dag.len() < 6000 {
        dag.children(NodeId(cursor as u32));
        cursor += 1;
    }
    let n = dag.len();
    let pairs: Vec<(NodeId, NodeId)> = (0..4096)
        .map(|i| {
            (
                NodeId((i * 7919 % n) as u32),
                NodeId((i * 104_729 % n) as u32),
            )
        })
        .collect();
    c.bench_function("arena_leq_travel", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &(x, y) in &pairs {
                hits += dag.leq(x, y) as u32;
            }
            black_box(hits)
        })
    });
    c.bench_function("arena_leq_exact_scan_travel", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &(x, y) in &pairs {
                hits += dag.node(x).assignment.leq(vocab, &dag.node(y).assignment) as u32;
            }
            black_box(hits)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_order, bench_where_eval, bench_dag, bench_index, bench_arena_leq
}
criterion_main!(benches);
