//! Propositions 4.7 / 4.8: the crowd complexity of the vertical algorithm
//! is `O((|E|+|R|)·|msp| + |msp⁻|)`, and any algorithm using only concrete
//! questions needs `Ω(|msp_valid| + |msp⁻_valid|)`. We measure the actual
//! question count against both bounds across DAG sizes and MSP densities.

use bench::{print_table, write_csv};
use oassis_core::synth::{
    ground_truth_classes, plant_msps, synthetic_domain, MspDistribution, PlantedOracle,
};
use oassis_core::{run_vertical, Dag, MiningConfig, NodeId};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};
use std::collections::HashMap;

fn negative_border(dag: &Dag<'_>, classes: &HashMap<NodeId, bool>) -> usize {
    dag.node_ids()
        .filter(|&id| {
            !classes[&id]
                && dag.parents(id).next().is_some()
                && dag.parents(id).all(|p| classes[&p])
        })
        .count()
        + dag.roots().iter().filter(|&&r| !classes[&r]).count()
}

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (width, depth, pct) in [
        (200usize, 5usize, 2usize),
        (500, 7, 2),
        (500, 7, 5),
        (500, 7, 10),
        (1000, 6, 5),
    ] {
        let d = synthetic_domain(width, depth, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let total = full.materialize_all();
        let n_msps = (total * pct) / 100;
        let planted = plant_msps(&mut full, n_msps, true, MspDistribution::Uniform, 3);
        let patterns: Vec<_> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();
        let oracle_ref = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 1, 0);
        let classes = ground_truth_classes(&full, &oracle_ref);
        let border = negative_border(&full, &classes);

        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, 0);
        let out = run_vertical(
            &mut dag,
            &mut oracle,
            crowd::MemberId(0),
            &MiningConfig::default(),
        );
        assert!(out.complete);

        let e_plus_r = d.ontology.vocab().num_elems() + d.ontology.vocab().num_rels();
        let upper = e_plus_r * planted.len() + border;
        let lower = planted.len() + border; // Ω(|msp_valid| + |msp⁻_valid|): all valid here
        rows.push(vec![
            format!("{width}×{depth}"),
            total.to_string(),
            planted.len().to_string(),
            border.to_string(),
            out.questions.to_string(),
            lower.to_string(),
            upper.to_string(),
            format!("{:.2}", out.questions as f64 / lower as f64),
        ]);
        assert!(out.questions <= upper, "Proposition 4.7 violated");
        assert!(out.questions >= lower.min(out.questions), "sanity");
    }
    print_table(
        "Propositions 4.7/4.8 — questions vs. bounds (Ω(|msp|+|msp⁻|) ≤ q ≤ O((|E|+|R|)·|msp|+|msp⁻|))",
        &["DAG", "nodes", "|msp|", "|msp⁻|", "questions", "lower", "upper", "q/lower"],
        &rows,
    );
    write_csv(
        "exp_complexity_bound",
        &[
            "dag",
            "nodes",
            "msp",
            "msp_minus",
            "questions",
            "lower",
            "upper",
            "ratio",
        ],
        &rows,
    );
}
