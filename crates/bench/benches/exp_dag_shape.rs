//! Section 6.4, "Shape of the DAG": vary the synthetic DAG's width
//! (500–2000) and depth (4–7) at fixed MSP density and check that the
//! observed trends do not change materially — the paper reports that
//! "varying the shape of the DAG … had no significant effect on the
//! observed trends".
//!
//! We report, per shape, the questions per MSP and the
//! vertical-vs-horizontal ratio at 20% discovery — the two headline
//! trends of Figure 5 — averaged over 4 trials.

use bench::{mean_percentiles, print_table, questions_at_percentiles, write_csv};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{run_horizontal, run_vertical, Dag, MiningConfig};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for width in [500usize, 1000, 2000] {
        for depth in [4usize, 5, 6, 7] {
            let d = synthetic_domain(width, depth, 0);
            let q = parse(&d.query).unwrap();
            let b = bind(&q, &d.ontology).unwrap();
            let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
            let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
            let total = full.materialize_all();
            let n_msps = (total * 5) / 100;

            let mut v_total = 0usize;
            let mut v20: Vec<Vec<Option<usize>>> = Vec::new();
            let mut h20: Vec<Vec<Option<usize>>> = Vec::new();
            for trial in 0..4u64 {
                let planted = plant_msps(
                    &mut full,
                    n_msps,
                    true,
                    MspDistribution::Uniform,
                    depth as u64 * 100 + trial,
                );
                let patterns: Vec<_> = planted
                    .iter()
                    .map(|&id| full.node(id).assignment.apply(&b))
                    .collect();
                let cfg = MiningConfig {
                    seed: trial,
                    ..Default::default()
                };

                let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
                let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 1, trial);
                let out_v = run_vertical(&mut dag, &mut oracle, crowd::MemberId(0), &cfg);
                v_total += out_v.questions;
                v20.push(questions_at_percentiles(&out_v.events, true, &[20]));

                let mut dag_h = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
                dag_h.materialize_all();
                let mut oracle_h = PlantedOracle::new(d.ontology.vocab(), patterns, 1, trial);
                let out_h = run_horizontal(&mut dag_h, &mut oracle_h, crowd::MemberId(0), &cfg);
                h20.push(questions_at_percentiles(&out_h.events, true, &[20]));
            }
            let v20m = mean_percentiles(&v20)[0].unwrap_or(f64::NAN);
            let h20m = mean_percentiles(&h20)[0].unwrap_or(f64::NAN);
            rows.push(vec![
                width.to_string(),
                depth.to_string(),
                total.to_string(),
                n_msps.to_string(),
                format!("{:.1}", v_total as f64 / 4.0 / n_msps.max(1) as f64),
                format!("{:.0}%", 100.0 * v20m / h20m),
            ]);
        }
    }
    print_table(
        "Section 6.4 — DAG shape sweep (5% MSPs; trends should stay flat)",
        &[
            "width",
            "depth",
            "nodes",
            "MSPs",
            "questions/MSP (vertical)",
            "vertical/horizontal @20%",
        ],
        &rows,
    );
    write_csv(
        "exp_dag_shape",
        &[
            "width",
            "depth",
            "nodes",
            "msps",
            "questions_per_msp",
            "v_over_h_at20",
        ],
        &rows,
    );
}
