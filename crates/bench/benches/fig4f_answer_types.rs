//! Figure 4f: the effect of answer types on the synthetic workload —
//! questions needed to discover X% of the valid MSPs for different ratios
//! of specialization questions (10% / 50% / 100% vs. 100% closed) and of
//! user-guided pruning clicks (25% / 50%).
//!
//! Setup per Section 6.4: a DAG of width 500 and depth 7 (built from two
//! layered taxonomies whose product matches), MSPs planted uniformly among
//! valid assignments, a single simulated user, results averaged over 6
//! trials. Paper result: "a high ratio of these special types of questions
//! improved the algorithm performance (although not by much)".

use bench::{fmt_opt, mean_percentiles, print_table, questions_at_percentiles, write_csv};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{run_vertical, Dag, MiningConfig};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};

fn main() {
    let d = synthetic_domain(500, 7, 0);
    let q = parse(&d.query).unwrap();
    let b = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
    let total = full.materialize_all();
    let n_msps = total / 80; // ≈1.2% as observed in the crowd experiments
    println!(
        "synthetic DAG: {total} nodes (width ≈ 500, depth 7), planting {n_msps} MSPs, 6 trials"
    );

    let percents: Vec<usize> = (1..=10).map(|i| i * 10).collect();
    let configs: [(&str, f64, f64); 6] = [
        ("100% closed", 0.0, 0.0),
        ("10% special.", 0.1, 0.0),
        ("50% special.", 0.5, 0.0),
        ("100% special.", 1.0, 0.0),
        ("25% pruning", 0.0, 0.25),
        ("50% pruning", 0.0, 0.5),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for (label, spec, pruning) in configs {
        let mut per_trial: Vec<Vec<Option<usize>>> = Vec::new();
        let mut totals = 0usize;
        for trial in 0..6u64 {
            let planted = plant_msps(
                &mut full,
                n_msps,
                true,
                MspDistribution::Uniform,
                100 + trial,
            );
            let patterns: Vec<_> = planted
                .iter()
                .map(|&id| full.node(id).assignment.apply(&b))
                .collect();
            let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
            let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, trial);
            oracle.pruning_prob = pruning;
            let cfg = MiningConfig {
                specialization_ratio: spec,
                seed: trial,
                ..Default::default()
            };
            let out = run_vertical(&mut dag, &mut oracle, crowd::MemberId(0), &cfg);
            assert!(out.complete);
            totals += out.questions;
            per_trial.push(questions_at_percentiles(&out.events, true, &percents));
        }
        let means = mean_percentiles(&per_trial);
        let mut row = vec![label.to_owned()];
        row.extend(means.iter().map(|&m| fmt_opt(m)));
        row.push(format!("{:.0}", totals as f64 / 6.0));
        csv.push(row.clone());
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["config".into()];
    headers.extend(percents.iter().map(|p| format!("{p}%")));
    headers.push("total".into());
    print_table(
        "Figure 4f — questions to discover X% of valid MSPs, by answer-type mix",
        &headers,
        &rows,
    );
    write_csv("fig4f_answer_types", &headers, &csv);
}
