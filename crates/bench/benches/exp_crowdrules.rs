//! Companion experiment for the SIGMOD'13 "Crowd Mining" framework
//! (`crowdrules`): precision and recall of the mined significant
//! association rules against planted ground truth as a function of the
//! number of questions, comparing the greedy (information-driven) and
//! random question-selection strategies, averaged over 4 seeds.

use bench::{print_table, write_csv};
use crowdrules::{
    AssociationRule, CrowdMiner, ItemId, Itemset, MinerConfig, QuestionStrategy, SimConfig,
    SimulatedRuleCrowd,
};

fn iset(items: &[u32]) -> Itemset {
    Itemset::new(items.iter().map(|&i| ItemId(i)))
}

/// Ground truth derived from the simulation itself: the reference rule
/// space is every singleton→singleton rule over the habit items, and a
/// rule is truly significant iff its *population* support/confidence clear
/// the thresholds.
fn setup(seed: u64, theta_s: f64, theta_c: f64) -> (SimulatedRuleCrowd, Vec<AssociationRule>) {
    let habits = vec![
        (iset(&[0, 1]), 0.7),
        (iset(&[2, 3]), 0.55),
        (iset(&[4, 5]), 0.45),
        (iset(&[6, 7, 8]), 0.4),
        (iset(&[9, 10]), 0.1), // below threshold
    ];
    let cfg = SimConfig {
        members: 200,
        items: 40,
        habits,
        answer_noise: 0.03,
        seed,
        ..Default::default()
    };
    let crowd = SimulatedRuleCrowd::generate(&cfg);
    let mut truth = Vec::new();
    for a in 0u32..=10 {
        for b in 0u32..=10 {
            if a == b {
                continue;
            }
            let r = AssociationRule::new(iset(&[a]), iset(&[b])).unwrap();
            if crowd.true_support(&r) >= theta_s && crowd.true_confidence(&r) >= theta_c {
                truth.push(r);
            }
        }
    }
    (crowd, truth)
}

/// Precision against *true* significance (reported rules of any shape are
/// credited when the population statistics actually clear the thresholds).
fn true_precision(
    crowd: &SimulatedRuleCrowd,
    reported: &[AssociationRule],
    theta_s: f64,
    theta_c: f64,
) -> f64 {
    if reported.is_empty() {
        return 1.0;
    }
    let ok = reported
        .iter()
        .filter(|r| crowd.true_support(r) >= theta_s && crowd.true_confidence(r) >= theta_c)
        .count();
    ok as f64 / reported.len() as f64
}

fn main() {
    let checkpoints = [100usize, 200, 400, 800, 1600];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for strategy in [QuestionStrategy::Greedy, QuestionStrategy::Random] {
        let mut at: Vec<(f64, f64)> = vec![(0.0, 0.0); checkpoints.len()];
        let seeds = 4u64;
        let (theta_s, theta_c) = (0.3, 0.6);
        for seed in 0..seeds {
            let (mut crowd, truth) = setup(seed, theta_s, theta_c);
            let mut miner = CrowdMiner::new(
                MinerConfig {
                    theta_support: theta_s,
                    theta_confidence: theta_c,
                    strategy,
                    open_ratio: 0.25,
                    seed,
                    ..Default::default()
                },
                vec![],
            );
            let mut done = 0usize;
            for (ci, &cp) in checkpoints.iter().enumerate() {
                miner.run(&mut crowd, cp - done);
                done = cp;
                let reported = miner.significant_rules();
                let p = true_precision(&crowd, &reported, theta_s, theta_c);
                let (_, r) = miner.precision_recall(&truth);
                at[ci].0 += p;
                at[ci].1 += r;
            }
        }
        for (ci, &cp) in checkpoints.iter().enumerate() {
            rows.push(vec![
                format!("{strategy:?}"),
                cp.to_string(),
                format!("{:.2}", at[ci].0 / seeds as f64),
                format!("{:.2}", at[ci].1 / seeds as f64),
            ]);
        }
    }
    print_table(
        "crowdrules (SIGMOD'13 companion) — precision/recall vs questions",
        &["strategy", "questions", "precision", "recall"],
        &rows,
    );
    write_csv(
        "exp_crowdrules",
        &["strategy", "questions", "precision", "recall"],
        &rows,
    );
}
