//! `bench_throughput` — the multi-query throughput harness.
//!
//! Runs N OASSIS-QL queries (the travel-domain query at N different
//! support thresholds) *concurrently* over one shared immutable ontology
//! and one shared thread-safe `SharedCrowdCache`, at pool widths 1, 2, 4
//! and 8, and reports queries/second plus the scaling ratio versus the
//! single-threaded run.
//!
//! Determinism is the headline guarantee: the crowd members are *pure*
//! (rng-free answers), so the outcome digest of all N queries must be
//! bit-identical at every pool width — the harness **exits non-zero** on
//! any mismatch, which is what the CI smoke invocation checks.
//!
//! Results are merged into `BENCH_speed.json` under `"throughput"`,
//! alongside the machine's `cores` count (scaling above 1.0 is only
//! observable with >1 physical cores; the digest check is meaningful
//! everywhere).
//!
//! Usage: `cargo bench -p bench --bench bench_throughput`.

use bench::pure_domain_crowd;
use oassis_core::{CrowdBinding, MiningConfig, Oassis, QueryRequest, SharedCrowdCache};
use ontology::domains::{travel, DomainScale};
use ontology::json::{self, Json};
use std::time::Instant;

const THRESHOLDS: [f64; 8] = [0.16, 0.18, 0.2, 0.22, 0.24, 0.26, 0.28, 0.3];
const MEMBERS: usize = 96;
const HABITS: usize = 10;
const SEED: u64 = 7;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fnv_usize(h: &mut u64, v: usize) {
    fnv(h, &(v as u64).to_le_bytes());
}

/// One pool width's worth of numbers.
struct Run {
    threads: usize,
    wall_s: f64,
    qps: f64,
    digest: u64,
}

fn run_at(threads: usize) -> Run {
    // paper scale: the habit-profile generator's term ranges assume it
    let domain = travel(DomainScale::paper());
    let ont = &domain.ontology;
    let queries: Vec<String> = THRESHOLDS
        .iter()
        .map(|t| {
            domain
                .query
                .replace("WITH SUPPORT = 0.2", &format!("WITH SUPPORT = {t}"))
        })
        .collect();
    let query_refs: Vec<&str> = queries.iter().map(String::as_str).collect();

    let engine = Oassis::new(ont).with_pool(minipool::Pool::new(threads));
    let cache = SharedCrowdCache::default();
    let agg = bench::paper_aggregator();
    let cfg = MiningConfig {
        specialization_ratio: 0.12,
        seed: SEED,
        ..Default::default()
    };

    let req = QueryRequest::batch(&query_refs).with_mining(cfg);
    let start = Instant::now();
    let answers = engine
        .run(
            &req,
            // every query consults the SAME crowd (same seed): the shared
            // cache then models re-asking the same people across queries
            CrowdBinding::per_query(
                |_| pure_domain_crowd(&domain, ont.vocab(), MEMBERS, HABITS, SEED),
                &cache,
            ),
            &agg,
        )
        .expect("throughput batch request accepted")
        .into_batch()
        .expect("batch request yields per-query results");
    let wall_s = start.elapsed().as_secs_f64();

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for ans in &answers {
        let ans = ans.as_ref().expect("throughput query failed");
        fnv_usize(&mut digest, ans.answers.len());
        for a in &ans.answers {
            fnv(&mut digest, a.as_bytes());
        }
        fnv_usize(&mut digest, ans.outcome.mining.questions);
        fnv_usize(&mut digest, ans.outcome.mining.msps.len());
        fnv_usize(&mut digest, ans.outcome.undecided);
        fnv_usize(&mut digest, usize::from(ans.outcome.mining.complete));
        for e in &ans.outcome.mining.events {
            fnv_usize(&mut digest, e.question);
            fnv(&mut digest, format!("{:?}", e.kind).as_bytes());
        }
    }
    let qps = THRESHOLDS.len() as f64 / wall_s;
    println!(
        "threads={threads}  wall={wall_s:>7.3}s  qps={qps:>6.2}  cache={} answers  digest={digest:016x}",
        cache.len()
    );
    Run {
        threads,
        wall_s,
        qps,
        digest,
    }
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "{} queries over the travel domain, {MEMBERS} members, {cores} cores",
        THRESHOLDS.len()
    );

    let runs: Vec<Run> = [1usize, 2, 4, 8].into_iter().map(run_at).collect();
    let reference = runs[0].digest;
    let identical = runs.iter().all(|r| r.digest == reference);
    let qps1 = runs[0].qps;
    for r in &runs {
        println!(
            "threads={}: scaling vs 1 thread = {:.2}x",
            r.threads,
            r.qps / qps1
        );
    }
    println!(
        "outcomes across pool widths: {}",
        if identical {
            "identical"
        } else {
            "DIFFER — parallel engine is not deterministic!"
        }
    );

    // merge into BENCH_speed.json under "throughput"
    let path = workspace_root().join("BENCH_speed.json");
    let previous = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| json::parse(&s).ok());
    let mut fields: Vec<(String, Json)> = match previous {
        Some(Json::Obj(fields)) => fields
            .into_iter()
            .filter(|(k, _)| k != "throughput")
            .collect(),
        _ => vec![("schema".into(), Json::Num(1.0))],
    };
    let per_width = runs
        .iter()
        .map(|r| {
            (
                r.threads.to_string(),
                Json::Obj(vec![
                    ("wall_s".into(), Json::Num((r.wall_s * 1e3).round() / 1e3)),
                    ("qps".into(), Json::Num((r.qps * 100.0).round() / 100.0)),
                    (
                        "scaling_vs_1".into(),
                        Json::Num((r.qps / qps1 * 100.0).round() / 100.0),
                    ),
                ]),
            )
        })
        .collect();
    fields.push((
        "throughput".into(),
        Json::Obj(vec![
            ("queries".into(), Json::Num(THRESHOLDS.len() as f64)),
            ("members".into(), Json::Num(MEMBERS as f64)),
            ("cores".into(), Json::Num(cores as f64)),
            ("threads".into(), Json::Obj(per_width)),
            ("digest".into(), Json::Str(format!("{reference:016x}"))),
            ("outcomes_identical".into(), Json::Bool(identical)),
        ]),
    ));
    std::fs::write(&path, format!("{}\n", Json::Obj(fields))).expect("write BENCH_speed.json");
    println!("wrote {}", path.display());

    if !identical {
        std::process::exit(1);
    }
}
