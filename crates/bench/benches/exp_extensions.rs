//! Extension experiments (not in the paper; Section-8 features):
//!
//! * TOP-k early termination — questions used vs. k, against the full run;
//! * rule mining (`IMPLYING … AND CONFIDENCE`) — questions split between
//!   the support phase (with Observation-4.4 inference) and the pointwise
//!   confidence sweep.

use bench::{print_table, write_csv};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{run_vertical, Dag, MiningConfig};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};

fn main() {
    // ---- TOP-k savings on the synthetic workload ----
    let d = synthetic_domain(500, 7, 0);
    let base_src = d.query.clone();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for k in [1usize, 2, 5, 10, 0] {
        // k = 0 encodes "no TOP clause" (full run)
        let src = if k == 0 {
            base_src.clone()
        } else {
            base_src.replace("SELECT FACT-SETS", &format!("SELECT FACT-SETS TOP {k}"))
        };
        let q = parse(&src).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut questions = 0usize;
        let mut found = 0usize;
        let trials = 4u64;
        for trial in 0..trials {
            let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
            let total = full.materialize_all();
            let planted = plant_msps(
                &mut full,
                total / 40,
                true,
                MspDistribution::Uniform,
                11 + trial,
            );
            let patterns: Vec<_> = planted
                .iter()
                .map(|&id| full.node(id).assignment.apply(&b))
                .collect();
            let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
            let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, trial);
            let out = run_vertical(
                &mut dag,
                &mut oracle,
                crowd::MemberId(0),
                &MiningConfig {
                    seed: trial,
                    ..Default::default()
                },
            );
            questions += out.questions;
            found += out.valid_msps.len();
        }
        rows.push(vec![
            if k == 0 {
                "full".to_owned()
            } else {
                format!("TOP {k}")
            },
            format!("{:.1}", found as f64 / trials as f64),
            format!("{:.0}", questions as f64 / trials as f64),
        ]);
    }
    print_table(
        "TOP-k early termination (synthetic 500×7, ~2.5% MSPs, 4 trials)",
        &["query", "valid MSPs returned", "avg questions"],
        &rows,
    );
    write_csv("exp_topk", &["query", "valid_msps", "avg_questions"], &rows);
}
