//! Figures 4a–4c: crowd statistics for the travel, culinary and
//! self-treatment queries at support thresholds 0.2–0.5, plus the
//! Section-6.3 text statistics (questions-to-completion, answer-type mix,
//! baseline%).
//!
//! Reproduction notes (DESIGN.md §5): the paper's 248 human contributors
//! are replaced by simulated members over generated personal databases;
//! the ontologies are generated so the query DAGs match the paper's
//! reported sizes (4773 / 10512 / 2310-vs-2307 nodes). The threshold sweep
//! re-uses cached answers, exactly as described in Section 6.3: for each
//! threshold we report the answers *used*, while fresh crowd questions are
//! only incurred once.

use bench::{bind_domain, domain_dag_size, print_table, run_domain_at, write_csv};
use ontology::domains::{culinary, self_treatment, travel, DomainScale};

fn main() {
    let thresholds = [0.2, 0.3, 0.4, 0.5];
    // habit counts calibrated so questions-to-completion falls in the
    // paper's 340–1416 band ordering (travel most, self-treatment fewest)
    let domains = [
        (travel(DomainScale::paper()), 4773usize, 12usize),
        (culinary(DomainScale::paper()), 10512, 10),
        (self_treatment(DomainScale::paper()), 2307, 6),
    ];
    let mut summary_rows: Vec<Vec<String>> = Vec::new();

    for (domain, paper_nodes, habits) in &domains {
        let bound = bind_domain(domain);
        let dag_nodes = domain_dag_size(domain, &bound);
        println!(
            "\n### domain {} — DAG {} nodes without multiplicities (paper: {})",
            domain.name, dag_nodes, paper_nodes
        );
        let mut cache = oassis_core::CrowdCache::new();
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut csv_rows: Vec<Vec<String>> = Vec::new();
        for &theta in &thresholds {
            let run = run_domain_at(
                domain,
                &bound,
                &domain.ontology,
                &mut cache,
                theta,
                248, // the paper's crowd size
                *habits,
                7,
            );
            let baseline_pct = 100.0 * run.questions as f64 / run.baseline_questions.max(1) as f64;
            rows.push(vec![
                format!("{theta:.1}"),
                run.msps.to_string(),
                run.valid_msps.to_string(),
                run.questions.to_string(),
                format!("{baseline_pct:.1}%"),
                run.complete.to_string(),
            ]);
            csv_rows.push(vec![
                domain.name.to_owned(),
                format!("{theta}"),
                run.msps.to_string(),
                run.valid_msps.to_string(),
                run.questions.to_string(),
                format!("{baseline_pct:.2}"),
                run.baseline_questions.to_string(),
                run.complete.to_string(),
                run.undecided.to_string(),
            ]);
            if theta == 0.2 {
                let qs = &run.question_stats;
                let total = qs.total().max(1);
                summary_rows.push(vec![
                    domain.name.to_owned(),
                    dag_nodes.to_string(),
                    run.questions.to_string(),
                    run.msps.to_string(),
                    format!(
                        "{:.0}%",
                        100.0 * (qs.specialization + qs.none_of_these) as f64 / total as f64
                    ),
                    format!("{:.0}%", 100.0 * qs.none_of_these as f64 / total as f64),
                    format!("{:.0}%", 100.0 * qs.pruning as f64 / total as f64),
                ]);
            }
        }
        print_table(
            &format!(
                "Figure 4 ({}) — crowd statistics per threshold",
                domain.name
            ),
            &[
                "Θ",
                "#MSPs",
                "#valid",
                "#questions",
                "baseline%",
                "complete",
            ],
            &rows,
        );
        write_csv(
            &format!("fig4_crowd_stats_{}", domain.name.replace('-', "_")),
            &[
                "domain",
                "threshold",
                "msps",
                "valid_msps",
                "questions",
                "baseline_pct",
                "baseline_questions",
                "complete",
                "undecided",
            ],
            &csv_rows,
        );
    }

    print_table(
        "Section 6.3 summary at Θ=0.2 (paper: 340–1416 questions; 12% specialization answers, half of them none-of-these; 13% pruning)",
        &["domain", "DAG nodes", "questions", "#MSPs", "spec answers", "none-of-these", "pruning"],
        &summary_rows,
    );
    write_csv(
        "fig4_domain_summary",
        &[
            "domain",
            "dag_nodes",
            "questions",
            "msps",
            "spec_pct",
            "none_pct",
            "pruning_pct",
        ],
        &summary_rows,
    );
}
