//! Section 6.4, "Distribution of MSPs in the DAG": place MSPs (1) uniformly
//! at random, (2) biased towards nearby positions (≤ 4 hops apart),
//! (3) biased towards far-apart positions (≥ 6 hops) — each either among
//! valid assignments only or anywhere in the DAG. The paper reports the
//! variation "had no significant effect on the observed trends".

use bench::{print_table, write_csv};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{run_vertical, Dag, MiningConfig};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};

fn main() {
    let d = synthetic_domain(500, 7, 0);
    let q = parse(&d.query).unwrap();
    let b = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
    let total = full.materialize_all();
    let n_msps = (total * 5) / 100;
    println!("synthetic DAG: {total} nodes; planting {n_msps} MSPs per configuration; 6 trials");

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (dist_name, dist) in [
        ("uniform", MspDistribution::Uniform),
        ("nearby (≤4 hops)", MspDistribution::Nearby(4)),
        ("far (≥6 hops)", MspDistribution::Far(6)),
    ] {
        for among_valid in [true, false] {
            let mut questions = 0usize;
            let mut found = 0usize;
            for trial in 0..6u64 {
                let planted = plant_msps(&mut full, n_msps, among_valid, dist, 500 + trial);
                let patterns: Vec<_> = planted
                    .iter()
                    .map(|&id| full.node(id).assignment.apply(&b))
                    .collect();
                let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
                let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, trial);
                let out = run_vertical(
                    &mut dag,
                    &mut oracle,
                    crowd::MemberId(0),
                    &MiningConfig {
                        seed: trial,
                        ..Default::default()
                    },
                );
                assert!(out.complete);
                questions += out.questions;
                found += out.msps.len();
            }
            rows.push(vec![
                dist_name.to_owned(),
                if among_valid {
                    "valid only"
                } else {
                    "anywhere"
                }
                .to_owned(),
                format!("{:.0}", questions as f64 / 6.0),
                format!("{:.1}", found as f64 / 6.0),
                format!("{:.1}", questions as f64 / found.max(1) as f64),
            ]);
        }
    }
    print_table(
        "Section 6.4 — MSP placement distribution (expect flat questions/MSP)",
        &[
            "distribution",
            "candidates",
            "avg questions",
            "avg MSPs",
            "questions/MSP",
        ],
        &rows,
    );
    write_csv(
        "exp_msp_distribution",
        &[
            "distribution",
            "candidates",
            "avg_questions",
            "avg_msps",
            "questions_per_msp",
        ],
        &rows,
    );
}
