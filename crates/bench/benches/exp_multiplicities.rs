//! Section 6.4, "Number and size of MSPs with multiplicities" + the lazy
//! generation statistic:
//!
//! * vary the share of planted MSPs that carry multiplicities (0–5% of
//!   nodes) and their size (2–4 values). Paper: "the number of questions
//!   depends on the % of MSPs, and not on whether they include
//!   multiplicities";
//! * compare the nodes the lazy generator materializes against an eager
//!   generator that enumerates every multiplicity node up to the same
//!   size. Paper: "OASSIS has generated less than 1% of the nodes".

use bench::{print_table, write_csv};
use oassis_core::synth::{
    plant_msps, synthetic_domain_mult, widen_msps, MspDistribution, PlantedOracle,
};
use oassis_core::{run_vertical, Dag, MiningConfig, Slot};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};
use std::collections::HashMap;

/// Size-bounded antichain counting on the x-taxonomy: coefficient `k` of
/// `B_v(z) = z + Π_c B_c(z)` counts the antichains of size `k` in the
/// subtree of `v` (constant term = the empty antichain).
fn antichain_counts(
    vocab: &ontology::Vocabulary,
    root: ontology::ElemId,
    max_size: usize,
) -> Vec<f64> {
    fn poly_mul(a: &[f64], b: &[f64], max: usize) -> Vec<f64> {
        let mut out = vec![0.0; max + 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                if i + j <= max {
                    out[i + j] += x * y;
                }
            }
        }
        out
    }
    fn rec(
        vocab: &ontology::Vocabulary,
        v: ontology::ElemId,
        max: usize,
        memo: &mut HashMap<ontology::ElemId, Vec<f64>>,
    ) -> Vec<f64> {
        if let Some(p) = memo.get(&v) {
            return p.clone();
        }
        let mut prod = vec![0.0; max + 1];
        prod[0] = 1.0;
        for &c in vocab.elem_children(v) {
            let child = rec(vocab, c, max, memo);
            prod = poly_mul(&prod, &child, max);
        }
        if max >= 1 {
            prod[1] += 1.0; // the antichain {v}
        }
        memo.insert(v, prod.clone());
        prod
    }
    rec(vocab, root, max_size, &mut HashMap::new())
}

fn main() {
    let d = synthetic_domain_mult(500, 7, 0);
    let q = parse(&d.query).unwrap();
    let b = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
    // mult-1 skeleton (rebuilt fresh per trial: widening interns extra
    // nodes, which must not leak into the next trial's planting pool)
    let total = {
        let mut probe = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        probe.materialize_all()
    };
    println!("synthetic DAG (with $x+): {total} mult-1 nodes");

    // eager enumeration size: antichains of the x-closure (sizes 2..=4)
    // times y-values
    let vocab = d.ontology.vocab();
    let x_root = vocab.elem_id("X").unwrap();
    let y_total: usize = {
        let y_root = vocab.elem_id("Y").unwrap();
        vocab.elem_descendant_count(y_root)
    };
    let anti = antichain_counts(vocab, x_root, 4);
    // eager node count when generating every multiplicity node up to size k
    let eager_up_to = |k: usize| -> f64 { (2..=k).map(|i| anti[i]).sum::<f64>() * y_total as f64 };
    println!(
        "eager generator would enumerate {:.3e} (size ≤2) / {:.3e} (≤3) / {:.3e} (≤4) multiplicity nodes ({} y-values)",
        eager_up_to(2), eager_up_to(3), eager_up_to(4), y_total
    );

    let base_msps = (total * 3) / 100;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (mult_pct, size) in [(0usize, 2usize), (1, 2), (2, 2), (5, 2), (2, 3), (2, 4)] {
        let mut questions = 0usize;
        let mut msps_found = 0usize;
        let mut lazy_mult_nodes = 0usize;
        let trials = 3u64;
        for trial in 0..trials {
            let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
            full.materialize_all();
            let planted = plant_msps(
                &mut full,
                base_msps,
                true,
                MspDistribution::Uniform,
                70 + trial,
            );
            // widen a share of them to multiplicity `size` (on the
            // materialized skeleton, which owns the planted node ids)
            let n_widened = (total * mult_pct) / 100;
            let widened = widen_msps(
                &mut full,
                &planted,
                n_widened.min(planted.len()),
                size,
                Slot(0),
                trial,
            );
            let replaced: std::collections::HashSet<_> =
                widened.iter().map(|&(orig, _)| orig).collect();
            let mut patterns: Vec<_> = planted
                .iter()
                .filter(|id| !replaced.contains(id))
                .map(|&id| full.node(id).assignment.apply(&b))
                .collect();
            patterns.extend(
                widened
                    .iter()
                    .map(|&(_, wide)| full.node(wide).assignment.apply(&b)),
            );
            let n_planted = patterns.len();
            let mut dag = Dag::new(&b, d.ontology.vocab(), &base);
            let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, trial);
            let out = run_vertical(
                &mut dag,
                &mut oracle,
                crowd::MemberId(0),
                &MiningConfig {
                    seed: trial,
                    ..Default::default()
                },
            );
            assert!(out.complete);
            questions += out.questions;
            msps_found += out.msps.len();
            let _ = n_planted;
            // multiplicity nodes the lazy generator materialized
            lazy_mult_nodes += dag
                .node_ids()
                .filter(|&id| !dag.node(id).assignment.is_base())
                .count();
        }
        let lazy_avg = lazy_mult_nodes as f64 / trials as f64;
        let eager = eager_up_to(size.max(2));
        rows.push(vec![
            format!("{mult_pct}%"),
            size.to_string(),
            format!("{:.1}", msps_found as f64 / trials as f64),
            format!("{:.0}", questions as f64 / trials as f64),
            format!(
                "{:.2}",
                questions as f64 / trials as f64 / (msps_found as f64 / trials as f64)
            ),
            format!("{:.0}", lazy_avg),
            format!("{:.4}%", 100.0 * lazy_avg / eager),
        ]);
    }
    print_table(
        "Section 6.4 — MSPs with multiplicities (questions should track #MSPs, not multiplicity; lazy generation ≪ 1% of eager)",
        &["mult MSPs", "size", "avg #MSPs", "avg questions", "questions/MSP", "lazy mult nodes", "of eager"],
        &rows,
    );
    write_csv(
        "exp_multiplicities",
        &[
            "mult_pct",
            "size",
            "avg_msps",
            "avg_questions",
            "q_per_msp",
            "lazy_mult_nodes",
            "pct_of_eager",
        ],
        &rows,
    );
}
