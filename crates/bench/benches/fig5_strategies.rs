//! Figures 5a–5c: vertical vs. horizontal vs. naive — questions needed to
//! discover X% of the valid MSPs at 2% / 5% / 10% planted-MSP density.
//!
//! Setup per Section 6.4: synthetic DAG of width 500 and depth 7, MSPs
//! uniformly distributed among valid assignments, single simulated user,
//! 6 trials. Expected shape (paper): the vertical algorithm starts
//! returning answers much faster (fewer than 35% of horizontal's questions
//! for the first 20% of MSPs); the gap narrows at 100%; naive is
//! competitive only at high MSP density.

use bench::{fmt_opt, mean_percentiles, print_table, questions_at_percentiles, write_csv};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{run_horizontal, run_naive, run_vertical, Dag, MiningConfig};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};

fn main() {
    let d = synthetic_domain(500, 7, 0);
    let q = parse(&d.query).unwrap();
    let b = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
    let total = full.materialize_all();
    println!("synthetic DAG: {total} nodes (width ≈ 500, depth 7), 6 trials per point");

    let percents: Vec<usize> = (1..=10).map(|i| i * 10).collect();
    let algorithms = ["vertical", "horizontal", "naive"];

    for pct in [2usize, 5, 10] {
        let n_msps = (total * pct) / 100;
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut csv: Vec<Vec<String>> = Vec::new();
        for algo in algorithms {
            let mut per_trial: Vec<Vec<Option<usize>>> = Vec::new();
            let mut totals = 0usize;
            for trial in 0..6u64 {
                let planted = plant_msps(
                    &mut full,
                    n_msps,
                    true,
                    MspDistribution::Uniform,
                    1000 * pct as u64 + trial,
                );
                let patterns: Vec<_> = planted
                    .iter()
                    .map(|&id| full.node(id).assignment.apply(&b))
                    .collect();
                let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
                let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, trial);
                let cfg = MiningConfig {
                    seed: trial,
                    ..Default::default()
                };
                let out = match algo {
                    "vertical" => run_vertical(&mut dag, &mut oracle, crowd::MemberId(0), &cfg),
                    "horizontal" => {
                        dag.materialize_all();
                        run_horizontal(&mut dag, &mut oracle, crowd::MemberId(0), &cfg)
                    }
                    _ => {
                        dag.materialize_all();
                        run_naive(&mut dag, &mut oracle, crowd::MemberId(0), &cfg)
                    }
                };
                totals += out.questions;
                per_trial.push(questions_at_percentiles(&out.events, true, &percents));
            }
            let means = mean_percentiles(&per_trial);
            let mut row = vec![algo.to_owned()];
            row.extend(means.iter().map(|&m| fmt_opt(m)));
            row.push(format!("{:.0}", totals as f64 / 6.0));
            csv.push(row.clone());
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["algorithm".into()];
        headers.extend(percents.iter().map(|p| format!("{p}%")));
        headers.push("total".into());
        print_table(
            &format!("Figure 5 ({pct}% MSPs) — questions to discover X% of valid MSPs"),
            &headers,
            &rows,
        );
        write_csv(&format!("fig5_strategies_{pct}pct"), &headers, &csv);
    }
}
