//! `bench_speed` — the repo's perf-trajectory harness.
//!
//! Times the three Section-6.3 domain experiments (E1 travel, E2 culinary,
//! E3 self-treatment, all at paper scale with the standard 248-member
//! crowd) plus the Figure-5 synthetic strategy workloads, and writes
//! `BENCH_speed.json` at the workspace root.
//!
//! The file keeps **two** sets of numbers: `baseline` (recorded the first
//! time the harness runs, and kept verbatim afterwards) and `current`
//! (overwritten on every run), along with the per-workload speedup and an
//! outcome digest. The digest folds every mining outcome the workload
//! produces (question counts, MSP sets, event streams), so a speedup is
//! only trustworthy when the digests also match — optimizations must not
//! change what the miner asks or concludes.
//!
//! Each workload is timed [`REPEATS`] times from fresh state (new cache,
//! new crowd) and the **median** wall-clock is reported — E3 in
//! particular sits near the timer floor, where a single sample is mostly
//! noise. All repetitions must produce the same digest, and the `current`
//! digests must match the `baseline` ones; any mismatch makes the harness
//! **exit non-zero** (the CI smoke invocation relies on this). An
//! append-only `history` array keeps one entry per run, so the perf
//! trajectory across PRs stays visible in-repo.
//!
//! Usage: `cargo bench --bench bench_speed` (add `--release` implicitly);
//! to restart the trajectory, delete `BENCH_speed.json` and rerun.

use bench::{
    bind_domain, digest_domain_run, domain_crowd, paper_aggregator, run_domain_at,
    run_domain_at_batched, run_domain_at_traced,
};
use oassis_core::synth::{
    plant_msps, stress_domain, synthetic_domain, MspDistribution, PlantedOracle,
};
use oassis_core::{
    run_horizontal, run_multi, run_naive, run_vertical, Dag, FixedSampleAggregator, MiningConfig,
};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};
use ontology::domains::{culinary, self_treatment, travel, DomainScale};
use ontology::json::{self, Json};
use std::time::Instant;

/// Inner repetitions per workload; the reported wall-clock is the median.
const REPEATS: usize = 3;

/// One timed workload: median wall-clock plus an outcome digest.
struct Timing {
    name: &'static str,
    wall_s: f64,
    questions: usize,
    msps: usize,
    digest: u64,
}

/// Median of `REPEATS` (wall, digest) samples; panics if the digests
/// disagree — a workload must be deterministic from fresh state.
fn median_wall(name: &str, samples: &[(f64, u64)]) -> f64 {
    let first = samples[0].1;
    assert!(
        samples.iter().all(|&(_, d)| d == first),
        "{name}: digests differ between repetitions — non-deterministic workload"
    );
    let mut walls: Vec<f64> = samples.iter().map(|&(w, _)| w).collect();
    walls.sort_by(|a, b| a.partial_cmp(b).unwrap());
    walls[walls.len() / 2]
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fnv_usize(h: &mut u64, v: usize) {
    fnv(h, &(v as u64).to_le_bytes());
}

fn domain_workloads() -> Vec<Timing> {
    let domains = [
        ("E1_travel", travel(DomainScale::paper()), 12usize),
        ("E2_culinary", culinary(DomainScale::paper()), 10),
        ("E3_self_treatment", self_treatment(DomainScale::paper()), 6),
    ];
    let mut out = Vec::new();
    for (name, domain, habits) in domains {
        let bound = bind_domain(&domain);
        let mut samples: Vec<(f64, u64)> = Vec::with_capacity(REPEATS);
        let mut questions = 0usize;
        let mut msps = 0usize;
        for _ in 0..REPEATS {
            // fresh cache AND fresh crowd per repetition: a warm cache
            // changes which questions reach the members (and thus their
            // rng evolution), so repetitions must restart from scratch to
            // digest-match
            let mut cache = oassis_core::CrowdCache::new();
            let start = Instant::now();
            let run = run_domain_at(
                &domain,
                &bound,
                &domain.ontology,
                &mut cache,
                0.2,
                248,
                habits,
                7,
            );
            let wall = start.elapsed().as_secs_f64();
            samples.push((wall, digest_domain_run(&run)));
            questions = run.questions;
            msps = run.msps;
        }
        let digest = samples[0].1;
        let wall_s = median_wall(name, &samples);
        println!(
            "{name:<20} {wall_s:>8.2}s (median of {REPEATS})  questions={questions} msps={msps} digest={digest:016x}"
        );
        out.push(Timing {
            name,
            wall_s,
            questions,
            msps,
            digest,
        });
    }
    out
}

fn fig5_workloads() -> Vec<Timing> {
    let d = synthetic_domain(500, 7, 0);
    let q = parse(&d.query).unwrap();
    let b = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
    let total = full.materialize_all();

    let mut out = Vec::new();
    for (name, algo) in [
        ("fig5_vertical", 0usize),
        ("fig5_horizontal", 1),
        ("fig5_naive", 2),
    ] {
        let mut samples: Vec<(f64, u64)> = Vec::with_capacity(REPEATS);
        let mut questions = 0usize;
        let mut msps = 0usize;
        for _rep in 0..REPEATS {
            let mut digest = 0xcbf2_9ce4_8422_2325u64;
            questions = 0;
            msps = 0;
            let start = Instant::now();
            for trial in 0..3u64 {
                let n_msps = total * 5 / 100;
                let planted = plant_msps(
                    &mut full,
                    n_msps,
                    true,
                    MspDistribution::Uniform,
                    5000 + trial,
                );
                let patterns: Vec<_> = planted
                    .iter()
                    .map(|&id| full.node(id).assignment.apply(&b))
                    .collect();
                let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
                let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, trial);
                let cfg = MiningConfig {
                    seed: trial,
                    ..Default::default()
                };
                let run = match algo {
                    0 => run_vertical(&mut dag, &mut oracle, crowd::MemberId(0), &cfg),
                    1 => {
                        dag.materialize_all();
                        run_horizontal(&mut dag, &mut oracle, crowd::MemberId(0), &cfg)
                    }
                    _ => {
                        dag.materialize_all();
                        run_naive(&mut dag, &mut oracle, crowd::MemberId(0), &cfg)
                    }
                };
                questions += run.questions;
                msps += run.msps.len();
                fnv_usize(&mut digest, run.questions);
                fnv_usize(&mut digest, run.msps.len());
                for e in &run.events {
                    fnv_usize(&mut digest, e.question);
                    fnv(&mut digest, format!("{:?}", e.kind).as_bytes());
                }
            }
            samples.push((start.elapsed().as_secs_f64(), digest));
        }
        let digest = samples[0].1;
        let wall_s = median_wall(name, &samples);
        println!(
            "{name:<20} {wall_s:>8.2}s (median of {REPEATS})  questions={questions} msps={msps} digest={digest:016x}"
        );
        out.push(Timing {
            name,
            wall_s,
            questions,
            msps,
            digest,
        });
    }
    out
}

fn timings_to_json(timings: &[Timing]) -> Json {
    Json::Obj(
        timings
            .iter()
            .map(|t| {
                (
                    t.name.to_owned(),
                    Json::Obj(vec![
                        ("wall_s".into(), Json::Num((t.wall_s * 1e3).round() / 1e3)),
                        ("questions".into(), Json::Num(t.questions as f64)),
                        ("msps".into(), Json::Num(t.msps as f64)),
                        ("digest".into(), Json::Str(format!("{:016x}", t.digest))),
                    ]),
                )
            })
            .collect(),
    )
}

/// One instrumented (untimed) pass of the E3 workload with a recording
/// [`telemetry::TelemetrySink`]: per-phase span totals and engine
/// counters become the `"telemetry"` section of `BENCH_speed.json`.
/// Kept separate from the timed repetitions so sink overhead never
/// pollutes the wall-clock numbers; the outcome digest is returned so
/// `main` can assert that recording is outcome-neutral.
fn telemetry_section() -> (Json, u64) {
    let domain = self_treatment(DomainScale::paper());
    let bound = bind_domain(&domain);
    let mut cache = oassis_core::CrowdCache::new();
    let sink = telemetry::TelemetrySink::shared();
    let tele = telemetry::Telemetry::recording(&sink);
    let run = run_domain_at_traced(
        &domain,
        &bound,
        &domain.ontology,
        &mut cache,
        0.2,
        248,
        6,
        7,
        minipool::Pool::sequential(),
        &tele,
    );
    let digest = digest_domain_run(&run);
    let snap = sink.snapshot();
    let spans = Json::Obj(
        snap.spans
            .iter()
            .map(|(k, t)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Num(t.count as f64)),
                        ("ticks".into(), Json::Num(t.ticks as f64)),
                    ]),
                )
            })
            .collect(),
    );
    let counters = Json::Obj(
        snap.counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
            .collect(),
    );
    let section = Json::Obj(vec![
        ("workload".into(), Json::Str("E3_self_treatment".into())),
        ("digest".into(), Json::Str(format!("{digest:016x}"))),
        ("events".into(), Json::Num(snap.events as f64)),
        ("last_tick".into(), Json::Num(snap.last_tick as f64)),
        ("spans".into(), spans),
        ("counters".into(), counters),
    ]);
    (section, digest)
}

/// `batched` section: questions / rounds / wall-clock of the question-
/// batch planner at widths 1/2/4/8 on the E1 travel workload and on a
/// 10⁶-assignment stress ontology. The width-1 E1 run must reproduce the
/// timed E1 digest bit-for-bit (the planner's fast path *is* the
/// unbatched algorithm); the stress runs use a noise-free planted oracle,
/// so their MSP sets must agree at every width.
fn batched_section(e1_digest: Option<u64>) -> Json {
    let mut entries: Vec<(String, Json)> = Vec::new();

    let domain = travel(DomainScale::paper());
    let bound = bind_domain(&domain);
    for k in [1usize, 2, 4, 8] {
        let mut cache = oassis_core::CrowdCache::new();
        let start = Instant::now();
        let run = run_domain_at_batched(
            &domain,
            &bound,
            &domain.ontology,
            &mut cache,
            0.2,
            248,
            12,
            7,
            minipool::Pool::sequential(),
            k,
            &telemetry::Telemetry::off(),
        );
        let wall = start.elapsed().as_secs_f64();
        if k == 1 {
            let d = digest_domain_run(&run);
            assert_eq!(
                Some(d),
                e1_digest,
                "batch width 1 changed the E1 outcome digest — the planner's \
                 fast path must be bit-identical to the unbatched engine"
            );
        }
        println!(
            "batched E1_travel k={k}   {wall:>8.3}s  questions={} rounds={} msps={}",
            run.questions, run.rounds, run.msps
        );
        entries.push((
            format!("E1_travel_k{k}"),
            Json::Obj(vec![
                ("wall_s".into(), Json::Num((wall * 1e3).round() / 1e3)),
                ("questions".into(), Json::Num(run.questions as f64)),
                ("rounds".into(), Json::Num(run.rounds as f64)),
                ("msps".into(), Json::Num(run.msps as f64)),
            ]),
        ));
    }

    // 10⁶-assignment stress ontology: mining stays lazy, so the planted
    // cone — not the full product DAG — bounds the work; what the arena
    // layout and the planner are up against here is breadth (wide child
    // spans, long posting lists), not raw node count.
    let d = stress_domain(1_000_000, 8);
    let assignments = d.layers_x.iter().sum::<usize>() * d.layers_y.iter().sum::<usize>();
    let q = parse(&d.query).unwrap();
    let b = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
    // plant MSP patterns by bounded lazy descent — materializing all 10⁶
    // assignments just to sample a handful would dwarf the measurement
    let mut patterns: Vec<_> = Vec::new();
    {
        let mut scout = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let root = scout.roots()[0];
        let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for i in 0..8usize {
            let mut id = root;
            for step in 0..5usize {
                let span = scout.ensure_children(id);
                let children = scout.child_slice(span);
                if children.is_empty() {
                    break;
                }
                id = children[(i * 3 + step) % children.len()];
            }
            let pattern = scout.node(id).assignment.apply(&b);
            if seen.insert(pattern.to_display(d.ontology.vocab())) {
                patterns.push(pattern);
            }
        }
    }
    let mut reference_msps: Option<std::collections::BTreeSet<String>> = None;
    for k in [1usize, 2, 4, 8] {
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 40, 11);
        let agg = FixedSampleAggregator { sample_size: 3 };
        let cfg = MiningConfig {
            specialization_ratio: 0.12,
            seed: 11,
            batch_width: k,
            ..Default::default()
        };
        let start = Instant::now();
        let out = run_multi(&mut dag, &mut oracle, &agg, &cfg);
        let wall = start.elapsed().as_secs_f64();
        let msps: std::collections::BTreeSet<String> = out
            .mining
            .msps
            .iter()
            .map(|m| m.apply(&b).to_display(d.ontology.vocab()))
            .collect();
        match &reference_msps {
            None => reference_msps = Some(msps),
            Some(r) => assert_eq!(
                &msps, r,
                "stress workload: batch width {k} changed the MSP set"
            ),
        }
        println!(
            "batched stress_1e6 k={k}  {wall:>8.3}s  questions={} rounds={} msps={} nodes={}",
            out.mining.questions,
            out.rounds,
            out.mining.msps.len(),
            out.mining.nodes_materialized
        );
        entries.push((
            format!("stress_1e6_k{k}"),
            Json::Obj(vec![
                ("wall_s".into(), Json::Num((wall * 1e3).round() / 1e3)),
                ("questions".into(), Json::Num(out.mining.questions as f64)),
                ("rounds".into(), Json::Num(out.rounds as f64)),
                ("msps".into(), Json::Num(out.mining.msps.len() as f64)),
            ]),
        ));
    }
    entries.push(("stress_assignments".into(), Json::Num(assignments as f64)));
    Json::Obj(entries)
}

/// Digest of a replayed outcome, field-for-field identical to
/// [`digest_domain_run`] over the round-driven run that recorded the
/// log — equal digests mean the replay reproduced the run bit-for-bit.
fn digest_replay(r: &oassis_core::ReplayOutcome) -> u64 {
    fn word(h: &mut u64, v: usize) {
        fnv(h, &(v as u64).to_le_bytes());
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    word(&mut h, r.questions);
    word(&mut h, r.msps.len());
    word(&mut h, r.valid_msps.len());
    word(&mut h, r.undecided);
    word(&mut h, r.total_valid);
    word(&mut h, r.nodes_materialized);
    word(&mut h, usize::from(r.complete));
    for e in &r.events {
        word(&mut h, e.question);
        fnv(&mut h, format!("{:?}", e.kind).as_bytes());
    }
    h
}

/// `incremental` section: the op-log replay core on E1 — every accepted
/// answer applied as a classification delta against the post-run DAG,
/// no round loop, no crowd. One round-driven E1 run records the log
/// (untimed here; the timed number lives in `current`), then the replay
/// is timed [`REPEATS`] times and the median reported. The replay
/// digest must equal the round-driven digest bit-for-bit, or the
/// harness exits non-zero. Returns the section plus the replay
/// wall-clock for the regression gate.
fn incremental_section(e1_digest: Option<u64>) -> (Json, f64) {
    let domain = travel(DomainScale::paper());
    let bound = bind_domain(&domain);
    let pool = minipool::Pool::sequential();
    let tele = telemetry::Telemetry::off();
    let base = oassis_ql::evaluate_where_pool(&bound, &domain.ontology, MatchMode::Exact, &pool);
    let mut dag = Dag::new(&bound, domain.ontology.vocab(), &base);
    let crowd = domain_crowd(&domain, domain.ontology.vocab(), 248, 12, 7);
    let mut cache = oassis_core::CrowdCache::new();
    let mut caching = oassis_core::CachingCrowd::new(crowd, &mut cache);
    let cfg = MiningConfig {
        threshold: Some(0.2),
        specialization_ratio: 0.12,
        seed: 7,
        ..Default::default()
    };
    let agg = paper_aggregator();
    let out = run_multi(&mut dag, &mut caching, &agg, &cfg);
    let ops = out.mining.ops.len();

    let mut samples: Vec<(f64, u64)> = Vec::with_capacity(REPEATS);
    let mut applied = 0u64;
    let mut compensated = 0u64;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let replay = out.mining.ops.replay(&dag, &agg, &pool, &tele);
        let wall = start.elapsed().as_secs_f64();
        samples.push((wall, digest_replay(&replay)));
        applied = replay.applied;
        compensated = replay.compensated;
    }
    let digest = samples[0].1;
    assert_eq!(
        Some(digest),
        e1_digest,
        "op-log replay changed the E1 outcome digest — the incremental \
         core must be bit-identical to the round-driven engine"
    );
    let wall_s = median_wall("incremental_E1", &samples);
    println!(
        "incremental E1_travel  {wall_s:>8.3}s replay (median of {REPEATS})  \
         ops={ops} applied={applied} digest={digest:016x}{}",
        if wall_s <= 0.050 {
            "  — within the 50 ms single-core goal"
        } else {
            ""
        }
    );
    let section = Json::Obj(vec![
        ("workload".into(), Json::Str("E1_travel".into())),
        (
            "replay_wall_s".into(),
            Json::Num((wall_s * 1e4).round() / 1e4),
        ),
        ("ops".into(), Json::Num(ops as f64)),
        ("applied".into(), Json::Num(applied as f64)),
        ("compensated".into(), Json::Num(compensated as f64)),
        ("digest".into(), Json::Str(format!("{digest:016x}"))),
        ("within_50ms_goal".into(), Json::Bool(wall_s <= 0.050)),
    ]);
    (section, wall_s)
}

/// The sharded-cluster merge path (`core::cluster`), digest-gated: the
/// round-driven E1 log is split into per-node wire streams (assignment-
/// addressed, exactly what `simtest::net` delivers), and the coordinator
/// merge — intern into a fresh replica + canonical sort + merged-mode
/// replay — is timed at N ∈ {1, 2, 4, 8}. Every shard count must merge
/// to the same [`SemanticOutcome`] digest as the single-node run, or the
/// harness exits non-zero; the reported number is merge throughput in
/// ops/s (higher is better).
fn cluster_section() -> (Json, bool) {
    use oassis_core::cluster::{to_wire, Coordinator, SemanticOutcome};

    let domain = travel(DomainScale::paper());
    let bound = bind_domain(&domain);
    let pool = minipool::Pool::sequential();
    let tele = telemetry::Telemetry::off();
    let base = oassis_ql::evaluate_where_pool(&bound, &domain.ontology, MatchMode::Exact, &pool);
    let mut dag = Dag::new(&bound, domain.ontology.vocab(), &base);
    let crowd = domain_crowd(&domain, domain.ontology.vocab(), 248, 12, 7);
    let mut cache = oassis_core::CrowdCache::new();
    let mut caching = oassis_core::CachingCrowd::new(crowd, &mut cache);
    let cfg = MiningConfig {
        threshold: Some(0.2),
        specialization_ratio: 0.12,
        seed: 7,
        ..Default::default()
    };
    let agg = paper_aggregator();
    let out = run_multi(&mut dag, &mut caching, &agg, &cfg);
    let wire = to_wire(&out.mining.ops, &dag);
    let vocab = domain.ontology.vocab();
    let reference = SemanticOutcome::from_mining(&out.mining, &bound, vocab);
    let ref_digest = reference.digest();

    let mut ok = true;
    let mut entries = Vec::new();
    for shards in [1u32, 2, 4, 8] {
        // the per-member split simtest's shard map induces: member ids
        // are the cross-node tie-breaker, so any member partition merges
        // back to the same canonical order
        let mut streams: Vec<Vec<_>> = vec![Vec::new(); shards as usize];
        for op in &wire {
            streams[(op.member.0 % shards) as usize].push(op.clone());
        }
        let mut samples: Vec<(f64, u64)> = Vec::with_capacity(REPEATS);
        let mut merge_ops = 0u64;
        for _ in 0..REPEATS {
            let start = Instant::now();
            let mut coord = Coordinator::new(shards, out.mining.ops.threshold(), true);
            for (node, stream) in streams.iter().enumerate() {
                coord.ingest(node as u32, 0, stream);
            }
            let mut replica = Dag::new(&bound, vocab, &base);
            let merged = coord.merge(&mut replica, &agg, &pool, &tele, out.mining.complete);
            let wall = start.elapsed().as_secs_f64();
            merge_ops = coord.merge_ops();
            samples.push((
                wall,
                SemanticOutcome::from_replay(&merged, &bound, vocab).digest(),
            ));
        }
        let wall_s = median_wall(&format!("cluster_N{shards}"), &samples);
        let digest = samples[0].1;
        let same = digest == ref_digest;
        ok &= same;
        let ops_per_s = merge_ops as f64 / wall_s;
        println!(
            "cluster E1 N={shards}       {wall_s:>8.3}s merge (median of {REPEATS})  \
             ops={merge_ops} throughput={ops_per_s:.0} ops/s  outcomes {}",
            if same {
                "identical"
            } else {
                "DIFFER from the single-node run!"
            }
        );
        entries.push(Json::Obj(vec![
            ("shards".into(), Json::Num(f64::from(shards))),
            ("ops".into(), Json::Num(merge_ops as f64)),
            (
                "merge_wall_s".into(),
                Json::Num((wall_s * 1e4).round() / 1e4),
            ),
            ("ops_per_s".into(), Json::Num(ops_per_s.round())),
            ("digest".into(), Json::Str(format!("{digest:016x}"))),
            ("matches_single_node".into(), Json::Bool(same)),
        ]));
    }
    let section = Json::Obj(vec![
        ("workload".into(), Json::Str("E1_travel".into())),
        (
            "single_node_digest".into(),
            Json::Str(format!("{ref_digest:016x}")),
        ),
        ("merges".into(), Json::Arr(entries)),
    ]);
    (section, ok)
}

/// `server` section, digest-gated: the persistent-session service on
/// the Figure-1 domain. One query mines live over loopback TCP, a
/// burst of repeat requests (all answer-cache hits) measures protocol
/// and session overhead in requests/s, and a cold restart over the
/// same WAL root measures recovery latency — page-in plus op-log
/// replay. The recovered digest must equal the live digest, or the
/// harness exits non-zero (recovery that changes the outcome is not a
/// latency number worth recording).
fn server_section() -> (Json, bool) {
    use oassis_server::{
        Client, Figure1Provider, QuerySpec, Request, Response, Server, ServerConfig,
        SessionManager, SessionSpec,
    };
    use ontology::domains::figure1;
    use std::sync::Arc;

    let ont = Arc::new(figure1::ontology());
    let root = std::env::temp_dir().join(format!("oassis-bench-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let session = SessionSpec {
        name: "bench".into(),
        seed: 7,
        members: 2,
    };
    let qspec = QuerySpec {
        src: figure1::SIMPLE_QUERY.to_string(),
        threshold: None,
        batch_width: 1,
        max_questions: None,
        seed: 3,
    };
    let manager = |ont: &Arc<ontology::Ontology>| {
        SessionManager::new(
            ont.clone(),
            Box::new(Figure1Provider::new(ont.clone())),
            &root,
        )
    };

    // live lifetime over loopback TCP: mine once, then a repeat burst
    let server = Server::spawn(manager(&ont), &ServerConfig::default()).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let call =
        |client: &mut Client, req: &Request| -> Response { client.call(req).expect("server call") };
    call(&mut client, &Request::Open(session.clone()));
    let query = Request::Query {
        session: "bench".into(),
        spec: qspec.clone(),
    };
    let Response::Result { reply, .. } = call(&mut client, &query) else {
        panic!("live query failed")
    };
    let live_digest = reply.digest;
    const REQUESTS: usize = 200;
    let start = Instant::now();
    let mut ok = true;
    for _ in 0..REQUESTS {
        let Response::Result { reply, .. } = call(&mut client, &query) else {
            panic!("repeat query failed")
        };
        ok &= reply.digest == live_digest;
    }
    let burst_wall = start.elapsed().as_secs_f64();
    let requests_per_s = REQUESTS as f64 / burst_wall;
    client.bye().expect("bye");
    server.shutdown();

    // recovery latency: cold restarts over the same WAL root — session
    // page-in plus a full op-log replay of the recorded query
    let mut samples: Vec<(f64, u64)> = Vec::with_capacity(REPEATS);
    let mut recovered_ops = 0usize;
    for _ in 0..REPEATS {
        let mut mgr = manager(&ont);
        let start = Instant::now();
        mgr.open(&session).expect("resume");
        let recovered = mgr.recover("bench").expect("recover");
        let wall = start.elapsed().as_secs_f64();
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for r in &recovered {
            ok &= r.verified == Some(true) && r.digest == live_digest;
            recovered_ops = r.ops;
            fnv(&mut digest, r.digest.as_bytes());
        }
        samples.push((wall, digest));
    }
    let recovery_wall_s = median_wall("server_recovery", &samples);
    let _ = std::fs::remove_dir_all(&root);
    println!(
        "server E0_figure1     {requests_per_s:>8.0} req/s over TCP; recovery \
         {recovery_wall_s:.4}s (median of {REPEATS}, {recovered_ops} ops)  outcomes {}",
        if ok {
            "identical"
        } else {
            "DIFFER from the live run!"
        }
    );
    let section = Json::Obj(vec![
        ("workload".into(), Json::Str("figure1_simple".into())),
        ("requests".into(), Json::Num(REQUESTS as f64)),
        ("requests_per_s".into(), Json::Num(requests_per_s.round())),
        (
            "recovery_wall_s".into(),
            Json::Num((recovery_wall_s * 1e4).round() / 1e4),
        ),
        ("recovered_ops".into(), Json::Num(recovered_ops as f64)),
        ("digest".into(), Json::Str(live_digest)),
        ("matches_live".into(), Json::Bool(ok)),
    ]);
    (section, ok)
}

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn main() {
    let mut timings = domain_workloads();
    timings.extend(fig5_workloads());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // instrumented pass: recording telemetry must not perturb outcomes
    let (telemetry_json, traced_digest) = telemetry_section();
    let e3_digest = timings
        .iter()
        .find(|t| t.name == "E3_self_treatment")
        .map(|t| t.digest);
    let recording_neutral = e3_digest == Some(traced_digest);
    println!(
        "telemetry-instrumented E3 digest {traced_digest:016x}: {}",
        if recording_neutral {
            "identical to the timed run"
        } else {
            "DIFFERS from the timed run — recording perturbed the outcome!"
        }
    );

    // the planner sweep (E1 and the 10⁶ stress ontology at widths
    // 1/2/4/8); panics if width 1 is not digest-neutral on E1
    let e1_digest = timings
        .iter()
        .find(|t| t.name == "E1_travel")
        .map(|t| t.digest);
    let batched_json = batched_section(e1_digest);

    // incremental op-log replay: digest-gated against the round-driven
    // E1 run inside the section builder
    let (incremental_json, incremental_wall) = incremental_section(e1_digest);

    // sharded coordinator merge at N ∈ {1, 2, 4, 8}: every shard count
    // must land on the single-node semantic digest
    let (cluster_json, cluster_ok) = cluster_section();

    // persistent-session service: requests/s over loopback TCP plus
    // cold-restart recovery latency, gated on the recovered digest
    let (server_json, server_ok) = server_section();

    let path = workspace_root().join("BENCH_speed.json");
    let previous = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| json::parse(&s).ok());
    // perf ratchet: E1 must stay within 25% of the committed current
    // wall-clock (CI runs this harness against the checked-in file)
    let e1_gate = previous
        .as_ref()
        .and_then(|doc| doc.field("current").ok())
        .and_then(|c| c.field("E1_travel").ok())
        .and_then(|e| e.field("wall_s").ok())
        .and_then(|w| w.as_f64().ok())
        .and_then(|prev_wall| {
            let cur = timings.iter().find(|t| t.name == "E1_travel")?.wall_s;
            println!(
                "E1_travel perf gate: {cur:.3}s vs committed {prev_wall:.3}s \
                 (limit {:.3}s)",
                prev_wall * 1.25
            );
            Some(cur > prev_wall * 1.25)
        })
        .unwrap_or(false);
    // same ratchet for the incremental replay path: within 25% of the
    // committed replay wall-clock
    let incremental_gate = previous
        .as_ref()
        .and_then(|doc| doc.field("incremental").ok())
        .and_then(|i| i.field("replay_wall_s").ok())
        .and_then(|w| w.as_f64().ok())
        .map(|prev_wall| {
            println!(
                "incremental E1 perf gate: {incremental_wall:.4}s vs committed \
                 {prev_wall:.4}s (limit {:.4}s)",
                prev_wall * 1.25
            );
            incremental_wall > prev_wall * 1.25
        })
        .unwrap_or(false);
    let baseline = previous
        .as_ref()
        .and_then(|doc| doc.field("baseline").ok().cloned());
    // append-only trajectory: one entry per harness run
    let mut history: Vec<Json> = previous
        .as_ref()
        .and_then(|doc| doc.field("history").ok())
        .and_then(|h| match h {
            Json::Arr(entries) => Some(entries.clone()),
            _ => None,
        })
        .unwrap_or_default();
    // preserve fields other harnesses own (e.g. bench_throughput's)
    let extra_fields: Vec<(String, Json)> = match &previous {
        Some(Json::Obj(fields)) => fields
            .iter()
            .filter(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "schema"
                        | "baseline"
                        | "current"
                        | "speedup_vs_baseline"
                        | "history"
                        | "cores"
                        | "repeats"
                        | "telemetry"
                        | "batched"
                        | "incremental"
                        | "cluster"
                        | "server"
                )
            })
            .cloned()
            .collect(),
        _ => Vec::new(),
    };
    let current = timings_to_json(&timings);
    let baseline = baseline.unwrap_or_else(|| {
        println!("(no existing baseline — recording this run as the baseline)");
        current.clone()
    });

    let mut all_identical = true;
    let mut speedups = Vec::new();
    for t in &timings {
        if let Ok(base) = baseline.field(t.name) {
            let base_wall = base
                .field("wall_s")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::NAN);
            let base_digest = base
                .field("digest")
                .ok()
                .and_then(|v| v.as_str().ok().map(str::to_owned));
            let speedup = base_wall / t.wall_s;
            let same = base_digest.as_deref() == Some(&format!("{:016x}", t.digest));
            all_identical &= same;
            println!(
                "{:<20} speedup vs baseline: {speedup:.2}x  outcomes {}",
                t.name,
                if same {
                    "identical"
                } else {
                    "DIFFER — speedup not comparable!"
                }
            );
            speedups.push((
                t.name.to_owned(),
                Json::Obj(vec![
                    (
                        "speedup".into(),
                        Json::Num((speedup * 100.0).round() / 100.0),
                    ),
                    ("outcomes_identical".into(), Json::Bool(same)),
                ]),
            ));
        }
    }

    history.push(Json::Obj(vec![
        (
            "run".into(),
            // monotonic even after the cap prunes old entries: one past
            // the last recorded run, not the array length
            Json::Num(
                history
                    .last()
                    .and_then(|e| e.field("run").ok())
                    .and_then(|r| r.as_f64().ok())
                    .unwrap_or(0.0)
                    + 1.0,
            ),
        ),
        ("cores".into(), Json::Num(cores as f64)),
        ("repeats".into(), Json::Num(REPEATS as f64)),
        ("workloads".into(), current.clone()),
    ]));
    // bounded trajectory: the run-1 anchor plus the latest 19 entries
    // (the full curve lives in git history; the file stays reviewable)
    const HISTORY_CAP: usize = 20;
    if history.len() > HISTORY_CAP {
        let tail = history.split_off(history.len() - (HISTORY_CAP - 1));
        history.truncate(1);
        history.extend(tail);
    }

    let mut fields = vec![
        ("schema".into(), Json::Num(1.0)),
        ("cores".into(), Json::Num(cores as f64)),
        ("repeats".into(), Json::Num(REPEATS as f64)),
        ("baseline".into(), baseline),
        ("current".into(), current),
        ("speedup_vs_baseline".into(), Json::Obj(speedups)),
        ("history".into(), Json::Arr(history)),
        ("telemetry".into(), telemetry_json),
        ("batched".into(), batched_json),
        ("incremental".into(), incremental_json),
        ("cluster".into(), cluster_json),
        ("server".into(), server_json),
    ];
    fields.extend(extra_fields);
    let doc = Json::Obj(fields);
    std::fs::write(&path, format!("{doc}\n")).expect("write BENCH_speed.json");
    println!("wrote {}", path.display());

    if !all_identical {
        eprintln!("outcome digests changed vs baseline — failing the smoke run");
        std::process::exit(1);
    }
    if !recording_neutral {
        eprintln!("recording telemetry changed the E3 outcome — failing the smoke run");
        std::process::exit(1);
    }
    if e1_gate {
        eprintln!("E1_travel regressed more than 25% over the committed wall-clock — failing the smoke run");
        std::process::exit(1);
    }
    if incremental_gate {
        eprintln!("incremental E1 replay regressed more than 25% over the committed wall-clock — failing the smoke run");
        std::process::exit(1);
    }
    if !cluster_ok {
        eprintln!("a sharded merge diverged from the single-node digest — failing the smoke run");
        std::process::exit(1);
    }
    if !server_ok {
        eprintln!("server recovery diverged from the live digest — failing the smoke run");
        std::process::exit(1);
    }
}
