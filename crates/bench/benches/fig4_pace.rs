//! Figures 4d–4e: pace of data collection for the travel and
//! self-treatment queries at Θ = 0.2 — the number of questions needed to
//! reach X% of (i) classified valid assignments, (ii) valid MSPs,
//! (iii) all MSPs.
//!
//! Paper shape: all three curves rise steeply near 100% ("towards the end
//! of the execution, classifying each remaining assignment requires more
//! crowd answers: these are typically isolated unclassified parts of the
//! DAG, which cannot be inferred from other assignments").

use bench::{bind_domain, print_table, questions_at_percentiles, run_domain_at, write_csv};
use oassis_core::DiscoveryKind;
use ontology::domains::{self_treatment, travel, DomainScale};

fn main() {
    let percents: Vec<usize> = (1..=10).map(|i| i * 10).collect();
    for (domain, habits, has_invalid) in [
        (travel(DomainScale::paper()), 12usize, true),
        (self_treatment(DomainScale::paper()), 6, false),
    ] {
        let bound = bind_domain(&domain);
        let mut cache = oassis_core::CrowdCache::new();
        let run = run_domain_at(
            &domain,
            &bound,
            &domain.ontology,
            &mut cache,
            0.2,
            248,
            habits,
            7,
        );
        println!(
            "\n### {} at Θ=0.2: {} questions, {} MSPs ({} valid), {} valid assignments",
            domain.name, run.questions, run.msps, run.valid_msps, run.total_valid
        );

        // classified-valid curve: question count when X% of the valid
        // assignments became classified
        let final_total = run
            .outcome_events
            .iter()
            .filter_map(|e| match e.kind {
                DiscoveryKind::ValidClassified { total } => Some(total),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let classified_curve: Vec<Option<usize>> = percents
            .iter()
            .map(|&p| {
                let target = (p * final_total).div_ceil(100);
                run.outcome_events
                    .iter()
                    .find(|e| matches!(e.kind, DiscoveryKind::ValidClassified { total } if total >= target))
                    .map(|e| e.question)
            })
            .collect();
        let all_msps = questions_at_percentiles(&run.outcome_events, false, &percents);
        let valid_msps = questions_at_percentiles(&run.outcome_events, true, &percents);

        let mut rows: Vec<Vec<String>> = Vec::new();
        for (i, &p) in percents.iter().enumerate() {
            let mut row = vec![
                format!("{p}%"),
                classified_curve[i].map_or("–".into(), |q| q.to_string()),
                all_msps[i].map_or("–".into(), |q| q.to_string()),
            ];
            if has_invalid {
                row.insert(2, valid_msps[i].map_or("–".into(), |q| q.to_string()));
            }
            rows.push(row);
        }
        let headers: Vec<&str> = if has_invalid {
            vec![
                "% discovered",
                "classified assign.",
                "valid MSPs",
                "all MSPs",
            ]
        } else {
            vec!["% discovered", "classified assign.", "all MSPs"]
        };
        print_table(
            &format!(
                "Figure 4{} — pace of data collection ({})",
                if has_invalid { "d" } else { "e" },
                domain.name
            ),
            &headers,
            &rows,
        );
        write_csv(
            &format!("fig4_pace_{}", domain.name.replace('-', "_")),
            &headers
                .iter()
                .map(|h| h.replace(' ', "_"))
                .collect::<Vec<_>>(),
            &rows,
        );

        // qualitative check the paper makes: the tail is the expensive part
        if let (Some(Some(q50)), Some(Some(q100))) =
            (classified_curve.get(4), classified_curve.get(9))
        {
            println!(
                "  second half of the classification work costs {:.1}x the first half",
                (*q100 - *q50) as f64 / (*q50).max(1) as f64
            );
        }
    }
}
