//! Shared infrastructure for the experiment harness: aligned-table and CSV
//! output, domain crowd construction, and the per-domain experiment
//! drivers that regenerate the paper's figures (see DESIGN.md §4 and
//! EXPERIMENTS.md for the experiment ↔ figure mapping).

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use crowd::population::{generate, HabitProfile, PopulationConfig};
use crowd::{AnswerModel, MemberBehavior, SimulatedCrowd, SimulatedMember};
use oassis_core::{
    run_multi, Dag, FixedSampleAggregator, MiningConfig, MultiOutcome, QuestionStats,
};
use oassis_ql::{bind, evaluate_where, BoundQuery, MatchMode};
use ontology::domains::GeneratedDomain;
use ontology::Ontology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// Prints an aligned table to stdout.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n== {title} ==");
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for r in &rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers);
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for r in &rows {
        line(r);
    }
}

/// Writes a CSV under `<workspace>/results/`.
pub fn write_csv<H: Display, C: Display>(name: &str, headers: &[H], rows: &[Vec<C>]) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let _ = fs::create_dir_all(&dir);
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in rows {
        out.push_str(
            &r.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, out).expect("write results csv");
    println!("  → results/{name}.csv");
}

/// Planted habit strengths for a domain crowd: a mix of strong, medium and
/// weak habits so that the threshold sweep of Figure 4 yields declining
/// MSP counts.
pub fn domain_profiles(domain: &GeneratedDomain, n: usize, seed: u64) -> Vec<HabitProfile> {
    use rand::seq::SliceRandom;
    let v = domain.ontology.vocab();
    let mut rng = StdRng::seed_from_u64(seed);
    let fact = |v: &ontology::Vocabulary, s: &str, r: &str, o: &str| {
        v.fact(s, r, o)
            .unwrap_or_else(|| panic!("domain term {s} {r} {o}"))
    };
    // Distinct anchor coordinates per habit: habits sharing a place (or a
    // drink / remedy) co-occur within transactions and make value *pairs*
    // significant, exploding the multiplicity lattice far beyond the
    // paper's statistics. Distinct anchors keep co-occurrence to the
    // deliberate within-profile extras.
    let mut anchors: Vec<usize> = (1..=30).collect();
    anchors.shuffle(&mut rng);
    let mut drink_anchors: Vec<usize> = (1..=145).collect();
    drink_anchors.shuffle(&mut rng);
    let mut remedy_anchors: Vec<usize> = (1..=41).collect();
    remedy_anchors.shuffle(&mut rng);
    let mut profiles = Vec::with_capacity(n);
    for i in 0..n {
        // Strength tiers. All frequencies stay below ~0.42 so that the
        // *product* of two independent habits stays under the 5-point
        // scale's lowest positive bucket (0.125): cross-habit value pairs
        // then report "never" and the multiplicity lattice stays as thin
        // as the paper observed (≤ 25 multiplicity MSPs). Deliberate
        // multiplicity MSPs come from the within-profile extras below.
        let frequency = match i % 5 {
            0 => rng.gen_range(0.36..0.42),
            1 | 2 => rng.gen_range(0.26..0.34),
            3 => rng.gen_range(0.18..0.26),
            _ => rng.gen_range(0.05..0.12),
        };
        let adoption = rng.gen_range(0.8..0.98);
        let facts = match domain.name {
            "travel" => {
                let a = anchors[i % anchors.len()];
                let k = rng.gen_range(1..=36);
                let r = rng.gen_range(1..=2);
                let s = rng.gen_range(1..=6);
                let mut f = vec![
                    fact(
                        v,
                        &format!("ActivityKind{k}"),
                        "doAt",
                        &format!("Attraction{a}"),
                    ),
                    fact(v, &format!("Snack{s}"), "eatAt", &format!("Restaurant{r}")),
                ];
                if rng.gen_bool(0.15) {
                    // co-occurring extra activity → multiplicity MSPs
                    let k2 = rng.gen_range(1..=36);
                    f.push(fact(
                        v,
                        &format!("ActivityKind{k2}"),
                        "doAt",
                        &format!("Attraction{a}"),
                    ));
                }
                if rng.gen_bool(0.1) {
                    // MORE-style tip fact
                    f.push(fact(v, "Rent Gear", "doAt", &format!("Attraction{a}")));
                }
                f
            }
            "culinary" => {
                let k = drink_anchors[i % drink_anchors.len()];
                let d = rng.gen_range(1..=71);
                let mut f = vec![fact(
                    v,
                    &format!("DishKind{d}"),
                    "servedWith",
                    &format!("DrinkKind{k}"),
                )];
                if rng.gen_bool(0.2) {
                    let d2 = rng.gen_range(1..=71);
                    f.push(fact(
                        v,
                        &format!("DishKind{d2}"),
                        "servedWith",
                        &format!("DrinkKind{k}"),
                    ));
                }
                f
            }
            _ => {
                let r = remedy_anchors[i % remedy_anchors.len()];
                let s = rng.gen_range(1..=54);
                vec![fact(
                    v,
                    &format!("RemedyKind{r}"),
                    "takenFor",
                    &format!("SymptomKind{s}"),
                )]
            }
        };
        profiles.push(HabitProfile {
            facts,
            adoption,
            frequency,
        });
    }
    profiles
}

/// The crowd used for the "real crowd" substitutions (DESIGN.md §5):
/// members matching the paper's observed behaviour (bounded sessions,
/// 5-point answer scale, pruning clicks, volunteered tips).
pub fn domain_crowd<'v>(
    domain: &GeneratedDomain,
    vocab: &'v ontology::Vocabulary,
    members: usize,
    habits: usize,
    seed: u64,
) -> SimulatedCrowd<'v> {
    let profiles = domain_profiles(domain, habits, seed);
    let cfg = PopulationConfig {
        members,
        transactions: (20, 40),
        behavior: MemberBehavior {
            session_limit: Some(30),
            pruning_prob: 0.25,
            more_tip_prob: 0.05,
            spammer: false,
            stall_every: None,
        },
        answer_model: AnswerModel::Bucketed5,
        seed,
        ..Default::default()
    };
    let members: Vec<SimulatedMember> = generate(&profiles, &cfg);
    SimulatedCrowd::new(vocab, members)
}

/// One threshold's worth of Figure-4 statistics.
#[derive(Debug, Clone)]
pub struct DomainRun {
    /// Support threshold Θ.
    // audit: allow(D8, run input not an outcome; the caller keys runs by threshold already)
    pub threshold: f64,
    /// Total MSPs.
    pub msps: usize,
    /// Valid MSPs.
    pub valid_msps: usize,
    /// Answers used by the algorithm at this threshold.
    pub questions: usize,
    /// Exhaustive-baseline answer count (5 per valid assignment).
    // audit: allow(D8, derived 5x from total_valid which the digest already folds)
    pub baseline_questions: usize,
    /// Whether the run converged.
    pub complete: bool,
    /// Unclassified materialized nodes at the end.
    pub undecided: usize,
    /// Answer-type mix.
    // audit: allow(D8, reporting breakdown of questions; the digest folds the authoritative total)
    pub question_stats: QuestionStats,
    /// Full event stream (for pace curves).
    pub outcome_events: Vec<oassis_core::DiscoveryEvent>,
    /// Valid base assignment count.
    pub total_valid: usize,
    /// Nodes materialized by the lazy generator.
    pub nodes_materialized: usize,
    /// Validity-oracle calls (lazy-generation cost measure).
    // audit: allow(D8, cost instrumentation; not part of the semantic outcome)
    pub admits_calls: usize,
    /// Rounds in which at least one question was asked (deliberately
    /// excluded from [`digest_domain_run`]: the round count is what
    /// batching is *supposed* to change).
    // audit: allow(D8, deliberately excluded - the round count is what batching is supposed to change)
    pub rounds: usize,
}

/// Binds a domain's query.
pub fn bind_domain(domain: &GeneratedDomain) -> BoundQuery {
    let q = oassis_ql::parse(&domain.query).expect("domain query parses");
    bind(&q, &domain.ontology).expect("domain query binds")
}

/// The paper's experimental aggregation black box: 5 answers, mean ≥ Θ.
pub fn paper_aggregator() -> FixedSampleAggregator {
    FixedSampleAggregator { sample_size: 5 }
}

/// Runs one domain query at one threshold with the standard crowd,
/// re-using `cache` across thresholds exactly as in Section 6.3.
#[allow(clippy::too_many_arguments)]
pub fn run_domain_at(
    domain: &GeneratedDomain,
    bound: &BoundQuery,
    ont: &Ontology,
    cache: &mut oassis_core::CrowdCache,
    threshold: f64,
    members: usize,
    habits: usize,
    seed: u64,
) -> DomainRun {
    run_domain_at_pool(
        domain,
        bound,
        ont,
        cache,
        threshold,
        members,
        habits,
        seed,
        minipool::Pool::sequential(),
    )
}

/// [`run_domain_at`] with an explicit fork-join pool for the mining
/// engine's data-parallel scans. Outcomes are bit-identical at any pool
/// width (see `tests/parallel_equivalence.rs`).
#[allow(clippy::too_many_arguments)]
pub fn run_domain_at_pool(
    domain: &GeneratedDomain,
    bound: &BoundQuery,
    ont: &Ontology,
    cache: &mut oassis_core::CrowdCache,
    threshold: f64,
    members: usize,
    habits: usize,
    seed: u64,
    pool: minipool::Pool,
) -> DomainRun {
    run_domain_at_traced(
        domain,
        bound,
        ont,
        cache,
        threshold,
        members,
        habits,
        seed,
        pool,
        &telemetry::Telemetry::off(),
    )
}

/// [`run_domain_at_pool`] with a telemetry handle attached to the mining
/// engine, so the perf harness can record per-phase span totals and
/// engine counters for one instrumented (untimed) pass. With
/// `Telemetry::off()` this is exactly [`run_domain_at_pool`].
#[allow(clippy::too_many_arguments)]
pub fn run_domain_at_traced(
    domain: &GeneratedDomain,
    bound: &BoundQuery,
    ont: &Ontology,
    cache: &mut oassis_core::CrowdCache,
    threshold: f64,
    members: usize,
    habits: usize,
    seed: u64,
    pool: minipool::Pool,
    tele: &telemetry::Telemetry,
) -> DomainRun {
    run_domain_at_batched(
        domain, bound, ont, cache, threshold, members, habits, seed, pool, 1, tele,
    )
}

/// [`run_domain_at_traced`] with an explicit question-batch width for the
/// planner (`batch_width = 1` is the unbatched algorithm and what every
/// other entry point uses; see `MiningConfig::batch_width`).
#[allow(clippy::too_many_arguments)]
pub fn run_domain_at_batched(
    domain: &GeneratedDomain,
    bound: &BoundQuery,
    ont: &Ontology,
    cache: &mut oassis_core::CrowdCache,
    threshold: f64,
    members: usize,
    habits: usize,
    seed: u64,
    pool: minipool::Pool,
    batch_width: usize,
    tele: &telemetry::Telemetry,
) -> DomainRun {
    let base = oassis_ql::evaluate_where_pool(bound, ont, MatchMode::Exact, &pool);
    let mut dag = Dag::new(bound, ont.vocab(), &base);
    let crowd = domain_crowd(domain, ont.vocab(), members, habits, seed);
    let mut caching = oassis_core::CachingCrowd::new(crowd, cache);
    let cfg = MiningConfig {
        threshold: Some(threshold),
        specialization_ratio: 0.12, // the ratio observed in the paper's crowd
        seed,
        pool,
        batch_width,
        telemetry: tele.clone(),
        ..Default::default()
    };
    let out: MultiOutcome = run_multi(&mut dag, &mut caching, &paper_aggregator(), &cfg);
    let baseline_questions = 5 * (out.mining.total_valid + out.mining.valid_mult_nodes);
    DomainRun {
        threshold,
        msps: out.mining.msps.len(),
        valid_msps: out.mining.valid_msps.len(),
        questions: out.mining.questions,
        baseline_questions,
        complete: out.mining.complete,
        undecided: out.undecided,
        question_stats: out.question_stats,
        outcome_events: out.mining.events,
        total_valid: out.mining.total_valid,
        nodes_materialized: out.mining.nodes_materialized,
        admits_calls: out.mining.gen_stats.admits_calls,
        rounds: out.rounds,
    }
}

/// FNV-1a digest of a [`DomainRun`]'s mining outcome — the equivalence
/// currency of the perf harnesses: two runs with equal digests asked the
/// same questions and reached the same conclusions in the same order.
pub fn digest_domain_run(run: &DomainRun) -> u64 {
    fn fnv(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn word(h: &mut u64, v: usize) {
        fnv(h, &(v as u64).to_le_bytes());
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    word(&mut h, run.questions);
    word(&mut h, run.msps);
    word(&mut h, run.valid_msps);
    word(&mut h, run.undecided);
    word(&mut h, run.total_valid);
    word(&mut h, run.nodes_materialized);
    word(&mut h, usize::from(run.complete));
    for e in &run.outcome_events {
        word(&mut h, e.question);
        fnv(&mut h, format!("{:?}", e.kind).as_bytes());
    }
    h
}

/// A *pure* domain crowd for concurrent workloads: same habit profiles as
/// [`domain_crowd`] but with default behaviour (no pruning clicks, no
/// volunteered tips, unbounded sessions) and the rng-free 5-point answer
/// scale. Such members' answers are pure functions of the question, so a
/// shared [`oassis_core::SharedCrowdCache`] can absorb any subset of the
/// questions without altering the remaining answers — the property that
/// makes concurrent multi-query outcomes independent of scheduling.
pub fn pure_domain_crowd<'v>(
    domain: &GeneratedDomain,
    vocab: &'v ontology::Vocabulary,
    members: usize,
    habits: usize,
    seed: u64,
) -> SimulatedCrowd<'v> {
    let profiles = domain_profiles(domain, habits, seed);
    let cfg = PopulationConfig {
        members,
        transactions: (20, 40),
        behavior: MemberBehavior::default(),
        answer_model: AnswerModel::Bucketed5,
        seed,
        ..Default::default()
    };
    let members: Vec<SimulatedMember> = generate(&profiles, &cfg);
    SimulatedCrowd::new(vocab, members)
}

/// Fully materializes a domain DAG without multiplicities (the paper's
/// reported DAG sizes).
pub fn domain_dag_size(domain: &GeneratedDomain, bound: &BoundQuery) -> usize {
    let base = evaluate_where(bound, &domain.ontology, MatchMode::Exact);
    let mut dag = Dag::new(bound, domain.ontology.vocab(), &base).without_multiplicities();
    dag.materialize_all()
}

/// Question counts at the requested percentages of (valid-)MSP discovery,
/// extracted from a run's event stream (`None` when unreached).
pub fn questions_at_percentiles(
    events: &[oassis_core::DiscoveryEvent],
    valid_only: bool,
    percents: &[usize],
) -> Vec<Option<usize>> {
    let msp_questions: Vec<usize> = events
        .iter()
        .filter_map(|e| match e.kind {
            oassis_core::DiscoveryKind::Msp { valid } if valid || !valid_only => Some(e.question),
            _ => None,
        })
        .collect();
    let n = msp_questions.len();
    percents
        .iter()
        .map(|&p| {
            if n == 0 {
                return None;
            }
            let k = (p * n).div_ceil(100).clamp(1, n);
            Some(msp_questions[k - 1])
        })
        .collect()
}

/// Mean over trials of per-percentile question counts, ignoring trials
/// where the percentile was not reached.
pub fn mean_percentiles(per_trial: &[Vec<Option<usize>>]) -> Vec<Option<f64>> {
    if per_trial.is_empty() {
        return Vec::new();
    }
    let cols = per_trial[0].len();
    (0..cols)
        .map(|c| {
            let vals: Vec<f64> = per_trial
                .iter()
                .filter_map(|t| t[c].map(|x| x as f64))
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        })
        .collect()
}

/// Formats an optional float for tables.
pub fn fmt_opt(x: Option<f64>) -> String {
    x.map_or("–".to_owned(), |v| format!("{v:.0}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_core::{DiscoveryEvent, DiscoveryKind};

    #[test]
    fn percentile_extraction() {
        let events: Vec<DiscoveryEvent> = [3usize, 10, 20, 40]
            .iter()
            .map(|&q| DiscoveryEvent {
                question: q,
                kind: DiscoveryKind::Msp { valid: true },
            })
            .collect();
        let got = questions_at_percentiles(&events, true, &[25, 50, 75, 100]);
        assert_eq!(got, vec![Some(3), Some(10), Some(20), Some(40)]);
        assert_eq!(questions_at_percentiles(&[], true, &[50]), vec![None]);
    }

    #[test]
    fn mean_over_trials_skips_unreached() {
        let trials = vec![vec![Some(10), None], vec![Some(20), Some(100)]];
        let m = mean_percentiles(&trials);
        assert_eq!(m, vec![Some(15.0), Some(100.0)]);
    }

    #[test]
    fn domain_profiles_are_deterministic() {
        let d = ontology::domains::travel(ontology::domains::DomainScale::paper());
        let a = domain_profiles(&d, 10, 1);
        let b = domain_profiles(&d, 10, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.facts, y.facts);
        }
    }
}
