//! # crowdrules — association-rule mining from the crowd
//!
//! A complete implementation of the framework of the predecessor paper
//! *"Crowd Mining"* (Amsterdamer, Grossman, Milo, Senellart, SIGMOD 2013),
//! which OASSIS cites as its closest related work (reference \[3\]): mining
//! **association rules** about people's habits from a crowd, where each
//! member's personal transaction database is virtual and can only be
//! probed with questions.
//!
//! Differences from OASSIS (per the OASSIS paper's own comparison):
//! "(i) the approach is not based on an ontology; and (ii) it is not
//! query-based" — the item domain is flat and the system mines *all*
//! significant rules rather than query-selected patterns. The interaction
//! model, however, is richer on the statistical side:
//!
//! * **closed questions** — "when you do A, how often do you also do B?" —
//!   return a member's (noisy) support and confidence for a known rule;
//! * **open questions** — "tell me about things you typically do
//!   together" — return a rule *sampled from the member's behaviour*,
//!   which is how new candidate rules are discovered;
//! * answers are aggregated into **mean estimates with confidence
//!   intervals**, and a rule is classified (in)significant only once the
//!   interval clears the thresholds at the requested error level;
//! * the next question is chosen to maximize information: the
//!   [`Greedy`](miner::QuestionStrategy::Greedy) strategy probes the rule
//!   whose classification is most uncertain.
//!
//! The crate is self-contained (flat item vocabulary, no ontology) and is
//! exercised by the `exp_crowdrules` experiment in the workspace bench
//! harness: precision/recall of the mined rule set against planted ground
//! truth as a function of the number of questions, per strategy.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod estimate;
pub mod miner;
pub mod model;
pub mod simulate;

pub use estimate::{RuleClass, RuleEstimate};
pub use miner::{CrowdMiner, MinerConfig, QuestionStrategy};
pub use model::{AssociationRule, ItemId, Itemset, PersonalDb, Transaction};
pub use simulate::{SimConfig, SimulatedRuleCrowd};
