//! The crowd-mining loop: interleave open questions (discover candidate
//! rules) with closed questions (refine estimates), choosing targets by a
//! configurable strategy.

use crate::estimate::{RuleClass, RuleEstimate};
use crate::model::AssociationRule;
use crate::simulate::SimulatedRuleCrowd;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How the next closed question's target rule is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuestionStrategy {
    /// Uniformly random among unclassified candidates.
    Random,
    /// The rule whose classification is most uncertain (estimate closest
    /// to the decision boundary in standard-error units) — the
    /// information-greedy choice of the SIGMOD'13 framework.
    Greedy,
}

/// Miner configuration.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Support threshold Θ_s.
    pub theta_support: f64,
    /// Confidence threshold Θ_c.
    pub theta_confidence: f64,
    /// z-score for the confidence intervals (1.96 ≈ 95%).
    pub z: f64,
    /// Minimum answers before a rule may be classified.
    pub min_samples: usize,
    /// Probability of asking an *open* question (discovery) instead of a
    /// closed one (refinement).
    pub open_ratio: f64,
    /// Closed-question target strategy.
    pub strategy: QuestionStrategy,
    /// RNG seed (member choice, open/closed coin, random strategy).
    pub seed: u64,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            theta_support: 0.3,
            theta_confidence: 0.6,
            z: 1.96,
            min_samples: 5,
            open_ratio: 0.2,
            strategy: QuestionStrategy::Greedy,
            seed: 0,
        }
    }
}

/// The mining state: candidate rules and their evolving estimates.
#[derive(Debug)]
pub struct CrowdMiner {
    cfg: MinerConfig,
    estimates: HashMap<AssociationRule, RuleEstimate>,
    rng: StdRng,
    questions: usize,
}

impl CrowdMiner {
    /// Creates a miner, optionally seeded with candidate rules (e.g. from
    /// a domain expert); open questions will discover the rest.
    pub fn new(cfg: MinerConfig, seeds: Vec<AssociationRule>) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let estimates = seeds
            .into_iter()
            .map(|r| (r, RuleEstimate::default()))
            .collect();
        CrowdMiner {
            cfg,
            estimates,
            rng,
            questions: 0,
        }
    }

    /// Questions asked so far.
    pub fn questions(&self) -> usize {
        self.questions
    }

    /// Number of candidate rules tracked.
    pub fn candidates(&self) -> usize {
        self.estimates.len()
    }

    /// Current classification of a rule.
    pub fn class_of(&self, r: &AssociationRule) -> RuleClass {
        match self.estimates.get(r) {
            None => RuleClass::Unknown,
            Some(e) => e.classify(
                self.cfg.theta_support,
                self.cfg.theta_confidence,
                self.cfg.z,
                self.cfg.min_samples,
            ),
        }
    }

    /// The rules currently classified significant.
    pub fn significant_rules(&self) -> Vec<AssociationRule> {
        let mut v: Vec<AssociationRule> = self
            .estimates
            .keys()
            .filter(|r| self.class_of(r) == RuleClass::Significant)
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// The unclassified candidates.
    pub fn open_candidates(&self) -> Vec<AssociationRule> {
        let mut v: Vec<AssociationRule> = self
            .estimates
            .keys()
            .filter(|r| self.class_of(r) == RuleClass::Unknown)
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Performs one interaction step with the crowd: pick a member, pick
    /// open vs closed, ask, and fold the answer in. Returns `false` when
    /// there was nothing left to ask (all candidates classified and the
    /// open-question budget is off).
    pub fn step(&mut self, crowd: &mut SimulatedRuleCrowd) -> bool {
        if crowd.is_empty() {
            return false;
        }
        let member = self.rng.gen_range(0..crowd.len());
        let ask_open = self.rng.gen_bool(self.cfg.open_ratio.clamp(0.0, 1.0));
        if ask_open {
            self.questions += 1;
            if let Some((rule, s, c)) = crowd.ask_open(member) {
                self.estimates.entry(rule).or_default().record(s, c);
            }
            return true;
        }
        let target = match self.pick_target() {
            Some(t) => t,
            None => {
                // nothing unclassified: fall back to an open question so
                // discovery can continue
                self.questions += 1;
                if let Some((rule, s, c)) = crowd.ask_open(member) {
                    self.estimates.entry(rule).or_default().record(s, c);
                    return true;
                }
                return false;
            }
        };
        self.questions += 1;
        let (s, c) = crowd.ask_closed(member, &target);
        self.estimates.entry(target).or_default().record(s, c);
        true
    }

    /// Runs `n` steps.
    pub fn run(&mut self, crowd: &mut SimulatedRuleCrowd, n: usize) {
        for _ in 0..n {
            if !self.step(crowd) {
                break;
            }
        }
    }

    fn pick_target(&mut self) -> Option<AssociationRule> {
        let unclassified = self.open_candidates();
        if unclassified.is_empty() {
            return None;
        }
        match self.cfg.strategy {
            QuestionStrategy::Random => {
                Some(unclassified[self.rng.gen_range(0..unclassified.len())].clone())
            }
            QuestionStrategy::Greedy => unclassified.into_iter().min_by(|a, b| {
                let ua = self.estimates[a].estimated_remaining(
                    self.cfg.theta_support,
                    self.cfg.theta_confidence,
                    self.cfg.z,
                );
                let ub = self.estimates[b].estimated_remaining(
                    self.cfg.theta_support,
                    self.cfg.theta_confidence,
                    self.cfg.z,
                );
                ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
            }),
        }
    }

    /// Precision/recall of the current significant set against a
    /// ground-truth list of significant rules.
    pub fn precision_recall(&self, truth: &[AssociationRule]) -> (f64, f64) {
        let found = self.significant_rules();
        if found.is_empty() {
            return (1.0, if truth.is_empty() { 1.0 } else { 0.0 });
        }
        let tp = found.iter().filter(|r| truth.contains(r)).count() as f64;
        let precision = tp / found.len() as f64;
        let recall = if truth.is_empty() {
            1.0
        } else {
            tp / truth.len() as f64
        };
        (precision, recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ItemId, Itemset};
    use crate::simulate::SimConfig;

    fn iset(items: &[u32]) -> Itemset {
        Itemset::new(items.iter().map(|&i| ItemId(i)))
    }

    fn planted_crowd(seed: u64) -> (SimulatedRuleCrowd, Vec<AssociationRule>) {
        let cfg = SimConfig {
            members: 150,
            habits: vec![
                (iset(&[1, 2]), 0.7),
                (iset(&[3, 4]), 0.55),
                (iset(&[5, 6]), 0.05),
            ],
            answer_noise: 0.02,
            seed,
            ..Default::default()
        };
        let crowd = SimulatedRuleCrowd::generate(&cfg);
        let truth = vec![
            AssociationRule::new(iset(&[1]), iset(&[2])).unwrap(),
            AssociationRule::new(iset(&[2]), iset(&[1])).unwrap(),
            AssociationRule::new(iset(&[3]), iset(&[4])).unwrap(),
            AssociationRule::new(iset(&[4]), iset(&[3])).unwrap(),
        ];
        (crowd, truth)
    }

    #[test]
    fn mines_planted_rules_with_high_recall() {
        let (mut crowd, truth) = planted_crowd(42);
        let mut miner = CrowdMiner::new(
            MinerConfig {
                theta_support: 0.35,
                theta_confidence: 0.6,
                ..Default::default()
            },
            vec![],
        );
        miner.run(&mut crowd, 600);
        let (precision, recall) = miner.precision_recall(&truth);
        assert!(recall >= 0.75, "recall {recall}");
        assert!(precision >= 0.5, "precision {precision}");
    }

    #[test]
    fn greedy_is_competitive_with_random_at_fixed_budget() {
        let run = |strategy: QuestionStrategy, seed: u64| -> f64 {
            let (mut crowd, truth) = planted_crowd(7);
            let mut miner = CrowdMiner::new(
                MinerConfig {
                    theta_support: 0.35,
                    theta_confidence: 0.6,
                    strategy,
                    seed,
                    ..Default::default()
                },
                vec![],
            );
            miner.run(&mut crowd, 400);
            miner.precision_recall(&truth).1
        };
        let greedy: f64 = (0..4).map(|s| run(QuestionStrategy::Greedy, s)).sum();
        let random: f64 = (0..4).map(|s| run(QuestionStrategy::Random, s)).sum();
        // greedy spends questions where decisions are cheapest, so at a
        // fixed budget its recall should not lag behind random guessing
        assert!(
            greedy >= random - 0.5,
            "greedy recall {greedy} vs random {random} (summed over seeds)"
        );
        assert!(greedy >= 2.0, "greedy found too little: {greedy}");
    }

    #[test]
    fn seeded_candidates_are_refined_without_open_questions() {
        let (mut crowd, truth) = planted_crowd(11);
        let mut miner = CrowdMiner::new(
            MinerConfig {
                theta_support: 0.35,
                theta_confidence: 0.6,
                open_ratio: 0.0,
                ..Default::default()
            },
            truth.clone(),
        );
        miner.run(&mut crowd, 200);
        let (_, recall) = miner.precision_recall(&truth);
        assert!(recall >= 0.75, "recall {recall}");
    }

    #[test]
    fn pure_open_questions_still_discover() {
        let (mut crowd, _) = planted_crowd(3);
        let mut miner = CrowdMiner::new(
            MinerConfig {
                open_ratio: 1.0,
                ..Default::default()
            },
            vec![],
        );
        miner.run(&mut crowd, 100);
        assert!(miner.candidates() > 0);
        assert_eq!(miner.questions(), 100);
    }

    #[test]
    fn empty_crowd_terminates() {
        let mut crowd = SimulatedRuleCrowd::generate(&SimConfig {
            members: 0,
            ..Default::default()
        });
        let mut miner = CrowdMiner::new(MinerConfig::default(), vec![]);
        assert!(!miner.step(&mut crowd));
    }

    #[test]
    fn precision_recall_edge_cases() {
        let miner = CrowdMiner::new(MinerConfig::default(), vec![]);
        assert_eq!(miner.precision_recall(&[]), (1.0, 1.0));
        let truth = vec![AssociationRule::new(iset(&[1]), iset(&[2])).unwrap()];
        assert_eq!(miner.precision_recall(&truth), (1.0, 0.0));
    }
}
