//! Statistical estimation of rule significance from crowd answers.
//!
//! Answers about a rule are samples of the per-member support and
//! confidence; the population means are estimated by sample means with
//! normal-approximation confidence intervals. A rule is classified
//! **significant** when both lower bounds clear the thresholds, and
//! **insignificant** when either upper bound falls below its threshold —
//! otherwise more answers are needed.

/// Classification of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleClass {
    /// Both thresholds cleared at the requested confidence.
    Significant,
    /// At least one threshold is unreachable at the requested confidence.
    Insignificant,
    /// Not enough evidence yet.
    Unknown,
}

/// Streaming mean/variance (Welford) for one measured quantity.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStat {
    n: usize,
    mean: f64,
    m2: f64,
}

impl RunningStat {
    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Sample mean (0 with no samples).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        (self.m2 / (self.n - 1) as f64).sqrt()
    }

    /// Standard error of the mean. With fewer than 2 samples, falls back
    /// to the worst case for a `[0,1]`-bounded quantity (σ ≤ 1/2).
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            return f64::INFINITY;
        }
        let sd = if self.n < 2 {
            0.5
        } else {
            self.std_dev().max(1e-6)
        };
        sd / (self.n as f64).sqrt()
    }

    /// `mean ± z·SE` clamped to `[0, 1]`.
    pub fn interval(&self, z: f64) -> (f64, f64) {
        if self.n == 0 {
            return (0.0, 1.0);
        }
        let half = z * self.std_err();
        ((self.mean - half).max(0.0), (self.mean + half).min(1.0))
    }
}

/// The evolving estimate for one rule.
#[derive(Debug, Clone, Default)]
pub struct RuleEstimate {
    /// Support samples.
    pub support: RunningStat,
    /// Confidence samples.
    pub confidence: RunningStat,
}

impl RuleEstimate {
    /// Records one member's answer.
    pub fn record(&mut self, support: f64, confidence: f64) {
        self.support.push(support.clamp(0.0, 1.0));
        self.confidence.push(confidence.clamp(0.0, 1.0));
    }

    /// Number of answers recorded.
    pub fn samples(&self) -> usize {
        self.support.count()
    }

    /// Classifies against thresholds at z standard errors (z ≈ 1.96 for
    /// 95%). At least `min_samples` answers are required before deciding.
    pub fn classify(&self, theta_s: f64, theta_c: f64, z: f64, min_samples: usize) -> RuleClass {
        if self.samples() < min_samples {
            return RuleClass::Unknown;
        }
        let (s_lo, s_hi) = self.support.interval(z);
        let (c_lo, c_hi) = self.confidence.interval(z);
        if s_hi < theta_s || c_hi < theta_c {
            return RuleClass::Insignificant;
        }
        if s_lo >= theta_s && c_lo >= theta_c {
            return RuleClass::Significant;
        }
        RuleClass::Unknown
    }

    /// An *uncertainty score* for greedy question selection: how close the
    /// estimate is to the decision boundary, in standard-error units
    /// (smaller = more uncertain). Rules with no samples are maximally
    /// uncertain (score 0).
    pub fn uncertainty_distance(&self, theta_s: f64, theta_c: f64) -> f64 {
        if self.samples() == 0 {
            return 0.0;
        }
        let ds = (self.support.mean() - theta_s).abs() / self.support.std_err();
        let dc = (self.confidence.mean() - theta_c).abs() / self.confidence.std_err();
        ds.min(dc)
    }

    /// Estimated *additional* answers needed before this rule can be
    /// classified: from `z·σ/√n ≤ |mean − θ|` we need
    /// `n ≥ (z·σ/Δ)²`; the score is the optimistic (minimum over the two
    /// measures) remaining count. This is the greedy strategy's target
    /// score: probe the rule that is cheapest to finish, so classified
    /// rules accumulate fastest. Unsampled rules score 0 (nothing is known
    /// about them, and they might resolve immediately).
    pub fn estimated_remaining(&self, theta_s: f64, theta_c: f64, z: f64) -> f64 {
        let n = self.samples() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let need = |st: &RunningStat, theta: f64| -> f64 {
            let delta = (st.mean() - theta).abs().max(1e-3);
            let sigma = st.std_dev().max(0.05);
            ((z * sigma / delta).powi(2) - n).max(0.0)
        };
        need(&self.support, theta_s).min(need(&self.confidence, theta_c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [0.1, 0.4, 0.35, 0.9, 0.0];
        let mut st = RunningStat::default();
        for &x in &xs {
            st.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((st.mean() - mean).abs() < 1e-12);
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((st.std_dev() - var.sqrt()).abs() < 1e-12);
        assert_eq!(st.count(), 5);
    }

    #[test]
    fn interval_tightens_with_samples() {
        let mut st = RunningStat::default();
        st.push(0.5);
        let (lo1, hi1) = st.interval(1.96);
        for _ in 0..50 {
            st.push(0.5);
        }
        let (lo2, hi2) = st.interval(1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
        assert!((st.mean() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classification_requires_evidence() {
        let mut e = RuleEstimate::default();
        assert_eq!(e.classify(0.3, 0.5, 1.96, 3), RuleClass::Unknown);
        // strong consistent evidence for significance
        for _ in 0..20 {
            e.record(0.8, 0.9);
        }
        assert_eq!(e.classify(0.3, 0.5, 1.96, 3), RuleClass::Significant);
    }

    #[test]
    fn insignificance_when_either_threshold_unreachable() {
        let mut e = RuleEstimate::default();
        for _ in 0..20 {
            e.record(0.8, 0.1); // high support, low confidence
        }
        assert_eq!(e.classify(0.3, 0.5, 1.96, 3), RuleClass::Insignificant);
        let mut e2 = RuleEstimate::default();
        for _ in 0..20 {
            e2.record(0.05, 0.9);
        }
        assert_eq!(e2.classify(0.3, 0.5, 1.96, 3), RuleClass::Insignificant);
    }

    #[test]
    fn borderline_stays_unknown() {
        let mut e = RuleEstimate::default();
        // alternate around the threshold — high variance keeps it open
        for i in 0..10 {
            e.record(if i % 2 == 0 { 0.25 } else { 0.35 }, 0.8);
        }
        assert_eq!(e.classify(0.3, 0.5, 1.96, 3), RuleClass::Unknown);
    }

    #[test]
    fn uncertainty_prefers_unsampled_then_borderline() {
        let fresh = RuleEstimate::default();
        assert_eq!(fresh.uncertainty_distance(0.3, 0.5), 0.0);
        let mut clear = RuleEstimate::default();
        let mut borderline = RuleEstimate::default();
        for i in 0..10 {
            clear.record(0.95, 0.95);
            borderline.record(if i % 2 == 0 { 0.28 } else { 0.33 }, 0.8);
        }
        assert!(borderline.uncertainty_distance(0.3, 0.5) < clear.uncertainty_distance(0.3, 0.5));
    }
}
