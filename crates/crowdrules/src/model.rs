//! The flat data model of the SIGMOD'13 framework: items, itemsets,
//! transactions, association rules and (virtual) personal databases.

use std::fmt;

/// An item (an activity, a remedy, a food, …) in the flat vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

/// A canonical (sorted, deduplicated) set of items.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Itemset(Vec<ItemId>);

impl Itemset {
    /// Builds an itemset, canonicalizing.
    pub fn new<I: IntoIterator<Item = ItemId>>(items: I) -> Self {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Itemset(v)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The items, sorted.
    pub fn items(&self) -> &[ItemId] {
        &self.0
    }

    /// Set inclusion.
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        self.0.iter().all(|i| other.0.binary_search(i).is_ok())
    }

    /// Whether `item` is a member.
    pub fn contains(&self, item: ItemId) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// Set union.
    pub fn union(&self, other: &Itemset) -> Itemset {
        Itemset::new(self.0.iter().chain(other.0.iter()).copied())
    }

    /// Whether the two sets share no items.
    pub fn is_disjoint_from(&self, other: &Itemset) -> bool {
        self.0.iter().all(|i| !other.contains(*i))
    }
}

impl fmt::Display for Itemset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}}}",
            self.0
                .iter()
                .map(|i| i.0.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

/// One occasion in a member's history.
pub type Transaction = Itemset;

/// An association rule `A → B` with disjoint, non-empty sides.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AssociationRule {
    /// The antecedent `A`.
    pub lhs: Itemset,
    /// The consequent `B`.
    pub rhs: Itemset,
}

impl AssociationRule {
    /// Builds a rule; returns `None` when a side is empty or the sides
    /// overlap.
    pub fn new(lhs: Itemset, rhs: Itemset) -> Option<Self> {
        if lhs.is_empty() || rhs.is_empty() || !lhs.is_disjoint_from(&rhs) {
            return None;
        }
        Some(AssociationRule { lhs, rhs })
    }

    /// `A ∪ B`.
    pub fn all_items(&self) -> Itemset {
        self.lhs.union(&self.rhs)
    }
}

impl fmt::Display for AssociationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.lhs, self.rhs)
    }
}

/// A member's (virtual) personal database: a bag of transactions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PersonalDb {
    transactions: Vec<Transaction>,
}

impl PersonalDb {
    /// Builds a database.
    pub fn new(transactions: Vec<Transaction>) -> Self {
        PersonalDb { transactions }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// `supp_u(S)`: fraction of transactions containing `S`.
    pub fn itemset_support(&self, s: &Itemset) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        let n = self
            .transactions
            .iter()
            .filter(|t| s.is_subset_of(t))
            .count();
        n as f64 / self.transactions.len() as f64
    }

    /// `supp_u(r) = supp_u(A ∪ B)`.
    pub fn rule_support(&self, r: &AssociationRule) -> f64 {
        self.itemset_support(&r.all_items())
    }

    /// `conf_u(r) = supp_u(A ∪ B) / supp_u(A)` (0 when `supp_u(A) = 0`).
    pub fn rule_confidence(&self, r: &AssociationRule) -> f64 {
        let denom = self.itemset_support(&r.lhs);
        if denom == 0.0 {
            0.0
        } else {
            self.rule_support(r) / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(items: &[u32]) -> Itemset {
        Itemset::new(items.iter().map(|&i| ItemId(i)))
    }

    #[test]
    fn itemset_is_canonical() {
        assert_eq!(iset(&[3, 1, 2, 1]), iset(&[1, 2, 3]));
        assert_eq!(iset(&[3, 1]).len(), 2);
    }

    #[test]
    fn subset_and_disjoint() {
        assert!(iset(&[1, 2]).is_subset_of(&iset(&[1, 2, 3])));
        assert!(!iset(&[1, 4]).is_subset_of(&iset(&[1, 2, 3])));
        assert!(iset(&[1]).is_disjoint_from(&iset(&[2])));
        assert!(!iset(&[1, 2]).is_disjoint_from(&iset(&[2, 3])));
        assert!(iset(&[]).is_subset_of(&iset(&[])));
    }

    #[test]
    fn rule_construction_rules() {
        assert!(AssociationRule::new(iset(&[1]), iset(&[2])).is_some());
        assert!(AssociationRule::new(iset(&[]), iset(&[2])).is_none());
        assert!(AssociationRule::new(iset(&[1]), iset(&[])).is_none());
        assert!(AssociationRule::new(iset(&[1, 2]), iset(&[2, 3])).is_none());
    }

    #[test]
    fn support_and_confidence() {
        // 4 transactions: {1,2}, {1,2,3}, {1}, {3}
        let db = PersonalDb::new(vec![
            iset(&[1, 2]),
            iset(&[1, 2, 3]),
            iset(&[1]),
            iset(&[3]),
        ]);
        let r = AssociationRule::new(iset(&[1]), iset(&[2])).unwrap();
        assert!((db.rule_support(&r) - 0.5).abs() < 1e-12); // {1,2} in 2/4
                                                            // conf = supp({1,2}) / supp({1}) = 0.5 / 0.75 = 2/3
        assert!((db.rule_confidence(&r) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_db_and_zero_antecedent() {
        let db = PersonalDb::default();
        let r = AssociationRule::new(iset(&[1]), iset(&[2])).unwrap();
        assert_eq!(db.rule_support(&r), 0.0);
        assert_eq!(db.rule_confidence(&r), 0.0);
        let db2 = PersonalDb::new(vec![iset(&[3])]);
        assert_eq!(db2.rule_confidence(&r), 0.0); // supp(A)=0 → conf 0
    }

    #[test]
    fn confidence_at_most_one() {
        let db = PersonalDb::new(vec![iset(&[1, 2]), iset(&[1, 2])]);
        let r = AssociationRule::new(iset(&[1]), iset(&[2])).unwrap();
        assert_eq!(db.rule_confidence(&r), 1.0);
    }
}
