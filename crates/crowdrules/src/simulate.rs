//! Synthetic crowd simulation for the rule-mining framework: a global
//! behaviour model, sampled personal databases, and the open/closed
//! question protocol.

use crate::model::{AssociationRule, ItemId, Itemset, PersonalDb, Transaction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic crowd.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of items in the flat vocabulary.
    pub items: usize,
    /// Number of crowd members.
    pub members: usize,
    /// Transactions per member, inclusive range.
    pub transactions: (usize, usize),
    /// Planted habits: `(itemset, population frequency)` — members include
    /// the whole itemset in a transaction with this probability (jittered
    /// per member).
    pub habits: Vec<(Itemset, f64)>,
    /// Relative per-member frequency jitter.
    pub jitter: f64,
    /// Per-transaction probability of one random extra item.
    pub noise: f64,
    /// Additive answer noise half-width (people misreport frequencies).
    pub answer_noise: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            items: 30,
            members: 80,
            transactions: (30, 60),
            habits: Vec::new(),
            jitter: 0.2,
            noise: 0.2,
            answer_noise: 0.05,
            seed: 0,
        }
    }
}

/// A synthetic crowd of members with materialized (ground-truth) personal
/// databases, answering open and closed questions.
#[derive(Debug)]
pub struct SimulatedRuleCrowd {
    dbs: Vec<PersonalDb>,
    answer_noise: f64,
    rng: StdRng,
    questions: usize,
}

impl SimulatedRuleCrowd {
    /// Generates the crowd from a configuration.
    pub fn generate(cfg: &SimConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut dbs = Vec::with_capacity(cfg.members);
        for _ in 0..cfg.members {
            let personal: Vec<(Itemset, f64)> = cfg
                .habits
                .iter()
                .map(|(s, f)| {
                    let jit = 1.0 + rng.gen_range(-cfg.jitter..=cfg.jitter);
                    (s.clone(), (f * jit).clamp(0.0, 1.0))
                })
                .collect();
            let n = rng
                .gen_range(cfg.transactions.0..=cfg.transactions.1)
                .max(1);
            let mut txs: Vec<Transaction> = Vec::with_capacity(n);
            for _ in 0..n {
                let mut items: Vec<ItemId> = Vec::new();
                for (s, f) in &personal {
                    if rng.gen_bool(*f) {
                        items.extend_from_slice(s.items());
                    }
                }
                if cfg.noise > 0.0 && rng.gen_bool(cfg.noise.clamp(0.0, 1.0)) {
                    items.push(ItemId(rng.gen_range(0..cfg.items as u32)));
                }
                txs.push(Itemset::new(items));
            }
            dbs.push(PersonalDb::new(txs));
        }
        SimulatedRuleCrowd {
            dbs,
            answer_noise: cfg.answer_noise,
            rng,
            questions: 0,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.dbs.len()
    }

    /// Whether the crowd is empty.
    pub fn is_empty(&self) -> bool {
        self.dbs.is_empty()
    }

    /// Ground truth: population-average support of a rule.
    pub fn true_support(&self, r: &AssociationRule) -> f64 {
        self.dbs.iter().map(|d| d.rule_support(r)).sum::<f64>() / self.dbs.len() as f64
    }

    /// Ground truth: population-average confidence of a rule.
    pub fn true_confidence(&self, r: &AssociationRule) -> f64 {
        self.dbs.iter().map(|d| d.rule_confidence(r)).sum::<f64>() / self.dbs.len() as f64
    }

    /// Total questions answered.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }

    fn noisy(&mut self, x: f64) -> f64 {
        if self.answer_noise == 0.0 {
            return x;
        }
        let d = self.rng.gen_range(-self.answer_noise..=self.answer_noise);
        (x + d).clamp(0.0, 1.0)
    }

    /// A *closed question* to member `m` about rule `r`: "when you do A,
    /// how often do you also do B?" — returns reported
    /// `(support, confidence)`.
    pub fn ask_closed(&mut self, m: usize, r: &AssociationRule) -> (f64, f64) {
        self.questions += 1;
        let s = self.dbs[m].rule_support(r);
        let c = self.dbs[m].rule_confidence(r);
        (self.noisy(s), self.noisy(c))
    }

    /// An *open question* to member `m`: "tell me about things you
    /// typically do together". The member recalls a transaction (biased
    /// towards their behaviour) and offers a rule from it, along with the
    /// reported support/confidence — the discovery channel for new
    /// candidate rules. Returns `None` when the member has nothing to
    /// tell (all transactions have fewer than 2 items).
    pub fn ask_open(&mut self, m: usize) -> Option<(AssociationRule, f64, f64)> {
        self.questions += 1;
        let db = self.dbs[m].clone();
        let candidates: Vec<&Transaction> =
            db.transactions().iter().filter(|t| t.len() >= 2).collect();
        if candidates.is_empty() {
            return None;
        }
        let t = candidates[self.rng.gen_range(0..candidates.len())];
        // split the recalled transaction into a rule: one random item on
        // the right, the rest (up to 2 items, to keep questions humane) on
        // the left.
        let items = t.items();
        let rhs_idx = self.rng.gen_range(0..items.len());
        let rhs = Itemset::new([items[rhs_idx]]);
        // people most often volunteer simple pairwise habits; sometimes a
        // richer antecedent
        let lhs_take = if self.rng.gen_bool(0.7) { 1 } else { 2 };
        let lhs_items: Vec<ItemId> = items
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != rhs_idx)
            .map(|(_, &x)| x)
            .take(lhs_take)
            .collect();
        let lhs = Itemset::new(lhs_items);
        let rule = AssociationRule::new(lhs, rhs)?;
        let s = db.rule_support(&rule);
        let c = db.rule_confidence(&rule);
        Some((rule, self.noisy(s), self.noisy(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iset(items: &[u32]) -> Itemset {
        Itemset::new(items.iter().map(|&i| ItemId(i)))
    }

    fn cfg() -> SimConfig {
        SimConfig {
            habits: vec![(iset(&[1, 2]), 0.6), (iset(&[3, 4, 5]), 0.3)],
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SimulatedRuleCrowd::generate(&cfg());
        let b = SimulatedRuleCrowd::generate(&cfg());
        assert_eq!(a.dbs, b.dbs);
    }

    #[test]
    fn true_statistics_track_planted_habits() {
        let crowd = SimulatedRuleCrowd::generate(&SimConfig {
            members: 300,
            ..cfg()
        });
        let r = AssociationRule::new(iset(&[1]), iset(&[2])).unwrap();
        let s = crowd.true_support(&r);
        assert!((s - 0.6).abs() < 0.1, "support {s}");
        // confidence is high: 2 almost always accompanies 1
        assert!(crowd.true_confidence(&r) > 0.8);
        // an unplanted rule has low support
        let bogus = AssociationRule::new(iset(&[7]), iset(&[9])).unwrap();
        assert!(crowd.true_support(&bogus) < 0.05);
    }

    #[test]
    fn closed_answers_approximate_truth() {
        let mut crowd = SimulatedRuleCrowd::generate(&cfg());
        let r = AssociationRule::new(iset(&[1]), iset(&[2])).unwrap();
        let (s, c) = crowd.ask_closed(0, &r);
        assert!((0.0..=1.0).contains(&s));
        assert!((0.0..=1.0).contains(&c));
        assert_eq!(crowd.questions_asked(), 1);
    }

    #[test]
    fn open_answers_return_behavioural_rules() {
        let mut crowd = SimulatedRuleCrowd::generate(&cfg());
        let mut found_planted = false;
        for m in 0..crowd.len() {
            if let Some((rule, s, _)) = crowd.ask_open(m) {
                assert!(!rule.lhs.is_empty() && !rule.rhs.is_empty());
                assert!((0.0..=1.0).contains(&s));
                let all = rule.all_items();
                if all.is_subset_of(&iset(&[1, 2])) {
                    found_planted = true;
                }
            }
        }
        assert!(
            found_planted,
            "open questions never surfaced the planted habit"
        );
    }

    #[test]
    fn member_with_singleton_transactions_has_nothing_to_tell() {
        let mut crowd = SimulatedRuleCrowd {
            dbs: vec![PersonalDb::new(vec![iset(&[1]), iset(&[2])])],
            answer_noise: 0.0,
            rng: StdRng::seed_from_u64(0),
            questions: 0,
        };
        assert!(crowd.ask_open(0).is_none());
    }
}
