//! Property tests for the rule-significance estimator
//! (`crowdrules::estimate`): interval sanity, sample-count monotonicity,
//! and empirical coverage of the configured confidence level.

use crowdrules::estimate::{RuleClass, RuleEstimate, RunningStat};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn stat_of(samples: &[f64]) -> RunningStat {
    let mut st = RunningStat::default();
    for &x in samples {
        st.push(x.clamp(0.0, 1.0));
    }
    st
}

proptest! {
    /// `interval` is always an ordered pair bracketing the mean, inside
    /// `[0, 1]`.
    #[test]
    fn interval_bounds_are_ordered(
        samples in prop::collection::vec(0.0f64..=1.0, 1..40),
        z in 0.0f64..4.0,
    ) {
        let st = stat_of(&samples);
        let (lo, hi) = st.interval(z);
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= st.mean() + 1e-12);
        prop_assert!(st.mean() <= hi + 1e-12);
    }

    /// More evidence never widens the interval: replicating the whole
    /// sample set keeps the mean and shrinks (or keeps) the half-width,
    /// and appending a sample at the current mean does the same.
    #[test]
    fn interval_is_monotone_in_sample_count(
        samples in prop::collection::vec(0.0f64..=1.0, 2..30),
        reps in 2usize..5,
    ) {
        let st = stat_of(&samples);
        let (lo, hi) = st.interval(1.96);

        let mut replicated = Vec::new();
        for _ in 0..reps {
            replicated.extend_from_slice(&samples);
        }
        let st_rep = stat_of(&replicated);
        let (lo_r, hi_r) = st_rep.interval(1.96);
        prop_assert!((st_rep.mean() - st.mean()).abs() < 1e-9);
        prop_assert!(hi_r - lo_r <= (hi - lo) + 1e-9,
            "replicating samples widened the interval: {:?} -> {:?}",
            (lo, hi), (lo_r, hi_r));

        let mut st_more = st;
        st_more.push(st.mean());
        let (lo_m, hi_m) = st_more.interval(1.96);
        prop_assert!(hi_m - lo_m <= (hi - lo) + 1e-9,
            "a mean-valued sample widened the interval");
    }

    /// The classifier never contradicts overwhelming one-sided evidence,
    /// and `Unknown` is the only possible verdict below `min_samples`.
    #[test]
    fn classify_respects_min_samples_and_clear_evidence(
        n in 1usize..60,
        min_samples in 1usize..20,
    ) {
        let mut e = RuleEstimate::default();
        for _ in 0..n {
            e.record(0.95, 0.05);
        }
        let class = e.classify(0.5, 0.5, 1.96, min_samples);
        if n < min_samples {
            prop_assert_eq!(class, RuleClass::Unknown);
        } else {
            // confidence evidence (0.05 ≪ 0.5) is decisively negative
            prop_assert_eq!(class, RuleClass::Insignificant);
        }
    }
}

/// Empirical coverage: on synthetic Bernoulli-mixture data with a known
/// population mean, the 95% interval contains the true mean at well
/// above the worst-case rate the normal approximation admits. The RNG is
/// fixed-seeded, so the observed rate is exact and stable.
#[test]
fn interval_covers_the_true_mean_at_the_configured_rate() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let trials = 400;
    let n = 60;
    let mut covered = 0;
    for _ in 0..trials {
        let p: f64 = rng.gen_range(0.2..0.8);
        let mut st = RunningStat::default();
        for _ in 0..n {
            // a Bernoulli habit blurred by reporting noise, like the
            // bucketed answer models upstream
            let x = if rng.gen_bool(p) { 1.0 } else { 0.0 };
            let noise: f64 = rng.gen_range(-0.05..0.05);
            st.push((x + noise).clamp(0.0, 1.0));
        }
        let (lo, hi) = st.interval(1.96);
        if (lo..=hi).contains(&p) {
            covered += 1;
        }
    }
    let rate = f64::from(covered) / f64::from(trials);
    assert!(
        rate >= 0.85,
        "95% interval covered the true mean in only {rate:.3} of trials"
    );
    assert!(
        rate <= 1.0 - f64::EPSILON || covered == trials,
        "sanity: rate in [0,1]"
    );
}
