//! # The wire contract
//!
//! Line-delimited JSON over TCP: every frame is one [`ontology::json`]
//! object on one line, tagged by a `"type"` field. The first exchange
//! is a versioned hello: the client announces the highest protocol
//! version it speaks, the server replies with
//! `min(client proto, PROTO_VERSION)` (or an `error` frame when the
//! client is older than [`PROTO_MIN`]), and that negotiated version
//! governs the connection.
//!
//! Decoding is **unknown-field tolerant** in both directions: lookups
//! go through [`Json::field`], which ignores extra fields, so a newer
//! peer can add fields without breaking an older one — the
//! `proto_version` golden test pins this. Unknown frame *types* are an
//! error (a field can be skipped; a whole frame cannot).
//!
//! Both directions are encodable and decodable from here: the server
//! parses [`Request`]s and renders [`Response`]s; test clients (simtest,
//! the CI smoke driver) do the reverse with the same code.

use crate::session::{OpenReply, QueryReply, RecoveredQuery, SessionSpec};
use crate::wal::QuerySpec;
use ontology::json::{Json, JsonError};

/// The highest protocol version this build speaks.
pub const PROTO_VERSION: u32 = 1;

/// The oldest client protocol version this build still accepts.
pub const PROTO_MIN: u32 = 1;

/// A client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation; must be the first frame.
    Hello {
        /// Highest protocol version the client speaks.
        proto: u32,
        /// Client identification (free-form, diagnostics only).
        client: String,
    },
    /// Opens (or resumes) a session.
    Open(SessionSpec),
    /// Runs one pattern query in a session.
    Query {
        /// Target session.
        session: String,
        /// The query spec (source plus mining knobs).
        spec: QuerySpec,
    },
    /// Replays and verifies every query of a session from its WAL.
    Recover {
        /// Target session.
        session: String,
    },
    /// Pages a session out (durable state remains).
    Close {
        /// Target session.
        session: String,
    },
    /// Ends the connection.
    Bye,
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Hello`]: the negotiated version.
    HelloAck {
        /// `min(client proto, PROTO_VERSION)`.
        proto: u32,
        /// Server identification.
        server: String,
    },
    /// Reply to [`Request::Open`].
    Opened {
        /// The session name.
        session: String,
        /// Whether durable state was paged in.
        resumed: bool,
        /// Registered qids found in the WAL.
        queries: Vec<u32>,
        /// Cached answers paged in.
        cached: u32,
    },
    /// Reply to [`Request::Query`].
    Result {
        /// The session name.
        session: String,
        /// The executed query's reply.
        reply: QueryReply,
    },
    /// Reply to [`Request::Recover`].
    Recovered {
        /// The session name.
        session: String,
        /// Per-query replay outcomes, in qid order.
        queries: Vec<RecoveredQuery>,
    },
    /// Reply to [`Request::Close`].
    Closed {
        /// The session name.
        session: String,
    },
    /// Any failure. The connection survives errors (except a failed
    /// hello, after which the server hangs up).
    Error {
        /// Stable machine-readable code (`unsupported_proto`,
        /// `bad_frame`, `engine`, `wal`, `protocol`, `unknown_session`).
        code: String,
        /// Human-readable detail.
        msg: String,
    },
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Looks up an *optional* field: absent or `null` both mean `None`
/// ([`Json::field`] errors on absence, which is right for required
/// fields and wrong for optional ones).
fn opt_field<'j>(j: &'j Json, name: &str) -> Option<&'j Json> {
    match j.field(name) {
        Ok(Json::Null) | Err(_) => None,
        Ok(v) => Some(v),
    }
}

fn frame_type(j: &Json) -> Result<&str, JsonError> {
    j.field("type")?.as_str()
}

impl Request {
    /// Renders the frame (one line, no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Hello { proto, client } => obj(vec![
                ("type", Json::Str("hello".into())),
                ("proto", Json::Num(*proto as f64)),
                ("client", Json::Str(client.clone())),
            ]),
            Request::Open(spec) => obj(vec![
                ("type", Json::Str("open".into())),
                ("session", Json::Str(spec.name.clone())),
                ("seed", Json::Num(spec.seed as f64)),
                ("members", Json::Num(spec.members as f64)),
            ]),
            Request::Query { session, spec } => obj(vec![
                ("type", Json::Str("query".into())),
                ("session", Json::Str(session.clone())),
                ("src", Json::Str(spec.src.clone())),
                ("threshold", spec.threshold.map_or(Json::Null, Json::Num)),
                ("batch_width", Json::Num(spec.batch_width as f64)),
                (
                    "max_questions",
                    spec.max_questions
                        .map_or(Json::Null, |m| Json::Num(m as f64)),
                ),
                ("seed", Json::Num(spec.seed as f64)),
            ]),
            Request::Recover { session } => obj(vec![
                ("type", Json::Str("recover".into())),
                ("session", Json::Str(session.clone())),
            ]),
            Request::Close { session } => obj(vec![
                ("type", Json::Str("close".into())),
                ("session", Json::Str(session.clone())),
            ]),
            Request::Bye => obj(vec![("type", Json::Str("bye".into()))]),
        }
    }

    /// Parses a frame. Unknown fields are ignored; optional query knobs
    /// default exactly as `MiningConfig::default()` does.
    pub fn from_json(j: &Json) -> Result<Request, JsonError> {
        match frame_type(j)? {
            "hello" => Ok(Request::Hello {
                proto: j.field("proto")?.as_u32()?,
                client: opt_field(j, "client")
                    .map(|c| c.as_str().map(String::from))
                    .transpose()?
                    .unwrap_or_default(),
            }),
            "open" => Ok(Request::Open(SessionSpec {
                name: j.field("session")?.as_str()?.to_string(),
                seed: opt_field(j, "seed")
                    .map(Json::as_f64)
                    .transpose()?
                    .unwrap_or(0.0) as u64,
                members: opt_field(j, "members")
                    .map(Json::as_u32)
                    .transpose()?
                    .unwrap_or(0),
            })),
            "query" => Ok(Request::Query {
                session: j.field("session")?.as_str()?.to_string(),
                spec: QuerySpec {
                    src: j.field("src")?.as_str()?.to_string(),
                    threshold: opt_field(j, "threshold").map(Json::as_f64).transpose()?,
                    batch_width: opt_field(j, "batch_width")
                        .map(Json::as_u32)
                        .transpose()?
                        .unwrap_or(1),
                    max_questions: opt_field(j, "max_questions")
                        .map(Json::as_u32)
                        .transpose()?,
                    seed: opt_field(j, "seed")
                        .map(Json::as_f64)
                        .transpose()?
                        .unwrap_or(0.0) as u64,
                },
            }),
            "recover" => Ok(Request::Recover {
                session: j.field("session")?.as_str()?.to_string(),
            }),
            "close" => Ok(Request::Close {
                session: j.field("session")?.as_str()?.to_string(),
            }),
            "bye" => Ok(Request::Bye),
            other => Err(JsonError::shape(format!("unknown request type {other:?}"))),
        }
    }
}

fn recovered_to_json(q: &RecoveredQuery) -> Json {
    obj(vec![
        ("qid", Json::Num(q.qid as f64)),
        (
            "answers",
            Json::Arr(q.answers.iter().map(|a| Json::Str(a.clone())).collect()),
        ),
        ("complete", Json::Bool(q.complete)),
        ("digest", Json::Str(q.digest.clone())),
        (
            "recorded_digest",
            q.recorded_digest
                .as_ref()
                .map_or(Json::Null, |d| Json::Str(d.clone())),
        ),
        ("verified", q.verified.map_or(Json::Null, Json::Bool)),
        ("ops", Json::Num(q.ops as f64)),
        ("src", Json::Str(q.spec.src.clone())),
    ])
}

fn recovered_from_json(j: &Json) -> Result<RecoveredQuery, JsonError> {
    Ok(RecoveredQuery {
        qid: j.field("qid")?.as_u32()?,
        spec: QuerySpec {
            src: j.field("src")?.as_str()?.to_string(),
            threshold: None,
            batch_width: 1,
            max_questions: None,
            seed: 0,
        },
        answers: j
            .field("answers")?
            .as_arr()?
            .iter()
            .map(|a| a.as_str().map(String::from))
            .collect::<Result<_, _>>()?,
        complete: matches!(j.field("complete")?, Json::Bool(true)),
        digest: j.field("digest")?.as_str()?.to_string(),
        recorded_digest: opt_field(j, "recorded_digest")
            .map(|d| d.as_str().map(String::from))
            .transpose()?,
        verified: match opt_field(j, "verified") {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        },
        ops: j.field("ops")?.as_u32()? as usize,
    })
}

impl Response {
    /// Renders the frame (one line, no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Response::HelloAck { proto, server } => obj(vec![
                ("type", Json::Str("hello_ack".into())),
                ("proto", Json::Num(*proto as f64)),
                ("server", Json::Str(server.clone())),
            ]),
            Response::Opened {
                session,
                resumed,
                queries,
                cached,
            } => obj(vec![
                ("type", Json::Str("opened".into())),
                ("session", Json::Str(session.clone())),
                ("resumed", Json::Bool(*resumed)),
                (
                    "queries",
                    Json::Arr(queries.iter().map(|&q| Json::Num(q as f64)).collect()),
                ),
                ("cached", Json::Num(*cached as f64)),
            ]),
            Response::Result { session, reply } => obj(vec![
                ("type", Json::Str("result".into())),
                ("session", Json::Str(session.clone())),
                ("qid", Json::Num(reply.qid as f64)),
                (
                    "answers",
                    Json::Arr(reply.answers.iter().map(|a| Json::Str(a.clone())).collect()),
                ),
                ("questions", Json::Num(reply.questions as f64)),
                ("fresh", Json::Num(reply.fresh as f64)),
                ("complete", Json::Bool(reply.complete)),
                ("digest", Json::Str(reply.digest.clone())),
                ("threshold", Json::Num(reply.threshold)),
            ]),
            Response::Recovered { session, queries } => obj(vec![
                ("type", Json::Str("recovered".into())),
                ("session", Json::Str(session.clone())),
                (
                    "queries",
                    Json::Arr(queries.iter().map(recovered_to_json).collect()),
                ),
            ]),
            Response::Closed { session } => obj(vec![
                ("type", Json::Str("closed".into())),
                ("session", Json::Str(session.clone())),
            ]),
            Response::Error { code, msg } => obj(vec![
                ("type", Json::Str("error".into())),
                ("code", Json::Str(code.clone())),
                ("msg", Json::Str(msg.clone())),
            ]),
        }
    }

    /// Parses a frame (the client side; unknown fields ignored).
    pub fn from_json(j: &Json) -> Result<Response, JsonError> {
        match frame_type(j)? {
            "hello_ack" => Ok(Response::HelloAck {
                proto: j.field("proto")?.as_u32()?,
                server: j.field("server")?.as_str()?.to_string(),
            }),
            "opened" => Ok(Response::Opened {
                session: j.field("session")?.as_str()?.to_string(),
                resumed: matches!(j.field("resumed")?, Json::Bool(true)),
                queries: j
                    .field("queries")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_u32)
                    .collect::<Result<_, _>>()?,
                cached: j.field("cached")?.as_u32()?,
            }),
            "result" => Ok(Response::Result {
                session: j.field("session")?.as_str()?.to_string(),
                reply: QueryReply {
                    qid: j.field("qid")?.as_u32()?,
                    answers: j
                        .field("answers")?
                        .as_arr()?
                        .iter()
                        .map(|a| a.as_str().map(String::from))
                        .collect::<Result<_, _>>()?,
                    questions: j.field("questions")?.as_u32()? as usize,
                    fresh: j.field("fresh")?.as_u32()? as usize,
                    complete: matches!(j.field("complete")?, Json::Bool(true)),
                    digest: j.field("digest")?.as_str()?.to_string(),
                    threshold: j.field("threshold")?.as_f64()?,
                },
            }),
            "recovered" => Ok(Response::Recovered {
                session: j.field("session")?.as_str()?.to_string(),
                queries: j
                    .field("queries")?
                    .as_arr()?
                    .iter()
                    .map(recovered_from_json)
                    .collect::<Result<_, _>>()?,
            }),
            "closed" => Ok(Response::Closed {
                session: j.field("session")?.as_str()?.to_string(),
            }),
            "error" => Ok(Response::Error {
                code: j.field("code")?.as_str()?.to_string(),
                msg: j.field("msg")?.as_str()?.to_string(),
            }),
            other => Err(JsonError::shape(format!("unknown response type {other:?}"))),
        }
    }

    /// The `opened` frame for an [`OpenReply`].
    pub fn opened(session: &str, reply: &OpenReply) -> Response {
        Response::Opened {
            session: session.to_string(),
            resumed: reply.resumed,
            queries: reply.known_queries.clone(),
            cached: reply.cached_answers as u32,
        }
    }
}

/// Negotiates the connection version for a client hello: `Ok` with the
/// agreed version, or `Err` with the error frame to send before hanging
/// up.
pub fn negotiate(client_proto: u32) -> Result<u32, Response> {
    if client_proto < PROTO_MIN {
        return Err(Response::Error {
            code: "unsupported_proto".into(),
            msg: format!(
                "client speaks protocol {client_proto}, server requires at least {PROTO_MIN}"
            ),
        });
    }
    Ok(client_proto.min(PROTO_VERSION))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::json;

    fn rq_roundtrip(r: &Request) {
        let line = r.to_json().to_string();
        let back = Request::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(&back, r, "{line}");
    }

    fn rs_roundtrip(r: &Response) {
        let line = r.to_json().to_string();
        let back = Response::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(&back, r, "{line}");
    }

    #[test]
    fn every_request_roundtrips() {
        rq_roundtrip(&Request::Hello {
            proto: 1,
            client: "test".into(),
        });
        rq_roundtrip(&Request::Open(SessionSpec {
            name: "s1".into(),
            seed: 7,
            members: 4,
        }));
        rq_roundtrip(&Request::Query {
            session: "s1".into(),
            spec: QuerySpec {
                src: "SELECT …".into(),
                threshold: Some(0.4),
                batch_width: 2,
                max_questions: Some(64),
                seed: 11,
            },
        });
        rq_roundtrip(&Request::Query {
            session: "s1".into(),
            spec: QuerySpec {
                src: "SELECT …".into(),
                threshold: None,
                batch_width: 1,
                max_questions: None,
                seed: 0,
            },
        });
        rq_roundtrip(&Request::Recover {
            session: "s1".into(),
        });
        rq_roundtrip(&Request::Close {
            session: "s1".into(),
        });
        rq_roundtrip(&Request::Bye);
    }

    #[test]
    fn every_response_roundtrips() {
        rs_roundtrip(&Response::HelloAck {
            proto: 1,
            server: "oassis".into(),
        });
        rs_roundtrip(&Response::Opened {
            session: "s1".into(),
            resumed: true,
            queries: vec![1, 2],
            cached: 17,
        });
        rs_roundtrip(&Response::Result {
            session: "s1".into(),
            reply: QueryReply {
                qid: 1,
                answers: vec!["a".into()],
                questions: 30,
                fresh: 12,
                complete: true,
                digest: "00ff00ff00ff00ff".into(),
                threshold: 1.0 / 3.0,
            },
        });
        rs_roundtrip(&Response::Closed {
            session: "s1".into(),
        });
        rs_roundtrip(&Response::Error {
            code: "bad_frame".into(),
            msg: "nope".into(),
        });
    }

    #[test]
    fn negotiation_picks_the_minimum() {
        assert_eq!(negotiate(1), Ok(1));
        assert_eq!(negotiate(99), Ok(PROTO_VERSION));
        assert!(negotiate(0).is_err());
    }

    /// The `proto_version` golden: a frame from a *future* protocol —
    /// extra fields everywhere — still decodes, and the hello still
    /// negotiates down to what this build speaks. Field additions never
    /// break an old peer; only new frame types do.
    #[test]
    fn future_frames_with_unknown_fields_decode() {
        let hello = "{\"type\":\"hello\",\"proto\":7,\"client\":\"v7\",\
                     \"compression\":\"zstd\",\"features\":[\"streaming\"]}";
        let req = Request::from_json(&json::parse(hello).unwrap()).unwrap();
        assert_eq!(
            req,
            Request::Hello {
                proto: 7,
                client: "v7".into()
            }
        );
        let Request::Hello { proto, .. } = req else {
            unreachable!()
        };
        assert_eq!(negotiate(proto), Ok(PROTO_VERSION));

        let query = "{\"type\":\"query\",\"session\":\"s\",\"src\":\"Q\",\
                     \"priority\":\"high\",\"batch_width\":3}";
        let req = Request::from_json(&json::parse(query).unwrap()).unwrap();
        let Request::Query { spec, .. } = req else {
            panic!("expected a query frame")
        };
        assert_eq!(spec.batch_width, 3);
        assert_eq!(spec.threshold, None, "absent optional stays default");

        let ack = "{\"type\":\"hello_ack\",\"proto\":1,\"server\":\"s\",\
                   \"motd\":\"welcome\"}";
        let resp = Response::from_json(&json::parse(ack).unwrap()).unwrap();
        assert_eq!(
            resp,
            Response::HelloAck {
                proto: 1,
                server: "s".into()
            }
        );
    }
}
