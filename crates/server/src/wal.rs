//! # The WAL-backed embedded store
//!
//! One directory per session. The paper's prototype kept each member's
//! "virtual personal database" in MySQL; here every member gets an
//! **append-only answer-op log** in wire form (`member-<id>.wal`) plus a
//! periodic **snapshot** (`member-<id>.snap`), and the session's query
//! registry lives in `meta.wal`. Everything is line-delimited JSON over
//! [`ontology::json`], one record per line, each line guarded by an
//! FNV-1a crc of its payload:
//!
//! ```text
//! {"crc":"<16 hex>","rec":{"kind":"op","qid":3,"op":{…wire op…}}}
//! ```
//!
//! ## Record kinds
//!
//! * `meta.wal` — `session` (name + protocol version, first record),
//!   `query` (qid + the request spec), `done` (qid + completion flag,
//!   resolved threshold, and the recorded `SemanticOutcome` digest).
//! * `member-<id>.wal` — `op` (qid + one [`WireOp`] of that member) and
//!   `answer` (one cached `(pattern, answer)` entry of that member's
//!   personal database).
//! * `member-<id>.snap` — a single `snap` record folding every op and
//!   answer compacted so far.
//!
//! ## Why per-member logs merge safely
//!
//! A member's ops are appended in recording order, so each file always
//! holds a contiguous *prefix* of that member's subsequence of the
//! run's log — the same per-node prefix property the cluster's
//! coordinator relies on. Recovery takes the union of member prefixes
//! and replays it under the canonical `(tick, member, seq)` order with
//! `OpLog::replay_merged`, whose entailment filter absorbs MSP claims
//! whose cross-member evidence was cut by a crash.
//!
//! ## Torn tails
//!
//! A crash can cut the last line short (or corrupt it). Recovery stops
//! at the first line that fails to parse or fails its crc, truncates
//! the file back to the last complete record, and carries on — never a
//! panic, never a lost *complete* record.
//!
//! ## Compaction invariant
//!
//! `compact` folds a member's WAL into its snapshot and truncates the
//! WAL; recovery over `snapshot + WAL tail` reconstructs exactly the
//! state recovery over the uncompacted stream would have — checked by
//! the snapshot-vs-no-snapshot digests of the crash-recovery suite.

use crowd::MemberId;
use oassis_core::cache::{entry_from_json, entry_to_json, CachedAnswer};
use oassis_core::oplog::{AnswerOp, OpTap};
use oassis_core::{op_to_wire, wire_from_json, wire_to_json, CrowdCache, Dag, WireOp};
use ontology::json::{self, Json, JsonError};
use ontology::{PatternSet, Vocabulary};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use telemetry::lockorder::TrackedMutex;

/// FNV-1a over `bytes` — the same fold `SemanticOutcome::digest` uses,
/// here guarding WAL lines against torn or bit-rotted tails.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The process-death model for the simtest kill-at-tick fault class.
///
/// Armed with a tick `T`, the switch trips on the first durability
/// attempt stamped `tick >= T`; from that moment **every** append is
/// dropped — exactly the durable state of a process killed at tick `T`:
/// whatever was flushed before is on disk, nothing after ever is.
/// The live server runs with a disarmed switch, which never trips.
#[derive(Clone, Debug, Default)]
pub struct KillSwitch {
    /// `(arm tick, killed flag)` — `arm == 0` means disarmed.
    state: Arc<(AtomicU32, AtomicU64)>,
}

impl KillSwitch {
    /// A disarmed switch (the live server's).
    pub fn new() -> KillSwitch {
        KillSwitch::default()
    }

    /// Arms the switch: the first append stamped `tick >= at` (1-based
    /// engine ticks) trips it.
    pub fn arm(&self, at: u32) {
        self.state.0.store(at, Ordering::SeqCst);
    }

    /// Whether the process model has died.
    pub fn killed(&self) -> bool {
        self.state.1.load(Ordering::SeqCst) != 0
    }

    /// Records a durability attempt stamped `tick`; returns `true` if
    /// the process is still alive (the append may proceed).
    pub fn admit(&self, tick: Option<u32>) -> bool {
        if self.killed() {
            return false;
        }
        let arm = self.state.0.load(Ordering::SeqCst);
        if arm != 0 {
            if let Some(t) = tick {
                if t >= arm {
                    self.state.1.store(1, Ordering::SeqCst);
                    return false;
                }
            }
        }
        true
    }
}

/// A parsed request spec as the `query` meta record carries it.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The OASSIS-QL source.
    pub src: String,
    /// Threshold override (`None` = the query's `WITH SUPPORT`).
    pub threshold: Option<f64>,
    /// Question-batch width.
    pub batch_width: u32,
    /// Question budget.
    pub max_questions: Option<u32>,
    /// Mining seed.
    pub seed: u64,
}

/// The `done` footer of a completed query.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneMeta {
    /// Whether the run classified everything.
    pub complete: bool,
    /// The recorded `SemanticOutcome` digest (16 hex digits).
    pub digest: String,
    /// The resolved support threshold the run mined under.
    pub threshold: f64,
}

/// One query of the session registry, recovered from `meta.wal`.
#[derive(Debug, Clone)]
pub struct QueryMeta {
    /// Session-scoped query id (1-based, in issue order).
    pub qid: u32,
    /// The request spec.
    pub spec: QuerySpec,
    /// The completion footer — `None` for a query cut down mid-run.
    pub done: Option<DoneMeta>,
}

/// Everything a session directory reconstructs to.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Session name from the header record, if one was durably written.
    pub session: Option<String>,
    /// Protocol version of the header record.
    pub proto: u32,
    /// Crowd seed from the header record.
    pub seed: u64,
    /// Crowd size from the header record.
    pub members: u32,
    /// The query registry, in qid order.
    pub queries: Vec<QueryMeta>,
    /// Per-query merged member ops (each member's contiguous durable
    /// prefix, deduplicated by `(member, tick, seq)`).
    pub ops: BTreeMap<u32, Vec<WireOp>>,
    /// The union of the per-member answer databases.
    pub cache: CrowdCache,
    /// Whether any torn tail was truncated during recovery.
    pub truncated: bool,
}

/// The append side of one session's directory.
#[derive(Debug)]
pub struct SessionWal {
    dir: PathBuf,
    /// Member-WAL records between snapshot compactions; `0` disables
    /// compaction.
    snapshot_every: u32,
    /// Live record count per member WAL since its last compaction.
    wal_records: BTreeMap<u32, u32>,
    kill: KillSwitch,
}

impl SessionWal {
    /// Opens (creating if needed) the WAL directory of one session.
    pub fn open(dir: impl Into<PathBuf>, snapshot_every: u32) -> io::Result<SessionWal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut wal = SessionWal {
            dir,
            snapshot_every,
            wal_records: BTreeMap::new(),
            kill: KillSwitch::new(),
        };
        // count live WAL records so compaction cadence survives restarts
        for (member, path) in wal.member_wals()? {
            let (records, _) = read_records(&path)?;
            wal.wal_records.insert(member, records.len() as u32);
        }
        Ok(wal)
    }

    /// Installs a kill switch (simtest's process-death model). The
    /// default switch is disarmed and never drops anything.
    pub fn with_kill(mut self, kill: KillSwitch) -> SessionWal {
        self.kill = kill;
        self
    }

    /// The directory this WAL writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join("meta.wal")
    }

    fn wal_path(&self, member: u32) -> PathBuf {
        self.dir.join(format!("member-{member}.wal"))
    }

    fn snap_path(&self, member: u32) -> PathBuf {
        self.dir.join(format!("member-{member}.snap"))
    }

    /// The member ids with a WAL file on disk.
    fn member_wals(&self) -> io::Result<Vec<(u32, PathBuf)>> {
        let mut out = Vec::new();
        if !self.dir.exists() {
            return Ok(out);
        }
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("member-")
                .and_then(|s| s.strip_suffix(".wal"))
            {
                if let Ok(id) = id.parse::<u32>() {
                    out.push((id, entry.path()));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// The member ids with any durable state (snapshot or WAL).
    fn member_ids(&self) -> io::Result<Vec<u32>> {
        let mut ids: Vec<u32> = Vec::new();
        if !self.dir.exists() {
            return Ok(ids);
        }
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("member-") {
                let id = rest
                    .strip_suffix(".wal")
                    .or_else(|| rest.strip_suffix(".snap"));
                if let Some(Ok(id)) = id.map(|s| s.parse::<u32>()) {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    /// Writes the session header (first record of a fresh `meta.wal`).
    /// The crowd spec (seed, member count) is part of the header: paging
    /// a session in must rebuild the *same* deterministic crowd, so the
    /// durable header — not whatever a later `open` frame claims — is
    /// the source of truth.
    pub fn record_session(
        &mut self,
        name: &str,
        proto: u32,
        seed: u64,
        members: u32,
    ) -> io::Result<()> {
        let rec = Json::Obj(vec![
            ("kind".into(), Json::Str("session".into())),
            ("name".into(), Json::Str(name.into())),
            ("proto".into(), Json::Num(proto as f64)),
            ("seed".into(), Json::Num(seed as f64)),
            ("members".into(), Json::Num(members as f64)),
        ]);
        self.append_line(&self.meta_path(), &rec)
    }

    /// Registers a query before it runs (so a crash mid-run still knows
    /// what was running and how to rebuild its DAG).
    pub fn record_query(&mut self, qid: u32, spec: &QuerySpec) -> io::Result<()> {
        if !self.kill.admit(None) {
            return Ok(());
        }
        let rec = Json::Obj(vec![
            ("kind".into(), Json::Str("query".into())),
            ("qid".into(), Json::Num(qid as f64)),
            ("src".into(), Json::Str(spec.src.clone())),
            (
                "threshold".into(),
                spec.threshold.map_or(Json::Null, Json::Num),
            ),
            ("batch_width".into(), Json::Num(spec.batch_width as f64)),
            (
                "max_questions".into(),
                spec.max_questions
                    .map_or(Json::Null, |m| Json::Num(m as f64)),
            ),
            ("seed".into(), Json::Num(spec.seed as f64)),
        ]);
        self.append_line(&self.meta_path(), &rec)
    }

    /// Records a query's completion footer: the resolved threshold and
    /// the `SemanticOutcome` digest recovery must reproduce.
    pub fn record_done(&mut self, qid: u32, done: &DoneMeta) -> io::Result<()> {
        if !self.kill.admit(None) {
            return Ok(());
        }
        let rec = Json::Obj(vec![
            ("kind".into(), Json::Str("done".into())),
            ("qid".into(), Json::Num(qid as f64)),
            ("complete".into(), Json::Bool(done.complete)),
            ("digest".into(), Json::Str(done.digest.clone())),
            ("threshold".into(), Json::Num(done.threshold)),
        ]);
        self.append_line(&self.meta_path(), &rec)
    }

    /// Appends one wire op to its member's log. Returns `false` when the
    /// kill switch dropped it (the process model is dead).
    pub fn append_op(&mut self, qid: u32, op: &WireOp) -> io::Result<bool> {
        if !self.kill.admit(Some(op.tick)) {
            return Ok(false);
        }
        let member = op.member.0;
        let rec = Json::Obj(vec![
            ("kind".into(), Json::Str("op".into())),
            ("qid".into(), Json::Num(qid as f64)),
            ("op".into(), wire_to_json(op)),
        ]);
        self.append_line(&self.wal_path(member), &rec)?;
        self.bump(member)
    }

    /// Appends one cached `(pattern, answer)` entry to its member's
    /// answer database. `tick` is the question counter at ask time (the
    /// kill model uses it). Returns `false` when dropped.
    pub fn append_answer(
        &mut self,
        member: MemberId,
        tick: u32,
        pattern: &PatternSet,
        answer: &CachedAnswer,
    ) -> io::Result<bool> {
        if !self.kill.admit(Some(tick)) {
            return Ok(false);
        }
        let rec = Json::Obj(vec![
            ("kind".into(), Json::Str("answer".into())),
            ("entry".into(), entry_to_json(pattern, answer)),
        ]);
        self.append_line(&self.wal_path(member.0), &rec)?;
        self.bump(member.0)
    }

    /// Post-append bookkeeping: count the record, compact when due.
    fn bump(&mut self, member: u32) -> io::Result<bool> {
        let count = self.wal_records.entry(member).or_insert(0);
        *count += 1;
        if self.snapshot_every > 0 && *count >= self.snapshot_every {
            self.compact(member)?;
        }
        Ok(true)
    }

    /// Folds `member`'s WAL into its snapshot and truncates the WAL.
    ///
    /// Purely textual: ops are concatenated in arrival order (the
    /// member-prefix property is preserved), answers are last-wins per
    /// pattern — the same state recovery would build from the
    /// uncompacted stream. The snapshot is written to a temp file and
    /// renamed over the old one, so a crash leaves either the old or
    /// the new snapshot, never a torn one.
    pub fn compact(&mut self, member: u32) -> io::Result<()> {
        let (mut ops, mut answers) = (Vec::new(), Vec::new());
        if let Some(snap) = read_snapshot(&self.snap_path(member))? {
            collect_member_records(&snap, &mut ops, &mut answers);
        }
        let (records, _) = read_records(&self.wal_path(member))?;
        for rec in &records {
            collect_member_records(rec, &mut ops, &mut answers);
        }
        // last-wins per pattern, in first-seen order (matches the put
        // order recovery would apply)
        let mut dedup: Vec<(String, Json)> = Vec::new();
        for entry in answers {
            let key = entry
                .as_arr()
                .ok()
                .and_then(|e| e.first())
                .map(|p| p.to_string())
                .unwrap_or_default();
            if let Some(slot) = dedup.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = entry;
            } else {
                dedup.push((key, entry));
            }
        }
        let snap = Json::Obj(vec![
            ("kind".into(), Json::Str("snap".into())),
            ("ops".into(), Json::Arr(ops)),
            (
                "answers".into(),
                Json::Arr(dedup.into_iter().map(|(_, e)| e).collect()),
            ),
        ]);
        let tmp = self.snap_path(member).with_extension("snap.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(frame(&snap).as_bytes())?;
        f.flush()?;
        fs::rename(&tmp, self.snap_path(member))?;
        // the WAL's content now lives in the snapshot
        File::create(self.wal_path(member))?;
        self.wal_records.insert(member, 0);
        Ok(())
    }

    /// Reconstructs the session from disk: query registry, per-query
    /// merged member ops, and the union answer cache. Torn tails are
    /// truncated to the last complete record; nothing here panics on a
    /// damaged directory.
    pub fn recover(&self, vocab: &Vocabulary) -> Result<Recovered, JsonError> {
        let mut out = Recovered::default();
        // --- meta.wal: session header + query registry
        let (meta, torn) = read_records(&self.meta_path()).map_err(io_shape)?;
        out.truncated |= torn;
        for rec in &meta {
            match rec.field("kind").and_then(|k| k.as_str().map(String::from)) {
                Ok(kind) if kind == "session" => {
                    out.session = Some(rec.field("name")?.as_str()?.to_string());
                    out.proto = rec.field("proto")?.as_u32()?;
                    out.seed = rec.field("seed")?.as_f64()? as u64;
                    out.members = rec.field("members")?.as_u32()?;
                }
                Ok(kind) if kind == "query" => {
                    let spec = QuerySpec {
                        src: rec.field("src")?.as_str()?.to_string(),
                        threshold: opt_f64(rec.field("threshold")?)?,
                        batch_width: rec.field("batch_width")?.as_u32()?,
                        max_questions: opt_u32(rec.field("max_questions")?)?,
                        seed: rec.field("seed")?.as_f64()? as u64,
                    };
                    out.queries.push(QueryMeta {
                        qid: rec.field("qid")?.as_u32()?,
                        spec,
                        done: None,
                    });
                }
                Ok(kind) if kind == "done" => {
                    let qid = rec.field("qid")?.as_u32()?;
                    let done = DoneMeta {
                        complete: as_bool(rec.field("complete")?)?,
                        digest: rec.field("digest")?.as_str()?.to_string(),
                        threshold: rec.field("threshold")?.as_f64()?,
                    };
                    if let Some(q) = out.queries.iter_mut().find(|q| q.qid == qid) {
                        q.done = Some(done);
                    }
                }
                // unknown kinds are future records — skip, don't fail
                _ => {}
            }
        }
        out.queries.sort_by_key(|q| q.qid);
        // --- member files: snapshot first, then the WAL tail
        for member in self.member_ids().map_err(io_shape)? {
            let mut records = Vec::new();
            if let Some(snap) = read_snapshot(&self.snap_path(member)).map_err(io_shape)? {
                records.push(snap);
            }
            let (wal, torn) = read_records(&self.wal_path(member)).map_err(io_shape)?;
            out.truncated |= torn;
            records.extend(wal);
            let (mut ops, mut answers) = (Vec::new(), Vec::new());
            for rec in &records {
                collect_member_records(rec, &mut ops, &mut answers);
            }
            // idempotent re-delivery: a crash between snapshot rename and
            // WAL truncation can double a record — (tick, seq) is unique
            // within one member, so dedup is exact
            let mut seen: Vec<(u32, u32, u32)> = Vec::new();
            for op_rec in ops {
                let qid = op_rec.field("qid")?.as_u32()?;
                let op = wire_from_json(vocab, op_rec.field("op")?)?;
                let key = (qid, op.tick, op.seq);
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                out.ops.entry(qid).or_default().push(op);
            }
            for entry in answers {
                let (pattern, answer) = entry_from_json(&entry)?;
                out.cache.put(MemberId(member), pattern, answer);
            }
        }
        Ok(out)
    }
}

/// Maps an io error into the recovery error surface.
fn io_shape(e: io::Error) -> JsonError {
    JsonError::shape(format!("wal io error: {e}"))
}

fn opt_f64(v: &Json) -> Result<Option<f64>, JsonError> {
    match v {
        Json::Null => Ok(None),
        other => other.as_f64().map(Some),
    }
}

fn opt_u32(v: &Json) -> Result<Option<u32>, JsonError> {
    match v {
        Json::Null => Ok(None),
        other => other.as_u32().map(Some),
    }
}

fn as_bool(v: &Json) -> Result<bool, JsonError> {
    match v {
        Json::Bool(b) => Ok(*b),
        other => Err(JsonError::shape(format!("expected bool, got {other}"))),
    }
}

/// Splits a member record (or a whole snapshot) into its op records and
/// answer entries, appending to `ops` / `answers`. Unknown kinds are
/// skipped — a future record kind must not break recovery.
fn collect_member_records(rec: &Json, ops: &mut Vec<Json>, answers: &mut Vec<Json>) {
    let Ok(kind) = rec.field("kind").and_then(|k| k.as_str()) else {
        return;
    };
    match kind {
        "op" => ops.push(rec.clone()),
        "answer" => {
            if let Ok(entry) = rec.field("entry") {
                answers.push(entry.clone());
            }
        }
        "snap" => {
            if let Ok(snap_ops) = rec.field("ops").and_then(|o| o.as_arr()) {
                ops.extend(snap_ops.iter().cloned());
            }
            if let Ok(snap_answers) = rec.field("answers").and_then(|a| a.as_arr()) {
                answers.extend(snap_answers.iter().cloned());
            }
        }
        _ => {}
    }
}

impl SessionWal {
    /// Appends one crc-framed record line to `path`, flushing before
    /// returning — the record is durable (modulo OS buffering) once the
    /// call succeeds.
    fn append_line(&self, path: &Path, rec: &Json) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(frame(rec).as_bytes())?;
        f.flush()
    }
}

/// Frames one record as a crc-guarded line.
fn frame(rec: &Json) -> String {
    let body = rec.to_string();
    format!(
        "{{\"crc\":\"{:016x}\",\"rec\":{}}}\n",
        fnv64(body.as_bytes()),
        body
    )
}

/// Reads every complete, crc-valid record of `path`, truncating the
/// file at the first bad line (torn tail). Returns the records and
/// whether a truncation happened. A missing file is an empty log.
fn read_records(path: &Path) -> io::Result<(Vec<Json>, bool)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let line_start = offset;
        // PANIC-OK: offset < bytes.len() is the loop guard.
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            // no trailing newline: the line was cut mid-write
            truncate_to(path, line_start)?;
            return Ok((records, true));
        };
        // PANIC-OK: nl is an in-bounds position within bytes[offset..].
        let line = &bytes[offset..offset + nl];
        offset += nl + 1;
        match decode_line(line) {
            Some(rec) => records.push(rec),
            None => {
                // a bad line invalidates it and everything after it —
                // appends are strictly ordered, so nothing beyond the
                // first tear is trustworthy
                truncate_to(path, line_start)?;
                return Ok((records, true));
            }
        }
    }
    Ok((records, false))
}

/// Parses and crc-checks one framed line.
fn decode_line(line: &[u8]) -> Option<Json> {
    let text = std::str::from_utf8(line).ok()?;
    let doc = json::parse(text).ok()?;
    let crc = doc.field("crc").ok()?.as_str().ok()?.to_string();
    let rec = doc.field("rec").ok()?;
    let body = rec.to_string();
    if format!("{:016x}", fnv64(body.as_bytes())) != crc {
        return None;
    }
    Some(rec.clone())
}

/// Cuts `path` back to `len` bytes (tear repair).
fn truncate_to(path: &Path, len: usize) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len as u64)
}

/// Reads a snapshot file: a single framed `snap` record, or `None` when
/// absent or damaged (the rename protocol makes damage mean "the old
/// snapshot", i.e. nothing, not data loss).
fn read_snapshot(path: &Path) -> io::Result<Option<Json>> {
    let (records, _) = read_records(path)?;
    Ok(records.into_iter().next())
}

/// The [`OpTap`] the session manager installs on every query run: each
/// flushed op is rendered to wire form against the run's DAG and
/// appended to its member's log, stamped with the query id.
pub struct WalTap {
    wal: Arc<TrackedMutex<SessionWal>>,
    qid: u32,
    /// Ops appended (not dropped by the kill switch).
    appended: Arc<AtomicU64>,
}

impl WalTap {
    /// A tap appending `qid`'s ops through `wal`.
    pub fn new(wal: Arc<TrackedMutex<SessionWal>>, qid: u32) -> WalTap {
        WalTap {
            wal,
            qid,
            appended: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A counter view of how many ops the tap durably appended.
    pub fn appended(&self) -> Arc<AtomicU64> {
        self.appended.clone()
    }
}

impl OpTap for WalTap {
    fn append(&self, dag: &Dag<'_>, ops: &[AnswerOp]) {
        let mut wal = self.wal.lock().expect("wal mutex poisoned"); // PANIC-OK: poisoning means a holder already panicked; propagate it
        for op in ops {
            let wire = op_to_wire(op, dag);
            match wal.append_op(self.qid, &wire) {
                Ok(true) => {
                    self.appended.fetch_add(1, Ordering::SeqCst);
                }
                Ok(false) => {} // kill switch: the process model is dead
                Err(e) => {
                    // an undropped io error would poison the engine run;
                    // surface loudly instead — the recovery oracle treats
                    // missing suffixes as a crash anyway
                    eprintln!("wal append failed: {e}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd::MemberId;
    use oassis_core::WireVerdict;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oassis-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn op(tick: u32, member: u32) -> WireOp {
        WireOp {
            tick,
            seq: 0,
            member: MemberId(member),
            node: None,
            verdict: WireVerdict::NoAnswer,
        }
    }

    #[test]
    fn records_roundtrip_and_survive_reopen() {
        let dir = tmp_dir("roundtrip");
        let ont = ontology::domains::figure1::ontology();
        let mut wal = SessionWal::open(&dir, 0).unwrap();
        wal.record_session("s1", 1, 7, 2).unwrap();
        let spec = QuerySpec {
            src: "SELECT".into(),
            threshold: Some(0.4),
            batch_width: 2,
            max_questions: None,
            seed: 7,
        };
        wal.record_query(1, &spec).unwrap();
        assert!(wal.append_op(1, &op(1, 0)).unwrap());
        assert!(wal.append_op(1, &op(2, 1)).unwrap());
        wal.record_done(
            1,
            &DoneMeta {
                complete: true,
                digest: "00000000000000ff".into(),
                threshold: 0.4,
            },
        )
        .unwrap();
        drop(wal);
        let wal = SessionWal::open(&dir, 0).unwrap();
        let rec = wal.recover(ont.vocab()).unwrap();
        assert_eq!(rec.session.as_deref(), Some("s1"));
        assert_eq!(rec.proto, 1);
        assert_eq!(rec.queries.len(), 1);
        assert_eq!(rec.queries[0].spec, spec);
        assert_eq!(
            rec.queries[0].done.as_ref().unwrap().digest,
            "00000000000000ff"
        );
        assert_eq!(rec.ops[&1].len(), 2);
        assert!(!rec.truncated);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_last_complete_record() {
        let dir = tmp_dir("torn");
        let ont = ontology::domains::figure1::ontology();
        let mut wal = SessionWal::open(&dir, 0).unwrap();
        wal.record_session("s1", 1, 7, 2).unwrap();
        assert!(wal.append_op(1, &op(1, 0)).unwrap());
        assert!(wal.append_op(1, &op(2, 0)).unwrap());
        // tear the member WAL mid-record
        let path = dir.join("member-0.wal");
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 7]).unwrap();
        let rec = wal.recover(ont.vocab()).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.ops[&1].len(), 1, "only the complete record survives");
        // the tear was repaired in place: recovering again is clean
        let rec2 = wal.recover(ont.vocab()).unwrap();
        assert!(!rec2.truncated);
        assert_eq!(rec2.ops[&1].len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_invalidates_the_suffix() {
        let dir = tmp_dir("crc");
        let ont = ontology::domains::figure1::ontology();
        let mut wal = SessionWal::open(&dir, 0).unwrap();
        for t in 1..=3 {
            assert!(wal.append_op(1, &op(t, 0)).unwrap());
        }
        let path = dir.join("member-0.wal");
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // flip a byte inside the second record's payload
        lines[1] = lines[1].replace("\"tick\":2", "\"tick\":9");
        fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        let rec = wal.recover(ont.vocab()).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.ops[&1].len(), 1, "suffix after the bad line is gone");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_recovery_state() {
        let dir_a = tmp_dir("compact-a");
        let dir_b = tmp_dir("compact-b");
        let ont = ontology::domains::figure1::ontology();
        // identical streams; `a` compacts every 2 records, `b` never
        let mut a = SessionWal::open(&dir_a, 2).unwrap();
        let mut b = SessionWal::open(&dir_b, 0).unwrap();
        for t in 1..=5 {
            assert!(a.append_op(1, &op(t, 0)).unwrap());
            assert!(b.append_op(1, &op(t, 0)).unwrap());
        }
        assert!(dir_a.join("member-0.snap").exists());
        let ra = a.recover(ont.vocab()).unwrap();
        let rb = b.recover(ont.vocab()).unwrap();
        assert_eq!(ra.ops[&1], rb.ops[&1]);
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn kill_switch_drops_everything_after_the_armed_tick() {
        let dir = tmp_dir("kill");
        let ont = ontology::domains::figure1::ontology();
        let kill = KillSwitch::new();
        let mut wal = SessionWal::open(&dir, 0).unwrap().with_kill(kill.clone());
        kill.arm(3);
        assert!(wal.append_op(1, &op(1, 0)).unwrap());
        assert!(wal.append_op(1, &op(2, 1)).unwrap());
        assert!(
            !wal.append_op(1, &op(3, 0)).unwrap(),
            "tick 3 trips the switch"
        );
        assert!(kill.killed());
        // even earlier-stamped appends are dead now: the process is gone
        assert!(!wal.append_op(1, &op(2, 0)).unwrap());
        wal.record_done(
            1,
            &DoneMeta {
                complete: true,
                digest: "aa".into(),
                threshold: 0.5,
            },
        )
        .unwrap();
        let rec = wal.recover(ont.vocab()).unwrap();
        assert_eq!(rec.ops[&1].len(), 2);
        assert!(rec.queries.is_empty(), "the done record was dropped too");
        fs::remove_dir_all(&dir).unwrap();
    }
}
