//! # oassis-server — the crowd-mining serving layer
//!
//! ROADMAP item 1: the paper's OASSIS architecture assumes long-lived
//! crowd members whose "virtual personal databases" outlive any single
//! query, so the engine needs a process that outlives the query too.
//! This crate is that process: a std-only, long-lived service over
//! [`oassis_core::Oassis::run`] speaking line-delimited JSON over TCP,
//! with a session manager owning the shared ontology and answer cache,
//! and a WAL-backed embedded store so per-member answer databases and
//! partial classifications survive restarts.
//!
//! * [`proto`] — the wire contract: versioned hello handshake,
//!   request/response/error frames over the hand-rolled
//!   [`ontology::json`], decoding tolerant of unknown fields.
//! * [`wal`] — the embedded store: per-member append-only `AnswerOp`
//!   logs (wire form, crc-guarded, torn-tail tolerant) plus periodic
//!   snapshot compaction, building directly on `core::oplog`'s record
//!   format.
//! * [`session`] — the session manager and the [`SessionHandle`]
//!   façade: sessions page in by WAL replay and page out by dropping
//!   resident state (everything is already durable).
//! * [`service`] — the TCP serve loop: thread-per-connection over a
//!   shared session manager.
//!
//! ## Recovery is replay
//!
//! On restart the server rebuilds each session by replaying the union
//! of its member logs against a freshly built DAG (the *stale-DAG*
//! shape of `core::cluster`: ops address nodes by assignment, the
//! recovering replica interns them at recovery time). The replayed
//! [`oassis_core::SemanticOutcome`] digest must equal the pre-crash
//! digest bit-identically — the kill-at-tick oracle in `crates/simtest`
//! checks exactly that, seeded and ddmin-shrinkable.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod proto;
pub mod provider;
pub mod service;
pub mod session;
pub mod wal;

pub use proto::{negotiate, Request, Response, PROTO_MIN, PROTO_VERSION};
pub use provider::Figure1Provider;
pub use service::{Client, Server, ServerConfig};
pub use session::{
    CrowdProvider, FnProvider, OpenReply, QueryReply, RecoveredQuery, ServerError, SessionHandle,
    SessionManager, SessionSpec,
};
pub use wal::{DoneMeta, KillSwitch, QueryMeta, QuerySpec, Recovered, SessionWal, WalTap};

/// Renders a `SemanticOutcome` digest the way the WAL and the wire
/// protocol carry it: 16 lowercase hex digits. `u64` does not survive a
/// JSON `Num` round trip above 2^53, a hex string does.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}
