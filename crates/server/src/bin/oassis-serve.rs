//! `oassis-serve` — the crowd-mining server over the Figure-1 domain.
//!
//! Binds a TCP listener, serves the line-delimited JSON protocol of
//! `oassis_server::proto`, and persists every session under a WAL root
//! directory — kill it and restart it over the same root, and sessions
//! recover by replay.
//!
//! ```sh
//! oassis-serve [ADDR] [WAL_ROOT]
//! # defaults: 127.0.0.1:7464 ./oassis-sessions
//! ```
//!
//! The crowd is simulated: `members` seeded members per session (from
//! the `open` frame), each backed by the Table-3 personal databases of
//! the paper's running example, answering exactly. Every session with
//! the same `(seed, members)` spec answers identically — which is what
//! makes kill/restart/verify cycles deterministic end to end.

use oassis_server::{Figure1Provider, Server, ServerConfig, SessionManager};
use ontology::domains::figure1;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7464".into());
    let root = args.next().unwrap_or_else(|| "./oassis-sessions".into());

    let ont = Arc::new(figure1::ontology());
    let provider = Figure1Provider::new(ont.clone());
    let manager = SessionManager::new(ont, Box::new(provider), &root);
    let cfg = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    match Server::spawn(manager, &cfg) {
        Ok(server) => {
            println!(
                "oassis-serve listening on {} (wal root {root})",
                server.addr()
            );
            server.join();
        }
        Err(e) => {
            eprintln!("oassis-serve: bind failed: {e}");
            std::process::exit(1);
        }
    }
}
