//! Deterministic crowd providers shared by the serve binary, the
//! integration tests and the simtest crash-recovery harness.
//!
//! The recovery oracle's bedrock is that equal session specs answer
//! identically across process lifetimes, so the canonical provider is
//! fully seeded: every member's database and rng derive from the
//! session's `(seed, members)` alone.

use crate::session::{CrowdProvider, SessionSpec};
use crowd::{
    AnswerModel, CrowdSource, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember,
};
use ontology::domains::figure1;
use ontology::Ontology;
use std::sync::Arc;

/// Seeded Figure-1 crowds: member `i` gets the concatenated Table-3
/// history (`D_u1 + 3×D_u2`, the quickstart's `u_avg` construction),
/// answers exactly, and derives its rng seed from the session seed, so
/// equal specs answer identically across restarts.
pub struct Figure1Provider {
    ont: Arc<Ontology>,
}

impl Figure1Provider {
    /// A provider over `ont`, which must be the Figure-1 ontology (the
    /// personal databases are its Table-3 transactions).
    pub fn new(ont: Arc<Ontology>) -> Self {
        Figure1Provider { ont }
    }
}

impl CrowdProvider for Figure1Provider {
    fn provide<'a>(&'a self, spec: &SessionSpec) -> Box<dyn CrowdSource + Send + 'a> {
        let [d1, d2] = figure1::personal_dbs(&self.ont);
        let mut tx = d1;
        for _ in 0..3 {
            tx.extend(d2.iter().cloned());
        }
        let members = (0..spec.members.max(1))
            .map(|i| {
                SimulatedMember::new(
                    PersonalDb::from_transactions(tx.clone()),
                    MemberBehavior::default(),
                    AnswerModel::Exact,
                    spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(i),
                )
            })
            .collect();
        Box::new(SimulatedCrowd::new(self.ont.vocab(), members))
    }
}
