//! # Sessions: long-lived crowd-mining state over the engine
//!
//! A *session* is the server's unit of persistence: one named scope
//! owning a shared answer cache (the members' "virtual personal
//! databases" of the paper), a [`SessionWal`] directory, and a query
//! registry. The [`SessionManager`] pages sessions in and out of
//! memory: everything a session knows is already durable by the time
//! any call returns, so paging out is just dropping resident state and
//! paging in is WAL recovery.
//!
//! Queries execute through the single engine entry point
//! [`Oassis::run`] with two durability hooks installed:
//!
//! * a [`WalTap`] on [`MiningConfig::op_tap`] streams every accepted
//!   answer op to its member's log at round boundaries;
//! * a [`DurableCrowd`](self) wrapper persists every fresh cached
//!   answer at ask time (and serves repeats from the session cache
//!   without asking the crowd at all).
//!
//! Recovery replays the union of member logs against a freshly built
//! DAG with [`OpLog::replay_merged`] and compares the replayed
//! [`SemanticOutcome`] digest against the one the `done` meta record
//! stored — bit-identical or it's a finding.

use crate::digest_hex;
use crate::wal::{DoneMeta, KillSwitch, QueryMeta, QuerySpec, SessionWal, WalTap};
use crowd::{Answer, CrowdSource, MemberId, Question};
use oassis_core::cache::CachedAnswer;
use oassis_core::oplog::OpTapHandle;
use oassis_core::{
    intern_wire_op, CrowdBinding, FixedSampleAggregator, MiningConfig, Oassis, OpLog, QueryRequest,
    SemanticOutcome, SharedCrowdCache,
};
use oassis_ql::{bind, evaluate_where_pool, parse, MatchMode};
use ontology::Ontology;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use telemetry::lockorder::TrackedMutex;
use telemetry::Telemetry;

/// Errors of the serving layer.
#[derive(Debug)]
pub enum ServerError {
    /// The engine rejected or failed the query.
    Engine(String),
    /// The embedded store failed (io or a damaged record).
    Wal(String),
    /// The request is invalid at the session level (bad name, rule
    /// query over the wire, unknown qid, …).
    Protocol(String),
    /// No such session (not resident and no WAL directory).
    UnknownSession(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Engine(m) => write!(f, "engine error: {m}"),
            ServerError::Wal(m) => write!(f, "wal error: {m}"),
            ServerError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServerError::UnknownSession(n) => write!(f, "unknown session {n:?}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// What a session was opened with (the `open` frame's payload); the
/// crowd provider builds the session's crowd from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Session name — also the WAL directory name, so restricted to
    /// `[A-Za-z0-9_-]`.
    pub name: String,
    /// Crowd seed (deterministic simulated members).
    pub seed: u64,
    /// Crowd size.
    pub members: u32,
}

/// Builds the crowd a session asks. The server binary plugs in seeded
/// simulated members; tests plug in oracles.
///
/// The returned crowd may borrow from the provider (simulated crowds
/// borrow the vocabulary), so implementors typically own an
/// `Arc<Ontology>` and hand out crowds scoped to `&self`.
pub trait CrowdProvider: Send + Sync {
    /// A fresh crowd for (each query of) `spec`'s session. Determinism
    /// contract: for the same spec the returned crowd must answer
    /// identically — recovery and resumption lean on it.
    fn provide<'a>(&'a self, spec: &SessionSpec) -> Box<dyn CrowdSource + Send + 'a>;
}

/// A [`CrowdProvider`] from a closure (for crowds that own their data;
/// borrowing crowds implement the trait on an owning struct instead).
pub struct FnProvider<F>(pub F);

impl<F> CrowdProvider for FnProvider<F>
where
    F: Fn(&SessionSpec) -> Box<dyn CrowdSource + Send> + Send + Sync,
{
    fn provide<'a>(&'a self, spec: &SessionSpec) -> Box<dyn CrowdSource + Send + 'a> {
        (self.0)(spec)
    }
}

/// The reply to one executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Session-scoped query id (1-based).
    pub qid: u32,
    /// Rendered answer rows (the valid MSPs).
    pub answers: Vec<String>,
    /// Questions the engine posed (cache hits included).
    pub questions: usize,
    /// Questions that actually reached the crowd (cache misses).
    pub fresh: usize,
    /// Whether the run classified everything.
    pub complete: bool,
    /// The `SemanticOutcome` digest, 16 hex digits.
    pub digest: String,
    /// The resolved support threshold the run mined under.
    pub threshold: f64,
}

/// One query's recovered state: the WAL replay and its verification
/// against the recorded digest.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredQuery {
    /// Session-scoped query id.
    pub qid: u32,
    /// The spec the query was registered with.
    pub spec: QuerySpec,
    /// Replayed answer rows (valid MSP displays).
    pub answers: Vec<String>,
    /// Completion flag carried from the `done` record (`false` for a
    /// query the crash cut down mid-run).
    pub complete: bool,
    /// The replayed digest.
    pub digest: String,
    /// The digest the `done` record stored, when the query finished
    /// before the crash.
    pub recorded_digest: Option<String>,
    /// `Some(replayed == recorded)` when there is a recorded digest —
    /// the recovery oracle.
    pub verified: Option<bool>,
    /// Ops replayed (the union of the member logs' durable prefixes).
    pub ops: usize,
}

/// The reply to opening (or re-opening) a session.
#[derive(Debug, Clone)]
pub struct OpenReply {
    /// Whether durable state existed and was paged in.
    pub resumed: bool,
    /// Registered queries (qids) found in the WAL, in qid order.
    pub known_queries: Vec<u32>,
    /// Cached answers paged in from the member databases.
    pub cached_answers: usize,
}

/// Resident state of one paged-in session.
struct Session {
    spec: SessionSpec,
    cache: Arc<SharedCrowdCache>,
    wal: Arc<TrackedMutex<SessionWal>>,
    next_qid: u32,
    /// Logical LRU stamp (manager-wide use counter).
    last_used: u64,
}

/// Owns the shared ontology, the crowd provider, and every resident
/// session. One manager per server process; the service layer guards it
/// with the `server.sessions` mutex, so queries serialize per process —
/// the engine itself parallelizes internally via its pool.
pub struct SessionManager {
    ont: Arc<Ontology>,
    provider: Box<dyn CrowdProvider>,
    root: PathBuf,
    resident_limit: usize,
    snapshot_every: u32,
    kill: KillSwitch,
    tele: Telemetry,
    sessions: BTreeMap<String, Session>,
    use_counter: u64,
}

impl SessionManager {
    /// A manager over `ont` and `provider`, persisting under `root`
    /// (one subdirectory per session).
    pub fn new(
        ont: Arc<Ontology>,
        provider: Box<dyn CrowdProvider>,
        root: impl Into<PathBuf>,
    ) -> SessionManager {
        SessionManager {
            ont,
            provider,
            root: root.into(),
            resident_limit: 8,
            snapshot_every: 64,
            kill: KillSwitch::new(),
            tele: Telemetry::off(),
            sessions: BTreeMap::new(),
            use_counter: 0,
        }
    }

    /// Caps resident sessions; the least recently used is paged out
    /// (dropped — its state is already durable) past the cap.
    pub fn with_resident_limit(mut self, limit: usize) -> SessionManager {
        self.resident_limit = limit.max(1);
        self
    }

    /// Member-WAL records between snapshot compactions (0 disables).
    pub fn with_snapshot_every(mut self, every: u32) -> SessionManager {
        self.snapshot_every = every;
        self
    }

    /// Installs the process-death model (simtest's kill-at-tick fault):
    /// every session WAL opened from now on shares this switch.
    pub fn with_kill(mut self, kill: KillSwitch) -> SessionManager {
        self.kill = kill;
        self
    }

    /// Installs a telemetry handle; sessions record under
    /// `session.<name>.*` labeled views.
    pub fn with_telemetry(mut self, tele: Telemetry) -> SessionManager {
        self.tele = tele;
        self
    }

    /// The shared ontology.
    pub fn ontology(&self) -> &Arc<Ontology> {
        &self.ont
    }

    /// Names of the currently resident sessions (paging diagnostics).
    pub fn resident(&self) -> Vec<String> {
        self.sessions.keys().cloned().collect()
    }

    fn check_name(name: &str) -> Result<(), ServerError> {
        let ok = !name.is_empty()
            && name.len() <= 64
            && name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
        if ok {
            Ok(())
        } else {
            Err(ServerError::Protocol(format!(
                "session name {name:?} must be 1-64 chars of [A-Za-z0-9_-]"
            )))
        }
    }

    fn stamp(&mut self) -> u64 {
        self.use_counter += 1;
        self.use_counter
    }

    /// Opens a session: pages durable state in when its WAL directory
    /// exists, otherwise creates it fresh. Idempotent for resident
    /// sessions (a reconnecting client re-sends `open`).
    pub fn open(&mut self, spec: &SessionSpec) -> Result<OpenReply, ServerError> {
        Self::check_name(&spec.name)?;
        if let Some(s) = self.sessions.get(&spec.name) {
            let reply = OpenReply {
                resumed: true,
                known_queries: (1..s.next_qid).collect(),
                cached_answers: s.cache.len(),
            };
            let stamp = self.stamp();
            // PANIC-OK: the get above proved the key is present.
            self.sessions.get_mut(&spec.name).unwrap().last_used = stamp;
            return Ok(reply);
        }
        let dir = self.root.join(&spec.name);
        let existed = dir.join("meta.wal").exists();
        let mut wal = SessionWal::open(&dir, self.snapshot_every)
            .map_err(|e| ServerError::Wal(e.to_string()))?
            .with_kill(self.kill.clone());
        let mut spec = spec.clone();
        let (cache, next_qid, known) = if existed {
            let rec = wal
                .recover(self.ont.vocab())
                .map_err(|e| ServerError::Wal(e.to_string()))?;
            let next = rec.queries.iter().map(|q| q.qid).max().unwrap_or(0) + 1;
            let known: Vec<u32> = rec.queries.iter().map(|q| q.qid).collect();
            // the durable header is the source of truth for the crowd
            // spec: the provider must rebuild the exact same crowd the
            // recorded answers came from, whatever a later open claims
            if rec.session.is_some() {
                spec.seed = rec.seed;
                spec.members = rec.members;
            }
            (rec.cache, next, known)
        } else {
            wal.record_session(
                &spec.name,
                crate::proto::PROTO_VERSION,
                spec.seed,
                spec.members,
            )
            .map_err(|e| ServerError::Wal(e.to_string()))?;
            (Default::default(), 1, Vec::new())
        };
        let cached_answers = cache.len();
        let stamp = self.stamp();
        self.sessions.insert(
            spec.name.clone(),
            Session {
                spec: spec.clone(),
                cache: Arc::new(SharedCrowdCache::new(cache)),
                wal: Arc::new(TrackedMutex::new("server.wal", wal)),
                next_qid,
                last_used: stamp,
            },
        );
        self.evict_over_limit(&spec.name);
        self.tele
            .labeled(&format!("session.{}", spec.name))
            .mark("open", if existed { "resumed" } else { "fresh" });
        Ok(OpenReply {
            resumed: existed,
            known_queries: known,
            cached_answers,
        })
    }

    /// Pages out least-recently-used sessions past the resident cap,
    /// never the one named `keep`.
    fn evict_over_limit(&mut self, keep: &str) {
        while self.sessions.len() > self.resident_limit {
            let victim = self
                .sessions
                .iter()
                .filter(|(name, _)| name.as_str() != keep)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    self.tele
                        .labeled(&format!("session.{name}"))
                        .mark("page_out", "lru");
                    self.sessions.remove(&name);
                }
                None => break,
            }
        }
    }

    /// Ensures `name` is resident (paging in from its WAL directory if
    /// needed) and bumps its LRU stamp.
    fn touch(&mut self, name: &str) -> Result<(), ServerError> {
        if !self.sessions.contains_key(name) {
            Self::check_name(name)?;
            if !self.root.join(name).join("meta.wal").exists() {
                return Err(ServerError::UnknownSession(name.to_string()));
            }
            // a bare touch pages in with placeholder crowd fields; open
            // overrides them from the durable session header, which is
            // authoritative for seed and member count
            let rec_spec = SessionSpec {
                name: name.to_string(),
                seed: 0,
                members: 0,
            };
            let _ = self.open(&rec_spec)?;
            return Ok(());
        }
        let stamp = self.stamp();
        // PANIC-OK: the contains_key branch above returned already.
        self.sessions.get_mut(name).unwrap().last_used = stamp;
        Ok(())
    }

    /// Runs one pattern query in `name`'s session through
    /// [`Oassis::run`], streaming ops and fresh answers to the WAL as it
    /// goes, and records the outcome digest in the `done` footer.
    pub fn query(&mut self, name: &str, spec: &QuerySpec) -> Result<QueryReply, ServerError> {
        self.touch(name)?;
        let (wal, cache, sess_spec, qid) = {
            // PANIC-OK: touch above paged the session in.
            let s = self.sessions.get_mut(name).unwrap();
            let qid = s.next_qid;
            s.next_qid += 1;
            (s.wal.clone(), s.cache.clone(), s.spec.clone(), qid)
        };
        let tele = self.tele.labeled(&format!("session.{name}"));
        let span = tele.span_with("query", &spec.src);
        let engine = Oassis::new(&self.ont);
        // rule queries would dispatch fine in-process, but their mined
        // rules have no op-log form, so the WAL could not recover them —
        // reject rather than persist something replay can't rebuild
        let bound = engine
            .prepare(&spec.src)
            .map_err(|e| ServerError::Engine(e.to_string()))?;
        if !bound.imp_meta.is_empty() {
            return Err(ServerError::Protocol(
                "rule queries (IMPLYING) are not served over sessions; use the library API".into(),
            ));
        }
        wal.lock()
            .expect("wal mutex poisoned") // PANIC-OK: poisoning means a holder already panicked; propagate it
            .record_query(qid, spec)
            .map_err(|e| ServerError::Wal(e.to_string()))?;
        let cfg = MiningConfig {
            threshold: spec.threshold,
            batch_width: spec.batch_width as usize,
            max_questions: spec.max_questions.map(|m| m as usize),
            seed: spec.seed,
            op_tap: Some(OpTapHandle::new(WalTap::new(wal.clone(), qid))),
            ..Default::default()
        };
        let req = QueryRequest::pattern(&spec.src).with_mining(cfg);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let inner = self.provider.provide(&sess_spec);
        let mut crowd = DurableCrowd::new(inner, cache, wal.clone());
        let outcome = engine
            .run(&req, CrowdBinding::single(&mut crowd), &agg)
            .map_err(|e| ServerError::Engine(e.to_string()))?;
        let (questions, fresh) = (crowd.total_questions(), crowd.fresh_questions());
        // PANIC-OK: a single non-IMPLYING query always yields Patterns.
        let answer = outcome.into_patterns().unwrap();
        let sem = SemanticOutcome::from_mining(&answer.outcome.mining, &bound, self.ont.vocab());
        let digest = digest_hex(sem.digest());
        let threshold = answer.outcome.mining.ops.threshold();
        let complete = answer.outcome.mining.complete;
        wal.lock()
            .expect("wal mutex poisoned") // PANIC-OK: poisoning means a holder already panicked; propagate it
            .record_done(
                qid,
                &DoneMeta {
                    complete,
                    digest: digest.clone(),
                    threshold,
                },
            )
            .map_err(|e| ServerError::Wal(e.to_string()))?;
        drop(span);
        tele.count("queries", 1);
        Ok(QueryReply {
            qid,
            answers: answer.answers,
            questions,
            fresh,
            complete,
            digest,
            threshold,
        })
    }

    /// Recovers every registered query of `name`'s session from its WAL:
    /// fresh DAG, interned wire ops, [`OpLog::replay_merged`], and a
    /// digest comparison against the recorded `done` footer.
    pub fn recover(&mut self, name: &str) -> Result<Vec<RecoveredQuery>, ServerError> {
        self.touch(name)?;
        // PANIC-OK: touch above paged the session in.
        let wal = self.sessions.get(name).unwrap().wal.clone();
        let rec = {
            let wal = wal.lock().expect("wal mutex poisoned"); // PANIC-OK: poisoning means a holder already panicked; propagate it
            wal.recover(self.ont.vocab())
                .map_err(|e| ServerError::Wal(e.to_string()))?
        };
        let tele = self.tele.labeled(&format!("session.{name}"));
        let _span = tele.span("recover");
        let mut out = Vec::new();
        for q in &rec.queries {
            let ops = rec.ops.get(&q.qid).cloned().unwrap_or_default();
            out.push(self.replay_one(q, ops)?);
        }
        Ok(out)
    }

    /// Replays one recovered query against a freshly built DAG — the
    /// stale-DAG shape of `core::cluster`: wire ops address nodes by
    /// assignment and are interned into the new replica.
    fn replay_one(
        &self,
        meta: &QueryMeta,
        wire: Vec<oassis_core::WireOp>,
    ) -> Result<RecoveredQuery, ServerError> {
        let q = parse(&meta.spec.src).map_err(|e| ServerError::Engine(e.to_string()))?;
        let bound = bind(&q, &self.ont).map_err(|e| ServerError::Engine(e.to_string()))?;
        let pool = minipool::Pool::sequential();
        let base = evaluate_where_pool(&bound, &self.ont, MatchMode::Exact, &pool);
        let mut dag = oassis_core::Dag::new(&bound, self.ont.vocab(), &base);
        let ops: Vec<_> = wire.iter().map(|w| intern_wire_op(&mut dag, w)).collect();
        let threshold = match &meta.done {
            Some(d) => d.threshold,
            // the run never finished: resolve exactly as run_multi does
            None => meta.spec.threshold.unwrap_or(bound.threshold),
        };
        let n_ops = ops.len();
        let mut log = OpLog::new(threshold, true).with_ops(ops);
        log.set_complete(meta.done.as_ref().is_some_and(|d| d.complete));
        let replay = log.replay_merged(
            &dag,
            &FixedSampleAggregator { sample_size: 1 },
            &pool,
            &Telemetry::off(),
        );
        let sem = SemanticOutcome::from_replay(&replay, &bound, self.ont.vocab());
        let digest = digest_hex(sem.digest());
        let recorded = meta.done.as_ref().map(|d| d.digest.clone());
        let verified = recorded.as_ref().map(|want| *want == digest);
        Ok(RecoveredQuery {
            qid: meta.qid,
            spec: meta.spec.clone(),
            answers: sem.valid_msps,
            complete: sem.complete,
            digest,
            recorded_digest: recorded,
            verified,
            ops: n_ops,
        })
    }

    /// Closes a session: pages it out (state stays durable on disk).
    pub fn close(&mut self, name: &str) -> Result<(), ServerError> {
        if self.sessions.remove(name).is_none() {
            return Err(ServerError::UnknownSession(name.to_string()));
        }
        self.tele
            .labeled(&format!("session.{name}"))
            .mark("page_out", "close");
        Ok(())
    }

    /// A borrowing façade over one session — the library-user face of
    /// the same request surface the wire protocol drives.
    pub fn session<'m>(&'m mut self, name: &str) -> Result<SessionHandle<'m>, ServerError> {
        self.touch(name)?;
        Ok(SessionHandle {
            mgr: self,
            name: name.to_string(),
        })
    }
}

/// A borrowing façade over one open session: library users build a
/// [`QueryRequest`] with the fluent builder and run it here; the wire
/// protocol lowers its `query` frame onto the same [`QuerySpec`]
/// surface, so both faces execute identically.
pub struct SessionHandle<'m> {
    mgr: &'m mut SessionManager,
    name: String,
}

impl SessionHandle<'_> {
    /// The session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs a [`QueryRequest`] (single pattern query) in this session.
    pub fn query(&mut self, req: &QueryRequest<'_>) -> Result<QueryReply, ServerError> {
        let queries = req.queries();
        let [src] = queries else {
            return Err(ServerError::Protocol(
                "sessions run one query per request; batch requests go through Oassis::run".into(),
            ));
        };
        let mining = &req.options().mining;
        let spec = QuerySpec {
            src: (*src).to_string(),
            threshold: mining.threshold,
            batch_width: mining.batch_width as u32,
            max_questions: mining.max_questions.map(|m| m as u32),
            seed: mining.seed,
        };
        self.mgr.query(&self.name, &spec)
    }

    /// Recovers (replays and verifies) every query of this session.
    pub fn recover(&mut self) -> Result<Vec<RecoveredQuery>, ServerError> {
        self.mgr.recover(&self.name)
    }

    /// Closes the session (pages it out; durable state remains).
    pub fn close(self) -> Result<(), ServerError> {
        self.mgr.close(&self.name)
    }
}

/// The session's crowd wrapper: consults the shared cache first (a hit
/// never reaches the crowd), and persists every fresh cacheable answer
/// to the member's WAL *at ask time* — so a crash loses at most the
/// in-flight question, and a recovered session never re-asks what any
/// earlier query already learned.
struct DurableCrowd<'p> {
    inner: Box<dyn CrowdSource + Send + 'p>,
    cache: Arc<SharedCrowdCache>,
    wal: Arc<TrackedMutex<SessionWal>>,
    asked: usize,
    fresh: usize,
}

impl<'p> DurableCrowd<'p> {
    fn new(
        inner: Box<dyn CrowdSource + Send + 'p>,
        cache: Arc<SharedCrowdCache>,
        wal: Arc<TrackedMutex<SessionWal>>,
    ) -> DurableCrowd<'p> {
        DurableCrowd {
            inner,
            cache,
            wal,
            asked: 0,
            fresh: 0,
        }
    }

    fn total_questions(&self) -> usize {
        self.asked
    }

    fn fresh_questions(&self) -> usize {
        self.fresh
    }

    fn persist(&self, member: MemberId, pattern: &ontology::PatternSet, answer: &CachedAnswer) {
        let mut wal = self.wal.lock().expect("wal mutex poisoned"); // PANIC-OK: poisoning means a holder already panicked; propagate it
                                                                    // the ask counter is the engine's question tick, so the kill
                                                                    // switch cuts answers and ops at the same logical instant
        if let Err(e) = wal.append_answer(member, self.asked as u32, pattern, answer) {
            eprintln!("wal answer append failed: {e}");
        }
    }
}

impl CrowdSource for DurableCrowd<'_> {
    fn members(&self) -> Vec<MemberId> {
        self.inner.members()
    }

    fn ask(&mut self, member: MemberId, question: &Question) -> Answer {
        self.asked += 1;
        if let Question::Concrete { pattern } = question {
            if let Some(hit) = self.cache.get(member, pattern) {
                return match hit {
                    CachedAnswer::Support { support, more_tip } => {
                        Answer::Support { support, more_tip }
                    }
                    CachedAnswer::Irrelevant { elem } => Answer::Irrelevant { elem },
                };
            }
            self.fresh += 1;
            let answer = self.inner.ask(member, question);
            let cached = match &answer {
                Answer::Support { support, more_tip } => Some(CachedAnswer::Support {
                    support: *support,
                    more_tip: *more_tip,
                }),
                Answer::Irrelevant { elem } => Some(CachedAnswer::Irrelevant { elem: *elem }),
                _ => None,
            };
            if let Some(c) = cached {
                self.persist(member, pattern, &c);
                self.cache.put(member, pattern.clone(), c);
            }
            return answer;
        }
        self.fresh += 1;
        self.inner.ask(member, question)
    }

    fn questions_asked(&self) -> usize {
        self.asked
    }

    fn member_has_profile(&self, member: MemberId, label: &str) -> bool {
        self.inner.member_has_profile(member, label)
    }

    fn supports_prefetch(&self) -> bool {
        self.inner.supports_prefetch()
    }

    fn prefetch(&mut self, batch: &[(MemberId, Question)]) {
        let misses: Vec<(MemberId, Question)> = batch
            .iter()
            .filter(|(m, q)| match q {
                Question::Concrete { pattern } => self.cache.get(*m, pattern).is_none(),
                _ => true,
            })
            .cloned()
            .collect();
        if !misses.is_empty() {
            self.inner.prefetch(&misses);
        }
    }

    fn advance_clock(&mut self, ticks: u64) {
        self.inner.advance_clock(ticks);
    }
}
