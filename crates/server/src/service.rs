//! # The TCP serve loop
//!
//! Thread-per-connection over one shared [`SessionManager`] guarded by
//! the `server.sessions` [`TrackedMutex`] — queries serialize at the
//! process level (the engine parallelizes internally through its pool),
//! which keeps every durable append totally ordered per session without
//! a second lock level. Acquisition order is always
//! `server.sessions → core.cache.inner / server.wal`; the lock-order
//! sanitizer (feature `lockorder`) watches exactly this.
//!
//! Each connection starts with a hello negotiation (see
//! [`crate::proto`]); after that, frames are dispatched one at a time
//! and every frame gets exactly one reply. Errors answer with an
//! `error` frame and keep the connection alive — only a failed hello
//! (or `bye`/EOF) ends it.

use crate::proto::{negotiate, Request, Response, PROTO_VERSION};
use crate::session::{ServerError, SessionManager};
use ontology::json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use telemetry::lockorder::TrackedMutex;

/// Serve-loop configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// The name sent in `hello_ack` frames.
    pub server_name: String,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            server_name: "oassis-server".into(),
        }
    }
}

/// A running server: the acceptor thread plus its shutdown handle.
pub struct Server {
    addr: SocketAddr,
    manager: Arc<TrackedMutex<SessionManager>>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `manager` in a background acceptor
    /// thread; returns once the listener is bound (so [`Server::addr`]
    /// is immediately connectable).
    pub fn spawn(manager: SessionManager, cfg: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let manager = Arc::new(TrackedMutex::new("server.sessions", manager));
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let manager = manager.clone();
            let shutdown = shutdown.clone();
            let server_name = cfg.server_name.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let manager = manager.clone();
                    let server_name = server_name.clone();
                    // connection threads end at bye/EOF; shutdown only
                    // waits for the acceptor (drivers close their
                    // connections first)
                    std::thread::spawn(move || {
                        let _ = handle_connection(stream, &manager, &server_name);
                    });
                }
            })
        };
        Ok(Server {
            addr,
            manager,
            shutdown,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared session manager (in-process drivers: bench, simtest).
    pub fn manager(&self) -> &Arc<TrackedMutex<SessionManager>> {
        &self.manager
    }

    /// Blocks until the acceptor thread exits (the serve binary's
    /// foreground mode — effectively forever, absent a crash).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    /// Stops accepting and joins the acceptor thread. The kill/restart
    /// cycle of the smoke test is exactly `shutdown` + a fresh
    /// [`Server::spawn`] over the same WAL root.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Maps a session-layer error onto its wire code.
fn error_frame(e: &ServerError) -> Response {
    let code = match e {
        ServerError::Engine(_) => "engine",
        ServerError::Wal(_) => "wal",
        ServerError::Protocol(_) => "protocol",
        ServerError::UnknownSession(_) => "unknown_session",
    };
    Response::Error {
        code: code.into(),
        msg: e.to_string(),
    }
}

fn write_frame(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut line = resp.to_json().to_string();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// One connection: hello handshake, then a frame-reply loop.
fn handle_connection(
    stream: TcpStream,
    manager: &Arc<TrackedMutex<SessionManager>>,
    server_name: &str,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;
    let mut line = String::new();

    // --- hello
    if reader.read_line(&mut line)? == 0 {
        return Ok(());
    }
    let hello = json::parse(line.trim_end())
        .map_err(json_io)
        .and_then(|j| Request::from_json(&j).map_err(json_io));
    let client_proto = match hello {
        Ok(Request::Hello { proto, .. }) => proto,
        Ok(_) => {
            write_frame(
                &mut stream,
                &Response::Error {
                    code: "bad_frame".into(),
                    msg: "first frame must be hello".into(),
                },
            )?;
            return Ok(());
        }
        Err(_) => {
            write_frame(
                &mut stream,
                &Response::Error {
                    code: "bad_frame".into(),
                    msg: "unparseable hello frame".into(),
                },
            )?;
            return Ok(());
        }
    };
    match negotiate(client_proto) {
        Ok(agreed) => write_frame(
            &mut stream,
            &Response::HelloAck {
                proto: agreed,
                server: server_name.to_string(),
            },
        )?,
        Err(err) => {
            write_frame(&mut stream, &err)?;
            return Ok(());
        }
    }

    // --- frame loop
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let req = match json::parse(line.trim_end()).and_then(|j| Request::from_json(&j)) {
            Ok(r) => r,
            Err(e) => {
                write_frame(
                    &mut stream,
                    &Response::Error {
                        code: "bad_frame".into(),
                        msg: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        let resp = match req {
            Request::Bye => return Ok(()),
            Request::Hello { proto, .. } => match negotiate(proto) {
                // a re-hello renegotiates (idempotent for well-behaved
                // clients, harmless otherwise)
                Ok(agreed) => Response::HelloAck {
                    proto: agreed,
                    server: server_name.to_string(),
                },
                Err(err) => err,
            },
            Request::Open(spec) => {
                let mut mgr = manager.lock().expect("sessions mutex poisoned"); // PANIC-OK: poisoning means a handler already panicked; propagate it
                match mgr.open(&spec) {
                    Ok(reply) => Response::opened(&spec.name, &reply),
                    Err(e) => error_frame(&e),
                }
            }
            Request::Query { session, spec } => {
                let mut mgr = manager.lock().expect("sessions mutex poisoned"); // PANIC-OK: poisoning means a handler already panicked; propagate it
                match mgr.query(&session, &spec) {
                    Ok(reply) => Response::Result { session, reply },
                    Err(e) => error_frame(&e),
                }
            }
            Request::Recover { session } => {
                let mut mgr = manager.lock().expect("sessions mutex poisoned"); // PANIC-OK: poisoning means a handler already panicked; propagate it
                match mgr.recover(&session) {
                    Ok(queries) => Response::Recovered { session, queries },
                    Err(e) => error_frame(&e),
                }
            }
            Request::Close { session } => {
                let mut mgr = manager.lock().expect("sessions mutex poisoned"); // PANIC-OK: poisoning means a handler already panicked; propagate it
                match mgr.close(&session) {
                    Ok(()) => Response::Closed { session },
                    Err(e) => error_frame(&e),
                }
            }
        };
        write_frame(&mut stream, &resp)?;
    }
}

fn json_io(e: ontology::json::JsonError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// A minimal in-process client for tests, the smoke driver, and the
/// bench harness: one connection, blocking request→reply calls.
pub struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
    /// The protocol version the hello negotiated.
    pub proto: u32,
}

impl Client {
    /// Connects and performs the hello handshake.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut c = Client {
            reader,
            stream,
            proto: 0,
        };
        let ack = c.call(&Request::Hello {
            proto: PROTO_VERSION,
            client: "oassis-client".into(),
        })?;
        match ack {
            Response::HelloAck { proto, .. } => c.proto = proto,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("handshake refused: {other:?}"),
                ))
            }
        }
        Ok(c)
    }

    /// Sends one frame and reads one reply.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        let mut line = req.to_json().to_string();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        self.stream.flush()?;
        line.clear();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server hung up",
            ));
        }
        json::parse(line.trim_end())
            .and_then(|j| Response::from_json(&j))
            .map_err(json_io)
    }

    /// Sends `bye` and closes.
    pub fn bye(mut self) -> io::Result<()> {
        let mut line = Request::Bye.to_json().to_string();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        self.stream.flush()
    }
}
