//! Crash-recovery suite: the kill-at-tick fault class against the
//! session manager's WAL, without the TCP layer in between.
//!
//! The oracle (mirroring the cluster simulation's shard-equivalence
//! oracle, with the crash cut playing the role of the partition):
//!
//! 1. a query that *finished* before the kill must recover to its
//!    recorded `SemanticOutcome` digest bit-identically;
//! 2. a query cut down mid-run must recover without panicking to a
//!    replayable prefix state;
//! 3. re-running the cut query on the recovered session (resumption
//!    over the paged-in answer cache) must land on the fault-free
//!    digest — and ask strictly fewer fresh questions than a cold run;
//! 4. snapshot compaction must be invisible: kill-at-tick with and
//!    without snapshots recovers identical digests.

mod common;

use common::{manager, spec, temp_root};
use oassis_server::KillSwitch;
use oassis_server::QuerySpec;
use ontology::domains::figure1;
use proptest::prelude::*;
use std::sync::Arc;

fn qspec() -> QuerySpec {
    QuerySpec {
        src: figure1::SIMPLE_QUERY.to_string(),
        threshold: None,
        batch_width: 1,
        max_questions: None,
        seed: 3,
    }
}

/// Fault-free reference: digest and question count of a cold run.
fn fault_free(seed: u64) -> (String, usize) {
    let ont = Arc::new(figure1::ontology());
    let root = temp_root(&format!("ref-{seed}"));
    let mut mgr = manager(&ont, &root);
    let mut sp = spec("ref");
    sp.seed = seed;
    mgr.open(&sp).unwrap();
    let mut qs = qspec();
    qs.seed = seed;
    let reply = mgr.query("ref", &qs).unwrap();
    let _ = std::fs::remove_dir_all(&root);
    (reply.digest, reply.fresh)
}

/// One kill/restart/verify cycle; returns the recovered digests (qid
/// order) and the resumed re-run's reply digest + fresh count.
fn kill_cycle(seed: u64, kill_tick: u32, snapshot_every: u32) -> (Vec<String>, String, usize) {
    let ont = Arc::new(figure1::ontology());
    let root = temp_root(&format!("kill-{seed}-{kill_tick}-{snapshot_every}"));
    let mut sp = spec("s");
    sp.seed = seed;
    let mut qs = qspec();
    qs.seed = seed;

    // --- pre-crash process: one finished query, then arm and cut
    let kill = KillSwitch::new();
    {
        let mut mgr = manager(&ont, &root)
            .with_snapshot_every(snapshot_every)
            .with_kill(kill.clone());
        mgr.open(&sp).unwrap();
        mgr.query("s", &qs).unwrap(); // qid 1 finishes durably
        kill.arm(kill_tick);
        let _ = mgr.query("s", &qs); // qid 2's durable suffix is cut
        assert!(
            kill.killed() || kill_tick > 1_000,
            "the kill tick never fired — pick one inside the run"
        );
    }

    // --- restart: fresh manager over the same WAL root
    let mut mgr = manager(&ont, &root).with_snapshot_every(snapshot_every);
    let opened = mgr.open(&sp).unwrap();
    assert!(opened.resumed, "durable state must page back in");
    let recovered = mgr.recover("s").unwrap();
    assert_eq!(recovered.len(), 2, "both registered queries recover");
    // oracle 1: the finished query's replay matches its recorded digest
    assert_eq!(
        recovered[0].verified,
        Some(true),
        "pre-crash digest must reproduce bit-identically: recorded {:?}, replayed {}",
        recovered[0].recorded_digest,
        recovered[0].digest
    );
    // oracle 2: the cut query replays (no done record, no panic)
    assert_eq!(recovered[1].recorded_digest, None);
    let digests: Vec<String> = recovered.iter().map(|r| r.digest.clone()).collect();

    // oracle 3: resumption over the paged-in cache
    let reply = mgr.query("s", &qs).unwrap();
    let _ = std::fs::remove_dir_all(&root);
    (digests, reply.digest, reply.fresh)
}

#[test]
fn kill_at_tick_matrix_recovers_bit_identically() {
    // the push matrix of the ISSUE: 3 seeds × snapshot-vs-no-snapshot
    for seed in [3u64, 11, 29] {
        let (want_digest, cold_fresh) = fault_free(seed);
        assert!(cold_fresh > 4, "reference run must actually mine");
        for kill_tick in [2u32, 5, 9] {
            let (snap_dig, snap_reply, snap_fresh) = kill_cycle(seed, kill_tick, 2);
            let (flat_dig, flat_reply, flat_fresh) = kill_cycle(seed, kill_tick, 0);
            // oracle 4: compaction is invisible to recovery
            assert_eq!(
                snap_dig, flat_dig,
                "seed {seed} kill@{kill_tick}: snapshotted and flat WALs diverged"
            );
            // oracle 3: both resumptions land on the fault-free digest
            assert_eq!(snap_reply, want_digest, "seed {seed} kill@{kill_tick}");
            assert_eq!(flat_reply, want_digest, "seed {seed} kill@{kill_tick}");
            assert_eq!(snap_fresh, flat_fresh);
            // the paged-in cache must save crowd work: everything asked
            // before the kill tick is a hit on the re-run
            assert!(
                snap_fresh < cold_fresh,
                "seed {seed} kill@{kill_tick}: resumption asked {snap_fresh} fresh \
                 questions, cold run asked {cold_fresh} — the recovered cache did nothing"
            );
        }
    }
}

#[test]
fn clean_restart_verifies_and_asks_nothing() {
    let ont = Arc::new(figure1::ontology());
    let root = temp_root("clean");
    let sp = spec("s");
    let first = {
        let mut mgr = manager(&ont, &root);
        mgr.open(&sp).unwrap();
        mgr.query("s", &qspec()).unwrap()
    };
    let mut mgr = manager(&ont, &root);
    mgr.open(&sp).unwrap();
    let recovered = mgr.recover("s").unwrap();
    assert_eq!(recovered.len(), 1);
    assert_eq!(recovered[0].verified, Some(true));
    assert_eq!(recovered[0].digest, first.digest);
    assert!(recovered[0].complete);
    // the whole answer database is cached: a repeat is all hits
    let again = mgr.query("s", &qspec()).unwrap();
    assert_eq!(again.digest, first.digest);
    assert_eq!(again.fresh, 0, "clean restart must not re-ask the crowd");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_tail_on_a_killed_wal_still_recovers() {
    let ont = Arc::new(figure1::ontology());
    let root = temp_root("torn");
    let sp = spec("s");
    {
        let mut mgr = manager(&ont, &root);
        mgr.open(&sp).unwrap();
        mgr.query("s", &qspec()).unwrap();
    }
    // tear every member WAL mid-record (a crash inside write(2))
    let dir = root.join("s");
    let mut tore = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if name.starts_with("member-") && name.ends_with(".wal") {
            let bytes = std::fs::read(&path).unwrap();
            if bytes.len() > 10 {
                std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
                tore += 1;
            }
        }
    }
    assert!(tore > 0, "expected member WALs to tear");
    let mut mgr = manager(&ont, &root);
    mgr.open(&sp).unwrap();
    // recovery must not panic; the lost suffix means the digest check
    // can fail (verified == Some(false)) but the replay itself holds
    let recovered = mgr.recover("s").unwrap();
    assert_eq!(recovered.len(), 1);
    assert!(recovered[0].verified.is_some());
    // and resumption still converges to the true answer
    let reply = mgr.query("s", &qspec()).unwrap();
    let (want, _) = {
        let r = temp_root("torn-ref");
        let mut m = manager(&ont, &r);
        m.open(&sp).unwrap();
        let reply = m.query("s", &qspec()).unwrap();
        let _ = std::fs::remove_dir_all(&r);
        (reply.digest, reply.fresh)
    };
    assert_eq!(reply.digest, want);
    let _ = std::fs::remove_dir_all(&root);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any kill tick recovers: the finished query verifies, the cut
    /// query replays, resumption lands on the fault-free digest.
    #[test]
    fn any_kill_tick_recovers(seed in 1u64..40, kill_tick in 1u32..14) {
        let (want, _) = fault_free(seed);
        let (digests, resumed, _) = kill_cycle(seed, kill_tick, 2);
        prop_assert_eq!(digests.len(), 2);
        prop_assert_eq!(resumed, want);
    }
}
