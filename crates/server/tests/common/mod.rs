//! Shared harness for the server integration tests: the crate's
//! deterministic Figure-1 crowd provider and temp-dir WAL roots.

use oassis_server::{Figure1Provider, SessionManager, SessionSpec};
use ontology::Ontology;
use std::path::PathBuf;
use std::sync::Arc;

/// A manager over a fresh provider and `root`.
pub fn manager(ont: &Arc<Ontology>, root: &PathBuf) -> SessionManager {
    SessionManager::new(
        ont.clone(),
        Box::new(Figure1Provider::new(ont.clone())),
        root,
    )
}

/// A unique temp WAL root, cleared of any previous run's leftovers.
pub fn temp_root(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("oassis-server-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The session spec every test session uses.
pub fn spec(name: &str) -> SessionSpec {
    SessionSpec {
        name: name.to_string(),
        seed: 7,
        members: 2,
    }
}
