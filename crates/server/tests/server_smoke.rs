//! End-to-end smoke over loopback TCP: hello negotiation, session
//! open, queries, kill/restart/verify — the same cycle the CI
//! `server-smoke` job drives.

mod common;

use common::{manager, temp_root};
use oassis_server::{
    digest_hex, Client, QuerySpec, Request, Response, Server, ServerConfig, SessionSpec,
    PROTO_VERSION,
};
use ontology::domains::figure1;
use std::sync::Arc;

fn qspec(seed: u64) -> QuerySpec {
    QuerySpec {
        src: figure1::SIMPLE_QUERY.to_string(),
        threshold: None,
        batch_width: 1,
        max_questions: None,
        seed,
    }
}

fn spawn(ont: &Arc<ontology::Ontology>, root: &std::path::PathBuf) -> Server {
    Server::spawn(manager(ont, root), &ServerConfig::default()).expect("bind loopback")
}

#[test]
fn three_queries_then_kill_restart_verify() {
    let ont = Arc::new(figure1::ontology());
    let root = temp_root("smoke");
    let session = SessionSpec {
        name: "smoke".into(),
        seed: 7,
        members: 2,
    };

    // --- first server lifetime: open + 3 queries
    let server = spawn(&ont, &root);
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.proto, PROTO_VERSION);

    let opened = client.call(&Request::Open(session.clone())).unwrap();
    let Response::Opened { resumed, .. } = opened else {
        panic!("expected opened, got {opened:?}")
    };
    assert!(!resumed, "fresh root must not resume");

    let mut digests = Vec::new();
    for seed in [3u64, 3, 5] {
        let resp = client
            .call(&Request::Query {
                session: "smoke".into(),
                spec: qspec(seed),
            })
            .unwrap();
        let Response::Result { reply, .. } = resp else {
            panic!("expected result, got {resp:?}")
        };
        assert!(reply.complete);
        assert!(!reply.answers.is_empty(), "the running example has MSPs");
        digests.push(reply.digest);
    }
    // identical spec → identical digest; the repeat is served from cache
    assert_eq!(digests[0], digests[1]);
    client.bye().unwrap();
    // kill the server process model
    server.shutdown();

    // --- second lifetime over the same WAL root: recover and verify
    let server = spawn(&ont, &root);
    let mut client = Client::connect(server.addr()).unwrap();
    let opened = client.call(&Request::Open(session)).unwrap();
    let Response::Opened {
        resumed, queries, ..
    } = opened
    else {
        panic!("expected opened, got {opened:?}")
    };
    assert!(resumed);
    assert_eq!(queries, vec![1, 2, 3]);

    let resp = client
        .call(&Request::Recover {
            session: "smoke".into(),
        })
        .unwrap();
    let Response::Recovered { queries, .. } = resp else {
        panic!("expected recovered, got {resp:?}")
    };
    assert_eq!(queries.len(), 3);
    for q in &queries {
        assert_eq!(
            q.verified,
            Some(true),
            "qid {} replayed {} but recorded {:?}",
            q.qid,
            q.digest,
            q.recorded_digest
        );
    }
    assert_eq!(queries[0].digest, digests[0]);
    assert_eq!(queries[2].digest, digests[2]);

    // close pages the session out; a follow-up query pages it back in
    let resp = client
        .call(&Request::Close {
            session: "smoke".into(),
        })
        .unwrap();
    assert!(matches!(resp, Response::Closed { .. }));
    let resp = client
        .call(&Request::Query {
            session: "smoke".into(),
            spec: qspec(3),
        })
        .unwrap();
    let Response::Result { reply, .. } = resp else {
        panic!("expected result, got {resp:?}")
    };
    assert_eq!(reply.digest, digests[0]);
    assert_eq!(reply.fresh, 0, "paged-in cache serves every repeat");

    client.bye().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn protocol_errors_keep_the_connection_alive() {
    let ont = Arc::new(figure1::ontology());
    let root = temp_root("errors");
    let server = spawn(&ont, &root);
    let mut client = Client::connect(server.addr()).unwrap();

    // unknown session
    let resp = client
        .call(&Request::Query {
            session: "ghost".into(),
            spec: qspec(1),
        })
        .unwrap();
    let Response::Error { code, .. } = resp else {
        panic!("expected error, got {resp:?}")
    };
    assert_eq!(code, "unknown_session");

    // bad session name
    let resp = client
        .call(&Request::Open(SessionSpec {
            name: "../escape".into(),
            seed: 0,
            members: 1,
        }))
        .unwrap();
    let Response::Error { code, .. } = resp else {
        panic!("expected error, got {resp:?}")
    };
    assert_eq!(code, "protocol");

    // the connection still works afterwards
    let resp = client
        .call(&Request::Open(SessionSpec {
            name: "ok".into(),
            seed: 1,
            members: 1,
        }))
        .unwrap();
    assert!(matches!(resp, Response::Opened { .. }));

    client.bye().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn digest_hex_is_sixteen_lowercase_digits() {
    assert_eq!(digest_hex(0), "0000000000000000");
    assert_eq!(digest_hex(u64::MAX), "ffffffffffffffff");
    assert_eq!(digest_hex(0xABCD), "000000000000abcd");
}
