//! Cross-file rule fixtures: planted D7/D8/D9 violations scanned
//! through [`audit::audit_files`] (the same multi-file path the real
//! workspace scan takes), asserted down to the exact `rule@line` set.
//!
//! The planted lock inversion here is the static half of the two-layer
//! D7 story; `tests/lockorder_agreement.rs` at the workspace root
//! replays the same shape against the runtime sanitizer.

use audit::audit_files;

/// Scans the given `(path, source)` pairs single-threaded and returns
/// every open finding as `(rule, line, path)`.
fn scan(sources: &[(&str, &str)]) -> Vec<(String, usize, String)> {
    let owned: Vec<(String, String)> = sources
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    audit_files(&owned, 1)
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line, f.path.clone()))
        .collect()
}

#[test]
fn d7_fires_on_double_lock_inversion_and_par_under_lock() {
    let got = scan(&[(
        "crates/planted/src/locks.rs",
        include_str!("fixtures/d7_locks.rs"),
    )]);
    let d7: Vec<usize> = got
        .iter()
        .filter(|(r, _, _)| r == "D7")
        .map(|&(_, line, _)| line)
        .collect();
    assert_eq!(
        d7,
        vec![15, 21, 27, 33],
        "double-lock@15, both inversion witnesses@21/27, par-under-lock@33: {got:?}"
    );
    assert!(
        got.iter().all(|(r, _, _)| r == "D7"),
        "nothing but D7 fires on the lock fixture: {got:?}"
    );
}

#[test]
fn d7_messages_name_the_failure_modes() {
    let owned = vec![(
        "crates/planted/src/locks.rs".to_string(),
        include_str!("fixtures/d7_locks.rs").to_string(),
    )];
    let report = audit_files(&owned, 1);
    let msg = |line: usize| -> String {
        report
            .findings
            .iter()
            .find(|f| f.line == line)
            .map(|f| f.message.clone())
            .unwrap_or_default()
    };
    assert!(msg(15).contains("still held"), "double-lock: {}", msg(15));
    assert!(msg(21).contains("cycle"), "inversion: {}", msg(21));
    assert!(msg(33).contains("while holding"), "par: {}", msg(33));
}

#[test]
fn d8_catches_cross_file_digest_drift() {
    let got = scan(&[
        (
            "crates/planted/src/outcome.rs",
            include_str!("fixtures/d8_outcome.rs"),
        ),
        (
            "crates/planted/src/digest.rs",
            include_str!("fixtures/d8_digest.rs"),
        ),
    ]);
    assert_eq!(
        got,
        vec![(
            "D8".to_string(),
            7,
            "crates/planted/src/outcome.rs".to_string()
        )],
        "exactly the unfolded `flags` field fires, at its declaration"
    );
}

#[test]
fn d9_catches_catch_all_and_missing_variant() {
    let got = scan(&[(
        "crates/planted/src/dispatch.rs",
        include_str!("fixtures/d9_match.rs"),
    )]);
    let d9: Vec<usize> = got
        .iter()
        .filter(|(r, _, _)| r == "D9")
        .map(|&(_, line, _)| line)
        .collect();
    assert_eq!(
        d9,
        vec![15, 20],
        "catch-all arm@15, variant-missing match header@20: {got:?}"
    );
    assert!(
        got.iter().all(|(r, _, _)| r == "D9"),
        "nothing but D9 fires on the match fixture: {got:?}"
    );
}

#[test]
fn cross_file_findings_are_suppressible_with_reasons() {
    let src = include_str!("fixtures/d9_match.rs").replace(
        "        _ => 0,",
        "        // audit: allow(D9, planted)\n        _ => 0,",
    );
    let got = scan(&[("crates/planted/src/dispatch.rs", &src)]);
    let d9: Vec<usize> = got
        .iter()
        .filter(|(r, _, _)| r == "D9")
        .map(|&(_, line, _)| line)
        .collect();
    assert_eq!(
        d9,
        vec![21],
        "the allowed catch-all is suppressed; the missing-variant match \
         (shifted one line by the marker) still fires: {got:?}"
    );
}

#[test]
fn report_bytes_are_identical_at_any_worker_width() {
    let root = audit::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root with Cargo.toml");
    let files = audit::workspace_files(&root).expect("workspace listing");
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|rel| {
            let src = std::fs::read_to_string(root.join(rel)).expect("source file reads");
            (rel.clone(), src)
        })
        .collect();
    let golden = audit_files(&sources, 1).to_json();
    for width in [2, 8] {
        assert_eq!(
            audit_files(&sources, width).to_json(),
            golden,
            "AUDIT.json bytes must not depend on the worker width ({width})"
        );
    }
}
