//! Fixture-based rule tests: one planted violation per rule (D1–D6),
//! a clean file, and a fully suppressed file. Fixtures live in
//! `tests/fixtures/` (excluded from the workspace walk — they are
//! planted violations, not code) and are audited in-process under
//! virtual engine paths so every scope gate is exercised.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use audit::audit_source;

/// `(rule, line)` pairs of the unsuppressed findings.
fn fired(path: &str, src: &str) -> Vec<(String, usize)> {
    audit_source(path, src, None)
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect()
}

#[test]
fn d1_fires_on_push_digest_and_returned_vec() {
    let src = include_str!("fixtures/d1_hash_order.rs");
    let got = fired("crates/core/src/planted.rs", src);
    assert_eq!(
        got,
        vec![
            ("D1".to_string(), 8),
            ("D1".to_string(), 15),
            ("D1".to_string(), 22),
        ],
        "D1 must fire on the for-push loop, the digest loop and the returned collect"
    );
}

#[test]
fn d1_is_scoped_to_engine_crates() {
    let src = include_str!("fixtures/d1_hash_order.rs");
    assert!(
        fired("crates/ontology/src/planted.rs", src).is_empty(),
        "D1 only covers crates/{{core,crowd,simtest}}"
    );
    assert!(
        fired("crates/core/tests/planted.rs", src).is_empty(),
        "test code is exempt from D1"
    );
}

#[test]
fn d2_fires_on_every_nondeterminism_source() {
    let src = include_str!("fixtures/d2_nondet.rs");
    let got = fired("crates/core/src/planted.rs", src);
    assert_eq!(
        got,
        vec![
            ("D2".to_string(), 4),
            ("D2".to_string(), 5),
            ("D2".to_string(), 6),
            ("D2".to_string(), 7),
        ],
        "D2 must fire on Instant, SystemTime, thread_rng and env::var"
    );
    assert!(
        fired("crates/bench/src/planted.rs", src).is_empty(),
        "crates/bench is exempt from D2"
    );
    assert!(
        fired("tests/planted.rs", src).is_empty(),
        "test code is exempt from D2"
    );
}

#[test]
fn d3_fires_on_naked_unsafe_and_counts_the_census() {
    let src = include_str!("fixtures/d3_unsafe.rs");
    let fa = audit_source("vendor/minipool/src/planted.rs", src, None);
    let got: Vec<(String, usize)> = fa
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![("D3".to_string(), 4)],
        "the naked unsafe fires; the SAFETY-commented one does not"
    );
    assert_eq!(fa.unsafe_count, 2, "census counts justified sites too");
}

#[test]
fn d4_fires_on_unwrap_expect_and_indexing() {
    let src = include_str!("fixtures/d4_panic.rs");
    let got = fired("crates/core/src/engine.rs", src);
    assert_eq!(
        got,
        vec![
            ("D4".to_string(), 5),
            ("D4".to_string(), 6),
            ("D4".to_string(), 7),
        ],
        "unwrap@5, expect@6, index@7 fire; the PANIC-OK index@10 does not"
    );
    assert!(
        fired("crates/audit/src/rules.rs", src).is_empty(),
        "D4 only covers the engine crates, not the audit tooling"
    );
}

#[test]
fn d5_fires_on_a_bare_crate_root() {
    let src = include_str!("fixtures/d5_lints.rs");
    let got = fired("crates/planted/src/lib.rs", src);
    assert_eq!(
        got,
        vec![("D5".to_string(), 1), ("D5".to_string(), 1)],
        "missing deny(unused_must_use) and missing forbid(unsafe_code) both fire"
    );
    assert!(
        fired("crates/planted/src/other.rs", src).is_empty(),
        "D5 only covers crate roots"
    );
    // A crate root that carries the agreed set is clean.
    let good = "#![forbid(unsafe_code)]\n#![deny(unused_must_use)]\npub fn f() {}\n";
    assert!(fired("crates/planted/src/lib.rs", good).is_empty());
    // An unsafe-using crate swaps the forbid for unsafe_op_in_unsafe_fn.
    let unsafe_root = "#![deny(unsafe_op_in_unsafe_fn)]\n#![deny(unused_must_use)]\n\
                       pub fn g(p: *const u8) -> u8 {\n    // SAFETY: caller contract.\n    \
                       unsafe { *p }\n}\n";
    assert!(fired("crates/planted/src/lib.rs", unsafe_root).is_empty());
}

#[test]
fn d6_fires_on_retired_entry_points() {
    let src = include_str!("fixtures/d6_deprecated.rs");
    let want = vec![
        ("D6".to_string(), 5),
        ("D6".to_string(), 6),
        ("D6".to_string(), 7),
        ("D6".to_string(), 13),
    ];
    let got = fired("crates/bench/src/planted.rs", src);
    assert_eq!(
        got, want,
        "execute@5, execute_concurrent@6, execute_rules@7 and the \
         redefinition@13 fire; the string literal and the `run` call \
         do not"
    );
    assert_eq!(
        fired("crates/core/src/engine.rs", src),
        want,
        "the wrappers' old home file is no longer exempt — D6 enforces \
         at the definition level everywhere"
    );
    assert_eq!(
        fired("crates/core/tests/planted.rs", src),
        want,
        "test code is not exempt from D6 either"
    );
}

#[test]
fn clean_fixture_produces_zero_findings() {
    let src = include_str!("fixtures/clean.rs");
    let fa = audit_source("crates/core/src/engine.rs", src, None);
    assert!(
        fa.findings.is_empty(),
        "clean fixture must not fire: {:?}",
        fa.findings
    );
    assert!(fa.suppressed.is_empty() && fa.suppressions.is_empty());
}

#[test]
fn suppressed_fixture_round_trips_the_grammar() {
    let src = include_str!("fixtures/suppressed.rs");
    let fa = audit_source("crates/core/src/engine.rs", src, None);
    assert!(
        fa.findings.is_empty(),
        "every planted violation is suppressed: {:?}",
        fa.findings
    );
    // One suppressed finding per rule D1–D4.
    let mut rules: Vec<&str> = fa.suppressed.iter().map(|f| f.rule.as_str()).collect();
    rules.sort();
    assert_eq!(rules, vec!["D1", "D2", "D3", "D4"]);
    // The inventory round-trips rule, scope and reason, and every
    // marker is used.
    let inv: Vec<(String, bool, bool)> = fa
        .suppressions
        .iter()
        .map(|s| (s.rule.clone(), s.file_wide, s.used))
        .collect();
    assert_eq!(
        inv,
        vec![
            ("D2".to_string(), true, true),
            ("D1".to_string(), false, true),
            ("D4".to_string(), false, true),
            ("D3".to_string(), false, true),
        ]
    );
    assert!(
        fa.suppressions
            .iter()
            .all(|s| s.reason.starts_with("demo - ")),
        "reasons survive parsing verbatim"
    );
}

#[test]
fn malformed_suppressions_are_findings() {
    let src = "use std::time::Instant; // audit: allow(D2)\n";
    let got = fired("crates/core/src/planted.rs", src);
    assert_eq!(
        got,
        vec![("D2".to_string(), 1), ("SUP".to_string(), 1)],
        "a reason-less suppression does not suppress, and is itself reported"
    );
    let src = "let x = 1; // audit: allow(D99, made-up rule)\n";
    let got = fired("crates/core/src/planted.rs", src);
    assert_eq!(got, vec![("SUP".to_string(), 1)]);
}
