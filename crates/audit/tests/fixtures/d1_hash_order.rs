// Planted D1 violations: hash-ordered iteration feeding collection
// pushes, a digest, and a returned vector. Audited under the virtual
// path crates/core/src/planted.rs — never compiled.
use std::collections::{HashMap, HashSet};

pub fn leak_for_loop(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m.iter() {
        out.push(*k);
    }
    out
}

pub fn leak_digest(m: &HashMap<u32, u32>, h: &mut Fnv) -> u64 {
    for (k, v) in m.iter() {
        h.write_u64(((*k as u64) << 32) | *v as u64);
    }
    h.finish()
}

pub fn leak_returned_vec(s: &HashSet<u32>) -> Vec<u32> {
    s.iter().copied().collect()
}
