// One violation per rule, each covered by the suppression grammar —
// zero findings expected, four reasoned suppressions in the
// inventory. Audited under the virtual path crates/core/src/engine.rs.
// audit: allow-file(D2, demo - this fixture exercises the file-wide grammar)
use std::collections::HashMap;

pub fn all_suppressed(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    // audit: allow(D1, demo - downstream consumer is order-insensitive)
    for (k, _) in m.iter() {
        out.push(*k);
    }
    let _t = std::time::Instant::now();
    let _first = out.first().unwrap(); // audit: allow(D4, demo - non-empty by construction)
    out
}

pub fn spicy(p: *const u32) -> u32 {
    unsafe { *p } // audit: allow(D3, demo - safety argued in the module docs)
}
