// Planted D4 violations: unwrap, expect and slice indexing in engine
// code, plus one justified index. Audited under the virtual path
// crates/core/src/engine.rs.
pub fn panics(v: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = v.iter().next().expect("non-empty");
    let c = v[0];
    // PANIC-OK: index 1 bounded by the caller contract (len >= 2).
    let d = v[1];
    a + b + c + d
}
