// Planted D3 material: one naked `unsafe`, one justified. The census
// must count both. Audited under vendor/minipool/src/planted.rs.
pub fn naked(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn justified(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid, aligned and live.
    unsafe { *p }
}
