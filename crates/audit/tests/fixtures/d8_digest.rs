// The digest half of the planted D8 pair — folds `msps`, forgets
// `flags`. Never compiled; fixture text only.

/// FNV-folds the outcome (incompletely — that is the point).
pub fn planted_outcome_digest(o: &PlantedOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h ^= o.msps;
    h = h.wrapping_mul(0x0100_0000_01b3);
    h
}
