// Planted D2 violations: every banned nondeterminism source once.
// Audited under the virtual path crates/core/src/planted.rs.
pub fn nondet() -> u64 {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    let mut r = rand::thread_rng();
    let e = std::env::var("OASSIS_SEED");
    0
}
