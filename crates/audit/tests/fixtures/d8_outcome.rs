// Planted D8 drift: `flags` is engine state but never folded into the
// digest in `d8_digest.rs`. Never compiled; fixture text only.

/// A planted semantic outcome with one field the digest misses.
pub struct PlantedOutcome {
    pub msps: u64,
    pub flags: u32,
}
