// Planted D6 violations: calls to the retired `Oassis` entry points,
// and a re-declaration of one of the deleted wrappers. The string
// literal and the `run` call must not fire.
pub fn legacy_calls(engine: &Oassis, crowd: &mut C) {
    let a = engine.execute(SRC, crowd, &agg, &cfg);
    let b = engine.execute_concurrent(&srcs, make, &cache, &agg, &cfg);
    let c = engine.execute_rules(SRC, crowd, &rcfg);
    let msg = "call .execute( somewhere else";
    let ok = engine.run(&request, binding, &agg);
    let _ = (a, b, c, msg, ok);
}

pub fn execute_rules(engine: &Oassis) -> u32 {
    let _ = engine;
    0
}
