// Planted D9 violations: a catch-all arm and a match missing a
// variant, both over an enum on the wire-exhaustiveness list. Never
// compiled; fixture text only.

/// A planted fault-schedule token enum.
pub enum FaultKind {
    Drop,
    Delay,
    Depart,
}

pub fn score(k: &FaultKind) -> u32 {
    match k {
        FaultKind::Drop => 1,
        _ => 0,
    }
}

pub fn partial(k: &FaultKind) -> u32 {
    match k {
        FaultKind::Drop => 1,
        FaultKind::Delay => 2,
    }
}
