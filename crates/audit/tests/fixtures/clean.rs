// Every rule-adjacent shape done right: sorted hash iteration,
// re-keyed collects, order-free terminals. Must produce zero findings
// under the virtual path crates/core/src/engine.rs.
use std::collections::{HashMap, HashSet};

pub fn sorted_keys(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn rekeyed(s: &HashSet<u32>) -> HashSet<u32> {
    s.iter().map(|x| x + 1).collect::<HashSet<u32>>()
}

pub fn rekeyed_btree(m: &HashMap<u32, u32>) -> Vec<u32> {
    let ordered: std::collections::BTreeMap<u32, u32> =
        m.iter().map(|(k, v)| (*k, *v)).collect();
    ordered.into_keys().collect()
}

pub fn order_free(m: &HashMap<u32, u32>) -> usize {
    m.values().filter(|v| **v > 0).count()
}

pub fn checked_access(v: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap_or(0);
    let b = v.first().copied().unwrap_or_default();
    a + b
}
