// Planted D7 violations — double-lock, AB/BA inversion and a worker
// fan-out under a held lock. Never compiled: the cross-file fixture
// tests scan this text through `audit_files` and assert the exact
// rule@line set.
use std::sync::Mutex;

pub struct Shared {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Shared {
    pub fn double(&self) -> u32 {
        let g1 = self.a.lock().unwrap();
        let g2 = self.a.lock().unwrap();
        *g1 + *g2
    }

    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }

    pub fn fan_out(&self) -> Vec<u32> {
        let g = self.a.lock().unwrap();
        minipool::par_map(2, &[*g, *g], |x| x + 1)
    }
}
