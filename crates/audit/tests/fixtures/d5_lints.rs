//! A crate root missing the agreed lint set (audited under the
//! virtual path crates/planted/src/lib.rs).

pub fn f() {}
