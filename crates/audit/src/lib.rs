//! `oassis-audit` — workspace determinism & safety static-analysis.
//!
//! Every correctness claim this repo makes (golden outcome digests,
//! width-independent parallel equivalence, bit-identical sim replays)
//! rests on the engine being deterministic. This crate enforces that
//! invariant mechanically, as nine named rules over the source tree:
//!
//! * **D1** — hash-order leaks: `HashMap`/`HashSet` iteration in
//!   `crates/{core,crowd,simtest}` must not feed ordered results
//!   unsorted.
//! * **D2** — nondeterminism sources: `SystemTime`, `Instant`,
//!   `thread_rng`, environment reads banned outside `crates/bench`
//!   and test code.
//! * **D3** — unsafe inventory: every `unsafe` needs `// SAFETY:`;
//!   a per-crate census is emitted.
//! * **D4** — panic surface: `unwrap`/`expect`/indexing in engine
//!   source under the audited path patterns needs `// PANIC-OK:`.
//! * **D5** — lint hygiene: crate roots carry the agreed
//!   `#![deny]`/`#![forbid]` set.
//! * **D6** — deprecated entry points route through `Oassis::run`.
//! * **D7** — lock discipline: acquisition-order cycles, double
//!   locks and fork-joins under a held guard, propagated over the
//!   intra-repo call graph ([`locks`]).
//! * **D8** — digest coverage: every struct feeding a digest fn has
//!   all fields folded in, or each omission is justified.
//! * **D9** — wire-op exhaustiveness: `match`es over the wire/fault
//!   enums name every variant, no catch-all arms.
//!
//! D1–D6 are per-file lexical passes; D7–D9 are whole-repo semantic
//! passes over a symbol table ([`symbols`]) and name-resolved call
//! graph ([`callgraph`]) built from the same token stream. Exemptions
//! use the grepable grammar `// audit: allow(D1, reason)` /
//! `// audit: allow-file(D2, reason)` (see [`suppress`]); a reason is
//! mandatory. Findings print as `file:line rule message`; the binary
//! exits non-zero on any unsuppressed finding and writes a
//! machine-readable `AUDIT.json` so drift is diffable PR-over-PR.
//!
//! There is no `syn` (the registry is unreachable): the scanner is a
//! hand-rolled comment/string-aware token pass, like the vendored
//! shims. DESIGN.md §11 and §16 document each rule with before/after
//! examples and the known blind spots of the heuristics.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;
pub mod scope;
pub mod segment;
pub mod suppress;
pub mod symbols;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use report::{Report, SuppressionRecord};
use rules::RawFinding;
use symbols::{SourceFile, SymbolTable};

/// One unsuppressed finding, ready to print as `file:line rule message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`D1`…`D9`, `SUP`).
    pub rule: String,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The known rule ids (used to validate suppression markers).
pub const RULE_IDS: [&str; 9] = ["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9"];

/// The audit result of a single source file.
#[derive(Debug, Clone, Default)]
pub struct FileAudit {
    /// Findings not covered by any suppression.
    pub findings: Vec<Finding>,
    /// Findings covered by a suppression (kept for counting).
    pub suppressed: Vec<Finding>,
    /// Every suppression marker in the file, with use tracking.
    pub suppressions: Vec<SuppressionRecord>,
    /// `unsafe` sites for the census.
    pub unsafe_count: usize,
}

/// Audits one file's source text under its workspace-relative `path`.
///
/// This is the in-process API the single-file fixture tests use;
/// `crate_has_unsafe` (for D5's either/or) defaults to "this file
/// contains `unsafe`" when `None`. Only the per-file rules D1–D6 run
/// here — the cross-file rules D7–D9 need the whole file set and run
/// in [`audit_files`].
pub fn audit_source(path: &str, src: &str, crate_has_unsafe: Option<bool>) -> FileAudit {
    let file = SourceFile::prepare(path, src);
    let has_unsafe = crate_has_unsafe.unwrap_or_else(|| {
        file.scanned
            .code
            .iter()
            .any(|l| rules::contains_word(l, "unsafe"))
    });
    audit_prepared(&file, has_unsafe, &[])
}

/// The per-file half of the audit: runs D1–D6 on a prepared file,
/// merges in any cross-file findings attributed to it, and applies
/// the suppression grammar to the combined set.
fn audit_prepared(file: &SourceFile, crate_has_unsafe: bool, extra: &[RawFinding]) -> FileAudit {
    let scanned = &file.scanned;
    let scope = &file.scope;
    let stmts = &file.stmts;

    let mut raw = Vec::new();
    raw.extend(rules::d1(scope, stmts));
    raw.extend(rules::d2(scope, scanned));
    let (d3_findings, unsafe_sites) = rules::d3(scanned);
    raw.extend(d3_findings);
    raw.extend(rules::d4(scope, scanned));
    raw.extend(rules::d5(scope, scanned, crate_has_unsafe));
    raw.extend(rules::d6(scope, scanned));
    raw.extend(extra.iter().cloned());

    let sups = suppress::collect(scanned);
    let mut used = vec![false; sups.len()];

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for rf in raw {
        let f = Finding {
            path: scope.path.clone(),
            line: rf.line,
            rule: rf.rule.to_string(),
            message: rf.message,
        };
        match suppress::matches(&sups, scanned, rf.rule, rf.line) {
            Some(i) if !sups[i].reason.is_empty() => {
                used[i] = true;
                suppressed.push(f);
            }
            _ => findings.push(f),
        }
    }
    // Malformed suppressions are findings themselves: the grammar is
    // the audit trail.
    for s in &sups {
        if s.reason.is_empty() {
            findings.push(Finding {
                path: scope.path.clone(),
                line: s.line,
                rule: "SUP".to_string(),
                message: format!("suppression for {} is missing a reason string", s.rule),
            });
        } else if !RULE_IDS.contains(&s.rule.as_str()) {
            findings.push(Finding {
                path: scope.path.clone(),
                line: s.line,
                rule: "SUP".to_string(),
                message: format!("suppression names unknown rule `{}`", s.rule),
            });
        }
    }
    findings.sort();
    suppressed.sort();

    let suppressions = sups
        .iter()
        .zip(used)
        .map(|(s, u)| SuppressionRecord {
            file: scope.path.clone(),
            line: s.line,
            rule: s.rule.clone(),
            reason: s.reason.clone(),
            file_wide: s.file_wide,
            used: u,
        })
        .collect();

    FileAudit {
        findings,
        suppressed,
        suppressions,
        unsafe_count: unsafe_sites.len(),
    }
}

/// Audits a set of `(path, source)` pairs as one workspace: per-file
/// rules plus the cross-file D7–D9 passes, fanned out over `threads`
/// minipool workers. The report is byte-identical at any width: file
/// preparation and per-file auditing use order-preserving `par_map`,
/// and every cross-file pass runs on the deterministic symbol table.
///
/// This is the API both [`audit_workspace`] and the multi-file
/// fixture tests go through.
pub fn audit_files(sources: &[(String, String)], threads: usize) -> Report {
    let prepared: Vec<SourceFile> = minipool::par_map(threads, sources, |(path, src)| {
        SourceFile::prepare(path, src)
    });

    // Which crates contain `unsafe` at all (for D5's either/or).
    let mut crate_unsafe: BTreeMap<String, bool> = BTreeMap::new();
    for f in &prepared {
        let has = f
            .scanned
            .code
            .iter()
            .any(|l| rules::contains_word(l, "unsafe"));
        *crate_unsafe
            .entry(f.scope.crate_name.clone())
            .or_insert(false) |= has;
    }

    // Cross-file passes (serial: they need the whole table).
    let table = SymbolTable::build(&prepared);
    let graph = callgraph::CallGraph::build(&prepared, &table);
    let mut extra: Vec<Vec<RawFinding>> = vec![Vec::new(); prepared.len()];
    for (fi, rf) in locks::d7(&prepared, &table, &graph)
        .into_iter()
        .chain(rules::d8(&prepared, &table))
        .chain(rules::d9(&prepared, &table))
    {
        extra[fi].push(rf);
    }

    let idx: Vec<usize> = (0..prepared.len()).collect();
    let audits: Vec<FileAudit> = minipool::par_map(threads, &idx, |&i| {
        let f = &prepared[i];
        let has = *crate_unsafe.get(&f.scope.crate_name).unwrap_or(&false);
        audit_prepared(f, has, &extra[i])
    });

    let mut report = Report::default();
    for (f, fa) in prepared.iter().zip(&audits) {
        report.add_file(&f.scope.crate_name, fa);
    }
    report.files_scanned = prepared.len();
    report
}

/// The statically derived lock acquisition-order edges for the whole
/// workspace, as sorted `(held, acquired)` lock-id pairs. The runtime
/// lock-order sanitizer's agreement test checks a sim run's observed
/// orders against these.
pub fn lock_order_edges(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let files = workspace_files(root)?;
    let mut prepared: Vec<SourceFile> = Vec::with_capacity(files.len());
    for rel in &files {
        prepared.push(SourceFile::prepare(
            rel,
            &std::fs::read_to_string(root.join(rel))?,
        ));
    }
    let table = SymbolTable::build(&prepared);
    let graph = callgraph::CallGraph::build(&prepared, &table);
    Ok(locks::order_edges(&prepared, &table, &graph))
}

/// Directories (workspace-relative) never scanned: build output, VCS
/// metadata, and the audit's own planted-violation fixtures.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "crates/audit/tests/fixtures"];

/// Collects every `.rs` file under `root`, workspace-relative, sorted
/// (deterministic report order).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if SKIP_DIRS.contains(&rel.as_str()) || rel.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Audits the whole workspace rooted at `root`, fanned out over the
/// default minipool width (`MINIPOOL_THREADS` respected).
pub fn audit_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for rel in &files {
        sources.push((rel.clone(), std::fs::read_to_string(root.join(rel))?));
    }
    Ok(audit_files(&sources, minipool::default_threads()))
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
