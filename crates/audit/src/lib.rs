//! `oassis-audit` — workspace determinism & safety static-analysis.
//!
//! Every correctness claim this repo makes (golden outcome digests,
//! width-independent parallel equivalence, bit-identical sim replays)
//! rests on the engine being deterministic. This crate enforces that
//! invariant mechanically, as five named rules over the source tree:
//!
//! * **D1** — hash-order leaks: `HashMap`/`HashSet` iteration in
//!   `crates/{core,crowd,simtest}` must not feed ordered results
//!   unsorted.
//! * **D2** — nondeterminism sources: `SystemTime`, `Instant`,
//!   `thread_rng`, environment reads banned outside `crates/bench`
//!   and test code.
//! * **D3** — unsafe inventory: every `unsafe` needs `// SAFETY:`;
//!   a per-crate census is emitted.
//! * **D4** — panic surface: `unwrap`/`expect`/indexing in the named
//!   engine files needs `// PANIC-OK:`.
//! * **D5** — lint hygiene: crate roots carry the agreed
//!   `#![deny]`/`#![forbid]` set.
//!
//! Exemptions use the grepable grammar `// audit: allow(D1, reason)` /
//! `// audit: allow-file(D2, reason)` (see [`suppress`]); a reason is
//! mandatory. Findings print as `file:line rule message`; the binary
//! exits non-zero on any unsuppressed finding and writes a
//! machine-readable `AUDIT.json` so drift is diffable PR-over-PR.
//!
//! There is no `syn` (the registry is unreachable): the scanner is a
//! hand-rolled comment/string-aware token pass, like the vendored
//! shims. DESIGN.md §11 documents each rule with before/after
//! examples and the known blind spots of the heuristics.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod segment;
pub mod suppress;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use report::{Report, SuppressionRecord};
use scope::FileScope;

/// One unsuppressed finding, ready to print as `file:line rule message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (`D1`…`D5`, `SUP`).
    pub rule: String,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The known rule ids (used to validate suppression markers).
pub const RULE_IDS: [&str; 6] = ["D1", "D2", "D3", "D4", "D5", "D6"];

/// The audit result of a single source file.
#[derive(Debug, Clone, Default)]
pub struct FileAudit {
    /// Findings not covered by any suppression.
    pub findings: Vec<Finding>,
    /// Findings covered by a suppression (kept for counting).
    pub suppressed: Vec<Finding>,
    /// Every suppression marker in the file, with use tracking.
    pub suppressions: Vec<SuppressionRecord>,
    /// `unsafe` sites for the census.
    pub unsafe_count: usize,
}

/// Audits one file's source text under its workspace-relative `path`.
///
/// This is the in-process API the fixture tests and the workspace
/// golden test use; `crate_has_unsafe` (for D5's either/or) defaults
/// to "this file contains `unsafe`" when `None`.
pub fn audit_source(path: &str, src: &str, crate_has_unsafe: Option<bool>) -> FileAudit {
    let scanned = lexer::scan(src);
    let scope = FileScope::new(path, &scanned);
    let stmts = segment::statements(&scanned);

    let mut raw = Vec::new();
    raw.extend(rules::d1(&scope, &stmts));
    raw.extend(rules::d2(&scope, &scanned));
    let (d3_findings, unsafe_sites) = rules::d3(&scanned);
    raw.extend(d3_findings);
    raw.extend(rules::d4(&scope, &scanned));
    let has_unsafe = crate_has_unsafe.unwrap_or(!unsafe_sites.is_empty());
    raw.extend(rules::d5(&scope, &scanned, has_unsafe));
    raw.extend(rules::d6(&scope, &scanned));

    let sups = suppress::collect(&scanned);
    let mut used = vec![false; sups.len()];

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for rf in raw {
        let f = Finding {
            path: scope.path.clone(),
            line: rf.line,
            rule: rf.rule.to_string(),
            message: rf.message,
        };
        match suppress::matches(&sups, &scanned, rf.rule, rf.line) {
            Some(i) if !sups[i].reason.is_empty() => {
                used[i] = true;
                suppressed.push(f);
            }
            _ => findings.push(f),
        }
    }
    // Malformed suppressions are findings themselves: the grammar is
    // the audit trail.
    for s in &sups {
        if s.reason.is_empty() {
            findings.push(Finding {
                path: scope.path.clone(),
                line: s.line,
                rule: "SUP".to_string(),
                message: format!("suppression for {} is missing a reason string", s.rule),
            });
        } else if !RULE_IDS.contains(&s.rule.as_str()) {
            findings.push(Finding {
                path: scope.path.clone(),
                line: s.line,
                rule: "SUP".to_string(),
                message: format!("suppression names unknown rule `{}`", s.rule),
            });
        }
    }
    findings.sort();
    suppressed.sort();

    let suppressions = sups
        .iter()
        .zip(used)
        .map(|(s, u)| SuppressionRecord {
            file: scope.path.clone(),
            line: s.line,
            rule: s.rule.clone(),
            reason: s.reason.clone(),
            file_wide: s.file_wide,
            used: u,
        })
        .collect();

    FileAudit {
        findings,
        suppressed,
        suppressions,
        unsafe_count: unsafe_sites.len(),
    }
}

/// Directories (workspace-relative) never scanned: build output, VCS
/// metadata, and the audit's own planted-violation fixtures.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "crates/audit/tests/fixtures"];

/// Collects every `.rs` file under `root`, workspace-relative, sorted
/// (deterministic report order).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if SKIP_DIRS.contains(&rel.as_str()) || rel.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Audits the whole workspace rooted at `root`.
pub fn audit_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    // First pass: which crates contain `unsafe` at all (for D5's
    // either/or on crate roots).
    let mut sources: Vec<(String, String)> = Vec::new();
    let mut crate_unsafe: BTreeMap<String, bool> = BTreeMap::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let scanned = lexer::scan(&src);
        let scope = FileScope::new(rel, &scanned);
        let has = scanned
            .code
            .iter()
            .any(|l| rules::contains_word(l, "unsafe"));
        *crate_unsafe.entry(scope.crate_name).or_insert(false) |= has;
        sources.push((rel.clone(), src));
    }

    let mut report = Report::default();
    for (rel, src) in &sources {
        let scanned = lexer::scan(src);
        let scope = FileScope::new(rel, &scanned);
        let fa = audit_source(
            rel,
            src,
            Some(*crate_unsafe.get(&scope.crate_name).unwrap_or(&false)),
        );
        report.add_file(&scope.crate_name, &fa);
    }
    report.files_scanned = sources.len();
    Ok(report)
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
