//! Comment- and string-aware source splitter.
//!
//! The registry is unreachable, so there is no `syn` here: rules match
//! against a line-oriented view of the source where string/char-literal
//! *contents* are blanked out (the delimiting quotes survive, so token
//! boundaries stay visible) and comments are routed to a parallel
//! per-line channel. Rules that look for code tokens scan `code`;
//! rules that look for annotations (`// SAFETY:`, `// PANIC-OK:`,
//! `// audit: allow(...)`) scan `comments`. Line numbering is shared,
//! 1-based via [`Scanned::line`].
//!
//! Handled: line comments, nested block comments, doc comments,
//! string literals with escapes, raw strings `r#"…"#` (any hash
//! count), byte and raw-byte strings, char/byte-char literals, and
//! the char-literal/lifetime ambiguity (`'a'` vs `'a`).

/// One source file split into per-line code and comment channels.
#[derive(Debug, Clone)]
pub struct Scanned {
    /// Code text per line: comments removed, literal contents blanked.
    pub code: Vec<String>,
    /// Comment text per line (without `//` / `/*` markers), `""` if none.
    pub comments: Vec<String>,
}

impl Scanned {
    /// Number of lines in the file.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Code of 1-based `line`, or `""` out of range.
    pub fn line(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.code.get(i))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Comment of 1-based `line`, or `""` out of range.
    pub fn comment(&self, line: usize) -> &str {
        line.checked_sub(1)
            .and_then(|i| self.comments.get(i))
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Whether the 1-based line holds only whitespace and/or comment
    /// text (no code). Blank lines count as comment-only so annotation
    /// lookup can walk an annotated comment block upward.
    pub fn is_comment_only(&self, line: usize) -> bool {
        self.line(line).trim().is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    /// Nested block comments: depth.
    BlockComment(u32),
    /// Inside `"…"`; bool = next char is escaped.
    Str(bool),
    /// Inside `r##"…"##`; number of `#`s.
    RawStr(u32),
    /// Inside `'…'`; bool = next char is escaped.
    CharLit(bool),
}

/// Splits `src` into per-line code and comment channels.
pub fn scan(src: &str) -> Scanned {
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = State::Normal;

    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A line comment always ends at the newline; every other
            // state carries across (block comments, raw strings and
            // ordinary strings may span lines).
            if state == State::LineComment {
                state = State::Normal;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                if c == '/' && next == '/' {
                    state = State::LineComment;
                    i += 2;
                    // Skip the optional doc-comment marker.
                    if chars.get(i) == Some(&'/') || chars.get(i) == Some(&'!') {
                        i += 1;
                    }
                } else if c == '/' && next == '*' {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code_line.push('"');
                    state = State::Str(false);
                    i += 1;
                } else if c == 'r' && (next == '"' || next == '#') && !prev_is_ident(&code_line) {
                    // Raw string r"…" / r#"…"# (an identifier ending in
                    // `r` like `var` followed by `"` cannot occur in
                    // valid Rust, but guard anyway).
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        code_line.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        // `r#ident` raw identifier — plain code.
                        code_line.push(c);
                        i += 1;
                    }
                } else if c == 'b' && next == '"' && !prev_is_ident(&code_line) {
                    code_line.push('"');
                    state = State::Str(false);
                    i += 2;
                } else if c == 'b'
                    && next == 'r'
                    && !prev_is_ident(&code_line)
                    && matches!(chars.get(i + 2), Some('"') | Some('#'))
                {
                    let mut hashes = 0u32;
                    let mut j = i + 2;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        code_line.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        code_line.push(c);
                        i += 1;
                    }
                } else if c == 'b' && next == '\'' && !prev_is_ident(&code_line) {
                    code_line.push('\'');
                    state = State::CharLit(false);
                    i += 2;
                } else if c == '\'' {
                    // Char literal or lifetime. `'x'` / `'\n'` are
                    // literals; `'a` followed by a non-quote is a
                    // lifetime and stays in the code channel.
                    let n1 = chars.get(i + 1).copied().unwrap_or('\0');
                    let n2 = chars.get(i + 2).copied().unwrap_or('\0');
                    if n1 == '\\' || n2 == '\'' {
                        code_line.push('\'');
                        state = State::CharLit(false);
                        i += 1;
                    } else {
                        code_line.push('\'');
                        i += 1;
                    }
                } else {
                    code_line.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_line.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                if c == '*' && next == '/' {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == '*' {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment_line.push(c);
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                } else if c == '\\' {
                    state = State::Str(true);
                } else if c == '"' {
                    code_line.push('"');
                    state = State::Normal;
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code_line.push('"');
                        state = State::Normal;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            State::CharLit(escaped) => {
                if escaped {
                    state = State::CharLit(false);
                } else if c == '\\' {
                    state = State::CharLit(true);
                } else if c == '\'' {
                    code_line.push('\'');
                    state = State::Normal;
                }
                i += 1;
            }
        }
    }
    if !code_line.is_empty() || !comment_line.is_empty() {
        code.push(code_line);
        comments.push(comment_line);
    }
    Scanned { code, comments }
}

fn prev_is_ident(code_line: &str) -> bool {
    code_line
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = scan("let x = 1; // trailing\n/* block\nstill */ let y = 2;\n");
        assert_eq!(s.line(1), "let x = 1; ");
        assert_eq!(s.comment(1), " trailing");
        assert_eq!(s.line(2), "");
        assert_eq!(s.comment(2), " block");
        assert_eq!(s.line(3), " let y = 2;");
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let s = scan("let s = \"// not a comment [0]\"; s.push('x');\n");
        assert_eq!(s.line(1), "let s = \"\"; s.push('');");
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let s = scan("let r = r#\"has \"quotes\" and // stuff\"#;\nfn f<'a>(x: &'a str) {}\n");
        assert_eq!(s.line(1), "let r = \"\";");
        assert_eq!(s.line(2), "fn f<'a>(x: &'a str) {}");
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let s = scan("/* outer /* inner */ still */ code();\n/// SAFETY: doc\n");
        assert_eq!(s.line(1), " code();");
        assert!(s.comment(2).contains("SAFETY: doc"));
    }

    #[test]
    fn char_literal_with_quote_and_escape() {
        let s = scan("let q = '\"'; let n = '\\n'; let l: &'static str = \"x\";\n");
        assert_eq!(
            s.line(1),
            "let q = ''; let n = ''; let l: &'static str = \"\";"
        );
    }
}
