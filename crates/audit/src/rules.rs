//! The rule catalogue: D1–D6.
//!
//! Each rule takes the scanned file, its scope facts and (for D1) the
//! statement segmentation, and returns raw findings; the orchestrator
//! in `lib.rs` then applies the suppression grammar. The analyses are
//! deliberately token-level heuristics — no type information exists
//! without `syn` — tuned so that every firing is either a genuine
//! invariant risk or a one-line, documented suppression. DESIGN.md §11
//! records the exact patterns and their known blind spots.

use crate::lexer::Scanned;
use crate::scope::FileScope;
use crate::segment::{stmts_in_block, Stmt};
use crate::suppress;

/// One raw rule firing (pre-suppression).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-based line.
    pub line: usize,
    /// Rule id (`D1`…`D6`, `SUP`).
    pub rule: &'static str,
    /// Human message (no file:line prefix; the printer adds it).
    pub message: String,
}

fn finding(line: usize, rule: &'static str, message: impl Into<String>) -> RawFinding {
    RawFinding {
        line,
        rule,
        message: message.into(),
    }
}

/// Whether `needle` occurs in `hay` delimited by non-identifier chars.
pub fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !hay[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

// ---------------------------------------------------------------- D1

/// Crates whose engine code must not leak hash-iteration order.
const D1_CRATES: [&str; 3] = ["core", "crowd", "simtest"];

const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Tokens that make an iteration order-*sensitive* when present in the
/// same statement or loop body: growing an ordered collection, feeding
/// a hasher, or writing output.
const ORDER_SINKS: [&str; 9] = [
    ".push(",
    ".push_str(",
    ".extend(",
    ".append(",
    ".write_u64(",
    ".write_u32(",
    ".write_usize(",
    "write!(",
    "writeln!(",
];

/// Chain terminals that are order-insensitive by construction.
const ORDER_FREE_TERMINALS: [&str; 12] = [
    ".count()",
    ".sum(",
    ".sum::",
    ".product(",
    ".min(",
    ".min_by",
    ".max(",
    ".max_by",
    ".all(",
    ".any(",
    ".contains(",
    ".len()",
];

/// D1 — hash-order leaks: iteration over a `HashMap`/`HashSet` in
/// `crates/{core,crowd,simtest}` whose results feed collection pushes,
/// digests/output, or collected vectors must be sorted (or collected
/// into a `BTree*`/re-keyed hash container, or sorted immediately
/// after) — otherwise it needs an `// audit: allow(D1, …)`.
pub fn d1(scope: &FileScope, stmts: &[Stmt]) -> Vec<RawFinding> {
    if scope.is_test_file
        || !D1_CRATES.contains(&scope.crate_name.as_str())
        || !scope.path.contains("/src/")
    {
        return Vec::new();
    }
    let names = hash_typed_names(stmts);
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (si, st) in stmts.iter().enumerate() {
        if scope.is_test_line(st.first_line) {
            continue;
        }
        let Some(name) = hash_iteration_in(&st.text, &names) else {
            continue;
        };
        let is_for_header =
            st.text.starts_with("for ") && st.text.contains(" in ") && st.text.ends_with('{');
        if is_for_header {
            let Some(close) = st.body_close_line else {
                continue;
            };
            let body: Vec<&Stmt> = stmts_in_block(stmts, st.first_line, close).collect();
            let sink = body
                .iter()
                .any(|b| ORDER_SINKS.iter().any(|s| b.text.contains(s)));
            if sink && !sinks_sorted_after(&body, stmts, close) {
                out.push(finding(
                    st.first_line,
                    "D1",
                    format!(
                        "iteration over hash-ordered `{name}` feeds an order-sensitive \
                         sink in the loop body; sort the keys first or annotate \
                         `audit: allow(D1, ...)`"
                    ),
                ));
            }
        } else {
            if ORDER_FREE_TERMINALS.iter().any(|t| st.text.contains(t)) {
                continue;
            }
            let collects = st.text.contains(".collect");
            let pushes = ORDER_SINKS.iter().any(|s| st.text.contains(s));
            if !collects && !pushes {
                continue;
            }
            // Collecting back into an unordered or sorted container is
            // order-free.
            if collects
                && (st.text.contains("BTree")
                    || st.text.contains("HashMap")
                    || st.text.contains("HashSet"))
            {
                continue;
            }
            if collects && sorted_in_next_stmts(st, stmts, si) {
                continue;
            }
            out.push(finding(
                st.first_line,
                "D1",
                format!(
                    "hash-ordered iteration of `{name}` reaches an ordered \
                     result (collect/push) without sorting; sort or annotate \
                     `audit: allow(D1, ...)`"
                ),
            ));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Identifiers declared (or typed) as `HashMap`/`HashSet` anywhere in
/// the file: `let` bindings, struct fields and fn params.
fn hash_typed_names(stmts: &[Stmt]) -> Vec<String> {
    let mut names = Vec::new();
    for st in stmts {
        let t = &st.text;
        if !t.contains("HashMap") && !t.contains("HashSet") {
            continue;
        }
        // `let [mut] NAME …` where the hash type is the *binding's*
        // type annotation (before the `=`) or its constructor (right
        // after the `=`) — a hash literal buried deeper in the
        // initializer (e.g. a struct field inside a `map` closure)
        // does not make the binding hash-typed.
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let (before_eq, after_eq) = match rest.split_once('=') {
                Some((b, a)) => (b, a.trim_start()),
                None => (rest, ""),
            };
            let annotated = before_eq.contains("HashMap") || before_eq.contains("HashSet");
            let constructed = ["HashMap", "HashSet", "std::collections::Hash"]
                .iter()
                .any(|p| after_eq.starts_with(p));
            if annotated || constructed {
                if let Some(name) = leading_ident(rest) {
                    push_unique(&mut names, name);
                }
            }
        }
        // `NAME: [&]['a ][mut ][std::collections::]Hash{Map,Set}` —
        // struct fields and fn params.
        for marker in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(p) = t[from..].find(marker) {
                let abs = from + p;
                if let Some(name) = ident_before_colon(&t[..abs]) {
                    push_unique(&mut names, name);
                }
                from = abs + marker.len();
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: String) {
    if !name.is_empty() && !names.contains(&name) {
        names.push(name);
    }
}

fn leading_ident(s: &str) -> Option<String> {
    let ident: String = s
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty()).then_some(ident)
}

/// Walks back over `&`, lifetimes, `mut` and path prefixes from just
/// before a `Hash{Map,Set}` occurrence; returns the identifier before
/// the `:` if the shape is a type ascription.
fn ident_before_colon(prefix: &str) -> Option<String> {
    let mut rest = prefix.trim_end();
    loop {
        if let Some(r) = rest.strip_suffix("std::collections::") {
            rest = r.trim_end();
        } else if let Some(r) = rest.strip_suffix("collections::") {
            rest = r.trim_end();
        } else if let Some(r) = rest.strip_suffix("mut") {
            // Only strip `mut` as a whole word.
            if r.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                break;
            }
            rest = r.trim_end();
        } else if let Some(r) = rest.strip_suffix('&') {
            rest = r.trim_end();
        } else if let Some(apos) = rest.rfind('\'') {
            // A trailing lifetime like `&'a `.
            let (head, tail) = rest.split_at(apos);
            if tail.len() > 1 && tail[1..].chars().all(|c| c.is_alphanumeric() || c == '_') {
                rest = head.trim_end();
            } else {
                break;
            }
        } else {
            break;
        }
    }
    let rest = rest.strip_suffix(':')?.trim_end();
    let ident: String = rest
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!ident.is_empty() && !ident.chars().next().unwrap().is_numeric()).then_some(ident)
}

/// Finds `NAME.iter()`-style hash iteration (or `for _ in [&]NAME`) in
/// a statement; returns the matched name.
fn hash_iteration_in(text: &str, names: &[String]) -> Option<String> {
    for name in names {
        let mut from = 0;
        while let Some(p) = find_word_at(text, name, from) {
            let after = &text[p + name.len()..];
            // `NAME.method(` with an iteration method.
            if let Some(rest) = after.strip_prefix('.') {
                if ITER_METHODS
                    .iter()
                    .any(|m| rest.starts_with(&format!("{m}(")))
                {
                    return Some(name.clone());
                }
            }
            // `for pat in [&][mut ][self.]NAME {` / `.. in NAME.iter() ..`
            // (bare-name form: name directly followed by `{` or end).
            let before = text[..p].trim_end();
            let before = before.strip_suffix("self.").unwrap_or(before).trim_end();
            if (before.ends_with(" in") || before.ends_with("in &") || before.ends_with("&mut"))
                && (after.trim_start().starts_with('{') || after.trim().is_empty())
            {
                return Some(name.clone());
            }
            from = p + name.len();
        }
    }
    None
}

/// Word-boundary find of `name` starting at `from`; also accepts a
/// `self.` prefix (struct fields).
fn find_word_at(text: &str, name: &str, from: usize) -> Option<usize> {
    let mut start = from;
    while let Some(pos) = text[start..].find(name) {
        let abs = start + pos;
        let before = text[..abs].chars().next_back();
        let before_ok = match before {
            None => true,
            Some('.') => text[..abs].ends_with("self."),
            Some(c) => !(c.is_alphanumeric() || c == '_'),
        };
        let after = abs + name.len();
        let after_ok = !text[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        start = after;
    }
    None
}

/// Whether every `V.push(..)` receiver in the loop body is sorted
/// within a few statements after the loop closes.
fn sinks_sorted_after(body: &[&Stmt], all: &[Stmt], close_line: usize) -> bool {
    let mut receivers: Vec<String> = Vec::new();
    for b in body {
        for sink in ORDER_SINKS {
            if let Some(p) = b.text.find(sink) {
                let recv: String = b.text[..p]
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if recv.is_empty() {
                    // A macro sink (`write!`) has no sortable receiver.
                    return false;
                }
                receivers.push(recv);
            }
        }
    }
    if receivers.is_empty() {
        return false;
    }
    receivers.iter().all(|r| {
        all.iter()
            .filter(|s| s.first_line > close_line && s.first_line <= close_line + 6)
            .any(|s| s.text.contains(&format!("{r}.sort")))
    })
}

/// Whether the `let` binding of a collect-statement is `.sort`-ed in
/// one of the next three statements.
fn sorted_in_next_stmts(st: &Stmt, all: &[Stmt], si: usize) -> bool {
    let Some(rest) = st.text.strip_prefix("let ") else {
        return false;
    };
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let Some(name) = leading_ident(rest) else {
        return false;
    };
    all.iter()
        .skip(si + 1)
        .take(3)
        .any(|s| s.text.contains(&format!("{name}.sort")))
}

// ---------------------------------------------------------------- D2

/// D2 — nondeterminism sources banned outside `crates/bench` and test
/// code: wall clocks, OS entropy, environment reads.
pub fn d2(scope: &FileScope, scanned: &Scanned) -> Vec<RawFinding> {
    if scope.is_test_file || scope.crate_name == "bench" {
        return Vec::new();
    }
    const BANNED_WORDS: [&str; 3] = ["SystemTime", "Instant", "thread_rng"];
    // `env::var` also catches `env::var_os` and `env::vars` as
    // substrings; `env::args` (argv) is user input, not ambient state,
    // and stays allowed.
    const BANNED_PATHS: [&str; 1] = ["env::var"];
    let mut out = Vec::new();
    for (i, line) in scanned.code.iter().enumerate() {
        let line_no = i + 1;
        if scope.is_test_line(line_no) {
            continue;
        }
        for w in BANNED_WORDS {
            if contains_word(line, w) {
                out.push(finding(
                    line_no,
                    "D2",
                    format!("nondeterminism source `{w}` outside bench/test code"),
                ));
            }
        }
        for p in BANNED_PATHS {
            if line.contains(p) {
                out.push(finding(
                    line_no,
                    "D2",
                    format!("environment read `{p}` outside bench/test code"),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------- D3

/// An `unsafe` site (for the census) — the keyword introducing a
/// block, fn, impl or trait.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// Whether a `// SAFETY:` justification covers it.
    pub justified: bool,
}

/// D3 — unsafe inventory: every `unsafe` keyword (all crates,
/// including vendor and tests) must carry a non-empty `// SAFETY:`
/// comment on the same line or the comment block above. Returns the
/// findings plus every site for the per-crate census.
pub fn d3(scanned: &Scanned) -> (Vec<RawFinding>, Vec<UnsafeSite>) {
    let mut out = Vec::new();
    let mut sites = Vec::new();
    for (i, line) in scanned.code.iter().enumerate() {
        let line_no = i + 1;
        if !contains_word(line, "unsafe") {
            continue;
        }
        let justified = suppress::has_marker(scanned, "SAFETY:", line_no);
        sites.push(UnsafeSite {
            line: line_no,
            justified,
        });
        if !justified {
            out.push(finding(
                line_no,
                "D3",
                "`unsafe` without a `// SAFETY:` justification",
            ));
        }
    }
    (out, sites)
}

// ---------------------------------------------------------------- D4

/// Engine files whose non-test panic surface must be justified.
const D4_FILES: [&str; 7] = [
    "crates/core/src/engine.rs",
    "crates/core/src/multi.rs",
    "crates/core/src/vertical.rs",
    "crates/core/src/classify.rs",
    "crates/core/src/manifest.rs",
    "crates/crowd/src/policy.rs",
    "crates/crowd/src/parallel.rs",
];

/// Explicit, intentional panic contexts: an assertion line is already
/// declared panic surface, so indexing inside it needs no second
/// annotation.
const ASSERT_MACROS: [&str; 5] = [
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
    "debug_assert",
    "unreachable!(",
];

/// D4 — panic surface: `unwrap`/`expect`/slice indexing in the named
/// engine files (non-test code) requires `// PANIC-OK: reason`.
pub fn d4(scope: &FileScope, scanned: &Scanned) -> Vec<RawFinding> {
    if !D4_FILES.contains(&scope.path.as_str()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in scanned.code.iter().enumerate() {
        let line_no = i + 1;
        if scope.is_test_line(line_no) || ASSERT_MACROS.iter().any(|m| line.contains(m)) {
            continue;
        }
        let mut kinds: Vec<&str> = Vec::new();
        for pat in [".unwrap()", ".unwrap_err()"] {
            if line.contains(pat) {
                kinds.push("unwrap");
                break;
            }
        }
        for pat in [".expect(", ".expect_err("] {
            if line.contains(pat) {
                kinds.push("expect");
                break;
            }
        }
        if has_index_expr(line) {
            kinds.push("slice indexing");
        }
        if kinds.is_empty() {
            continue;
        }
        if suppress::has_marker(scanned, "PANIC-OK:", line_no) {
            continue;
        }
        for kind in kinds {
            out.push(finding(
                line_no,
                "D4",
                format!("{kind} in engine code without a `// PANIC-OK:` justification"),
            ));
        }
    }
    out
}

/// An index expression: `[` directly preceded by an identifier char,
/// `)` or `]`. Attributes (`#[...]`), macros (`vec![`), array types
/// (`[u64; 4]`) and slice patterns don't match.
fn has_index_expr(line: &str) -> bool {
    let mut prev = '\0';
    for c in line.chars() {
        if c == '[' && (prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            return true;
        }
        prev = c;
    }
    false
}

// ---------------------------------------------------------------- D5

/// The agreed crate-root lint set (DESIGN.md §11): overflow/`Result`
/// misuse denied everywhere; unsafe either forbidden outright or — in
/// crates that need it — gated by `unsafe_op_in_unsafe_fn`.
pub const D5_MUST_USE: &str = "#![deny(unused_must_use)]";
/// Required when the crate has no `unsafe` at all.
pub const D5_FORBID_UNSAFE: &str = "#![forbid(unsafe_code)]";
/// Required (instead of the forbid) when the crate contains `unsafe`.
pub const D5_UNSAFE_OP: &str = "#![deny(unsafe_op_in_unsafe_fn)]";

/// D5 — lint hygiene on crate roots: the root must carry
/// `#![deny(unused_must_use)]`, plus `#![forbid(unsafe_code)]` when
/// the crate is unsafe-free or `#![deny(unsafe_op_in_unsafe_fn)]`
/// when it is not.
pub fn d5(scope: &FileScope, scanned: &Scanned, crate_has_unsafe: bool) -> Vec<RawFinding> {
    if !scope.is_crate_root {
        return Vec::new();
    }
    let joined = scanned.code.join("\n");
    let mut out = Vec::new();
    if !joined.contains(D5_MUST_USE) {
        out.push(finding(
            1,
            "D5",
            format!("crate root missing `{D5_MUST_USE}`"),
        ));
    }
    if crate_has_unsafe {
        if !joined.contains(D5_UNSAFE_OP) {
            out.push(finding(
                1,
                "D5",
                format!("crate with unsafe code missing `{D5_UNSAFE_OP}`"),
            ));
        }
    } else if !joined.contains(D5_FORBID_UNSAFE) {
        out.push(finding(
            1,
            "D5",
            format!("unsafe-free crate root missing `{D5_FORBID_UNSAFE}`"),
        ));
    }
    out
}

// ---------------------------------------------------------------- D6

/// The wrappers' home: the only non-test file allowed to reference
/// the deprecated entry points (it defines them and routes them
/// through `run`).
const D6_HOME: &str = "crates/core/src/engine.rs";

/// The deprecated `Oassis` entry points, kept compiling for
/// downstream code but closed to new call sites (DESIGN.md §12.1).
const D6_DEPRECATED: [&str; 3] = [".execute(", ".execute_concurrent(", ".execute_rules("];

/// D6 — deprecated entry points: all code outside `engine.rs` — test
/// or otherwise — must go through `Oassis::run` instead of the frozen
/// wrapper methods. Only the wrappers' home file (which defines them,
/// routes them through `run`, and exercises them in its own tests) is
/// exempt. (String literals are blanked by the lexer, so quoting a
/// method name in a message never fires.)
pub fn d6(scope: &FileScope, scanned: &Scanned) -> Vec<RawFinding> {
    if scope.path == D6_HOME {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in scanned.code.iter().enumerate() {
        let line_no = i + 1;
        for pat in D6_DEPRECATED {
            if line.contains(pat) {
                out.push(finding(
                    line_no,
                    "D6",
                    format!(
                        "deprecated entry point `{}` — use `Oassis::run` (DESIGN.md §12.1)",
                        &pat[1..pat.len() - 1]
                    ),
                ));
            }
        }
    }
    out
}
