//! The rule catalogue: D1–D6 (per-file) and D8–D9 (cross-file; D7
//! lives in [`crate::locks`]).
//!
//! Each per-file rule takes the scanned file, its scope facts and (for
//! D1) the statement segmentation, and returns raw findings; the
//! orchestrator in `lib.rs` then applies the suppression grammar. The
//! cross-file rules run once over the prepared file set and the symbol
//! table and attribute findings to whichever file owns the defect (a
//! digest-drifted *field*, not the digest fn). The analyses are
//! deliberately token-level heuristics — no type information exists
//! without `syn` — tuned so that every firing is either a genuine
//! invariant risk or a one-line, documented suppression. DESIGN.md
//! §11 and §16 record the exact patterns and their known blind spots.

use crate::callgraph::{body_lines, contains_member_ref};
use crate::lexer::Scanned;
use crate::locks::CrossFinding;
use crate::scope::FileScope;
use crate::segment::{stmts_in_block, Stmt};
use crate::suppress;
use crate::symbols::{find_word_from, SourceFile, SymbolTable};

/// One raw rule firing (pre-suppression).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-based line.
    pub line: usize,
    /// Rule id (`D1`…`D9`, `SUP`).
    pub rule: &'static str,
    /// Human message (no file:line prefix; the printer adds it).
    pub message: String,
}

fn finding(line: usize, rule: &'static str, message: impl Into<String>) -> RawFinding {
    RawFinding {
        line,
        rule,
        message: message.into(),
    }
}

/// Whether `needle` occurs in `hay` delimited by non-identifier chars.
pub fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !hay[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

// ---------------------------------------------------------------- D1

/// Crates whose engine code must not leak hash-iteration order.
const D1_CRATES: [&str; 3] = ["core", "crowd", "simtest"];

const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Tokens that make an iteration order-*sensitive* when present in the
/// same statement or loop body: growing an ordered collection, feeding
/// a hasher, or writing output.
const ORDER_SINKS: [&str; 9] = [
    ".push(",
    ".push_str(",
    ".extend(",
    ".append(",
    ".write_u64(",
    ".write_u32(",
    ".write_usize(",
    "write!(",
    "writeln!(",
];

/// Chain terminals that are order-insensitive by construction.
const ORDER_FREE_TERMINALS: [&str; 12] = [
    ".count()",
    ".sum(",
    ".sum::",
    ".product(",
    ".min(",
    ".min_by",
    ".max(",
    ".max_by",
    ".all(",
    ".any(",
    ".contains(",
    ".len()",
];

/// D1 — hash-order leaks: iteration over a `HashMap`/`HashSet` in
/// `crates/{core,crowd,simtest}` whose results feed collection pushes,
/// digests/output, or collected vectors must be sorted (or collected
/// into a `BTree*`/re-keyed hash container, or sorted immediately
/// after) — otherwise it needs an `// audit: allow(D1, …)`.
pub fn d1(scope: &FileScope, stmts: &[Stmt]) -> Vec<RawFinding> {
    if scope.is_test_file
        || !D1_CRATES.contains(&scope.crate_name.as_str())
        || !scope.path.contains("/src/")
    {
        return Vec::new();
    }
    let names = hash_typed_names(stmts);
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (si, st) in stmts.iter().enumerate() {
        if scope.is_test_line(st.first_line) {
            continue;
        }
        let Some(name) = hash_iteration_in(&st.text, &names) else {
            continue;
        };
        let is_for_header =
            st.text.starts_with("for ") && st.text.contains(" in ") && st.text.ends_with('{');
        if is_for_header {
            let Some(close) = st.body_close_line else {
                continue;
            };
            let body: Vec<&Stmt> = stmts_in_block(stmts, st.first_line, close).collect();
            let sink = body
                .iter()
                .any(|b| ORDER_SINKS.iter().any(|s| b.text.contains(s)));
            if sink && !sinks_sorted_after(&body, stmts, close) {
                out.push(finding(
                    st.first_line,
                    "D1",
                    format!(
                        "iteration over hash-ordered `{name}` feeds an order-sensitive \
                         sink in the loop body; sort the keys first or annotate \
                         `audit: allow(D1, ...)`"
                    ),
                ));
            }
        } else {
            if ORDER_FREE_TERMINALS.iter().any(|t| st.text.contains(t)) {
                continue;
            }
            let collects = st.text.contains(".collect");
            let pushes = ORDER_SINKS.iter().any(|s| st.text.contains(s));
            if !collects && !pushes {
                continue;
            }
            // Collecting back into an unordered or sorted container is
            // order-free.
            if collects
                && (st.text.contains("BTree")
                    || st.text.contains("HashMap")
                    || st.text.contains("HashSet"))
            {
                continue;
            }
            if collects && sorted_in_next_stmts(st, stmts, si) {
                continue;
            }
            out.push(finding(
                st.first_line,
                "D1",
                format!(
                    "hash-ordered iteration of `{name}` reaches an ordered \
                     result (collect/push) without sorting; sort or annotate \
                     `audit: allow(D1, ...)`"
                ),
            ));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Identifiers declared (or typed) as `HashMap`/`HashSet` anywhere in
/// the file: `let` bindings, struct fields and fn params.
fn hash_typed_names(stmts: &[Stmt]) -> Vec<String> {
    let mut names = Vec::new();
    for st in stmts {
        let t = &st.text;
        if !t.contains("HashMap") && !t.contains("HashSet") {
            continue;
        }
        // `let [mut] NAME …` where the hash type is the *binding's*
        // type annotation (before the `=`) or its constructor (right
        // after the `=`) — a hash literal buried deeper in the
        // initializer (e.g. a struct field inside a `map` closure)
        // does not make the binding hash-typed.
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let (before_eq, after_eq) = match rest.split_once('=') {
                Some((b, a)) => (b, a.trim_start()),
                None => (rest, ""),
            };
            let annotated = before_eq.contains("HashMap") || before_eq.contains("HashSet");
            let constructed = ["HashMap", "HashSet", "std::collections::Hash"]
                .iter()
                .any(|p| after_eq.starts_with(p));
            if annotated || constructed {
                if let Some(name) = leading_ident(rest) {
                    push_unique(&mut names, name);
                }
            }
        }
        // `NAME: [&]['a ][mut ][std::collections::]Hash{Map,Set}` —
        // struct fields and fn params.
        for marker in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(p) = t[from..].find(marker) {
                let abs = from + p;
                if let Some(name) = ident_before_colon(&t[..abs]) {
                    push_unique(&mut names, name);
                }
                from = abs + marker.len();
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: String) {
    if !name.is_empty() && !names.contains(&name) {
        names.push(name);
    }
}

fn leading_ident(s: &str) -> Option<String> {
    let ident: String = s
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty()).then_some(ident)
}

/// Walks back over `&`, lifetimes, `mut` and path prefixes from just
/// before a `Hash{Map,Set}` occurrence; returns the identifier before
/// the `:` if the shape is a type ascription.
fn ident_before_colon(prefix: &str) -> Option<String> {
    let mut rest = prefix.trim_end();
    loop {
        if let Some(r) = rest.strip_suffix("std::collections::") {
            rest = r.trim_end();
        } else if let Some(r) = rest.strip_suffix("collections::") {
            rest = r.trim_end();
        } else if let Some(r) = rest.strip_suffix("mut") {
            // Only strip `mut` as a whole word.
            if r.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
                break;
            }
            rest = r.trim_end();
        } else if let Some(r) = rest.strip_suffix('&') {
            rest = r.trim_end();
        } else if let Some(apos) = rest.rfind('\'') {
            // A trailing lifetime like `&'a `.
            let (head, tail) = rest.split_at(apos);
            if tail.len() > 1 && tail[1..].chars().all(|c| c.is_alphanumeric() || c == '_') {
                rest = head.trim_end();
            } else {
                break;
            }
        } else {
            break;
        }
    }
    let rest = rest.strip_suffix(':')?.trim_end();
    let ident: String = rest
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!ident.is_empty() && !ident.chars().next().unwrap().is_numeric()).then_some(ident)
}

/// Finds `NAME.iter()`-style hash iteration (or `for _ in [&]NAME`) in
/// a statement; returns the matched name.
fn hash_iteration_in(text: &str, names: &[String]) -> Option<String> {
    for name in names {
        let mut from = 0;
        while let Some(p) = find_word_at(text, name, from) {
            let after = &text[p + name.len()..];
            // `NAME.method(` with an iteration method.
            if let Some(rest) = after.strip_prefix('.') {
                if ITER_METHODS
                    .iter()
                    .any(|m| rest.starts_with(&format!("{m}(")))
                {
                    return Some(name.clone());
                }
            }
            // `for pat in [&][mut ][self.]NAME {` / `.. in NAME.iter() ..`
            // (bare-name form: name directly followed by `{` or end).
            let before = text[..p].trim_end();
            let before = before.strip_suffix("self.").unwrap_or(before).trim_end();
            if (before.ends_with(" in") || before.ends_with("in &") || before.ends_with("&mut"))
                && (after.trim_start().starts_with('{') || after.trim().is_empty())
            {
                return Some(name.clone());
            }
            from = p + name.len();
        }
    }
    None
}

/// Word-boundary find of `name` starting at `from`; also accepts a
/// `self.` prefix (struct fields).
fn find_word_at(text: &str, name: &str, from: usize) -> Option<usize> {
    let mut start = from;
    while let Some(pos) = text[start..].find(name) {
        let abs = start + pos;
        let before = text[..abs].chars().next_back();
        let before_ok = match before {
            None => true,
            Some('.') => text[..abs].ends_with("self."),
            Some(c) => !(c.is_alphanumeric() || c == '_'),
        };
        let after = abs + name.len();
        let after_ok = !text[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        start = after;
    }
    None
}

/// Whether every `V.push(..)` receiver in the loop body is sorted
/// within a few statements after the loop closes.
fn sinks_sorted_after(body: &[&Stmt], all: &[Stmt], close_line: usize) -> bool {
    let mut receivers: Vec<String> = Vec::new();
    for b in body {
        for sink in ORDER_SINKS {
            if let Some(p) = b.text.find(sink) {
                let recv: String = b.text[..p]
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if recv.is_empty() {
                    // A macro sink (`write!`) has no sortable receiver.
                    return false;
                }
                receivers.push(recv);
            }
        }
    }
    if receivers.is_empty() {
        return false;
    }
    receivers.iter().all(|r| {
        all.iter()
            .filter(|s| s.first_line > close_line && s.first_line <= close_line + 6)
            .any(|s| s.text.contains(&format!("{r}.sort")))
    })
}

/// Whether the `let` binding of a collect-statement is `.sort`-ed in
/// one of the next three statements.
fn sorted_in_next_stmts(st: &Stmt, all: &[Stmt], si: usize) -> bool {
    let Some(rest) = st.text.strip_prefix("let ") else {
        return false;
    };
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let Some(name) = leading_ident(rest) else {
        return false;
    };
    all.iter()
        .skip(si + 1)
        .take(3)
        .any(|s| s.text.contains(&format!("{name}.sort")))
}

// ---------------------------------------------------------------- D2

/// D2 — nondeterminism sources banned outside `crates/bench` and test
/// code: wall clocks, OS entropy, environment reads.
pub fn d2(scope: &FileScope, scanned: &Scanned) -> Vec<RawFinding> {
    if scope.is_test_file || scope.crate_name == "bench" {
        return Vec::new();
    }
    const BANNED_WORDS: [&str; 3] = ["SystemTime", "Instant", "thread_rng"];
    // `env::var` also catches `env::var_os` and `env::vars` as
    // substrings; `env::args` (argv) is user input, not ambient state,
    // and stays allowed.
    const BANNED_PATHS: [&str; 1] = ["env::var"];
    let mut out = Vec::new();
    for (i, line) in scanned.code.iter().enumerate() {
        let line_no = i + 1;
        if scope.is_test_line(line_no) {
            continue;
        }
        for w in BANNED_WORDS {
            if contains_word(line, w) {
                out.push(finding(
                    line_no,
                    "D2",
                    format!("nondeterminism source `{w}` outside bench/test code"),
                ));
            }
        }
        for p in BANNED_PATHS {
            if line.contains(p) {
                out.push(finding(
                    line_no,
                    "D2",
                    format!("environment read `{p}` outside bench/test code"),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------- D3

/// An `unsafe` site (for the census) — the keyword introducing a
/// block, fn, impl or trait.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// Whether a `// SAFETY:` justification covers it.
    pub justified: bool,
}

/// D3 — unsafe inventory: every `unsafe` keyword (all crates,
/// including vendor and tests) must carry a non-empty `// SAFETY:`
/// comment on the same line or the comment block above. Returns the
/// findings plus every site for the per-crate census.
pub fn d3(scanned: &Scanned) -> (Vec<RawFinding>, Vec<UnsafeSite>) {
    let mut out = Vec::new();
    let mut sites = Vec::new();
    for (i, line) in scanned.code.iter().enumerate() {
        let line_no = i + 1;
        if !contains_word(line, "unsafe") {
            continue;
        }
        let justified = suppress::has_marker(scanned, "SAFETY:", line_no);
        sites.push(UnsafeSite {
            line: line_no,
            justified,
        });
        if !justified {
            out.push(finding(
                line_no,
                "D3",
                "`unsafe` without a `// SAFETY:` justification",
            ));
        }
    }
    (out, sites)
}

// ---------------------------------------------------------------- D4

/// Path prefixes whose non-test panic surface must be justified: all
/// engine source in the three deterministic crates. A prefix match
/// (not a file list) means files added later — `oplog.rs`,
/// `cluster.rs`, `net.rs`, whatever comes next — are audited the day
/// they land instead of silently exempt.
const D4_PATHS: [&str; 4] = [
    "crates/core/src/",
    "crates/crowd/src/",
    "crates/server/src/",
    "crates/simtest/src/",
];

/// Explicit, intentional panic contexts: an assertion line is already
/// declared panic surface, so indexing inside it needs no second
/// annotation.
const ASSERT_MACROS: [&str; 5] = [
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
    "debug_assert",
    "unreachable!(",
];

/// D4 — panic surface: `unwrap`/`expect`/slice indexing in engine
/// source under [`D4_PATHS`] (non-test code) requires
/// `// PANIC-OK: reason`.
pub fn d4(scope: &FileScope, scanned: &Scanned) -> Vec<RawFinding> {
    if !D4_PATHS.iter().any(|p| scope.path.starts_with(p)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in scanned.code.iter().enumerate() {
        let line_no = i + 1;
        if scope.is_test_line(line_no) || ASSERT_MACROS.iter().any(|m| line.contains(m)) {
            continue;
        }
        let mut kinds: Vec<&str> = Vec::new();
        for pat in [".unwrap()", ".unwrap_err()"] {
            if line.contains(pat) {
                kinds.push("unwrap");
                break;
            }
        }
        for pat in [".expect(", ".expect_err("] {
            if line.contains(pat) {
                kinds.push("expect");
                break;
            }
        }
        if has_index_expr(line) {
            kinds.push("slice indexing");
        }
        if kinds.is_empty() {
            continue;
        }
        if suppress::has_marker(scanned, "PANIC-OK:", line_no) {
            continue;
        }
        for kind in kinds {
            out.push(finding(
                line_no,
                "D4",
                format!("{kind} in engine code without a `// PANIC-OK:` justification"),
            ));
        }
    }
    out
}

/// An index expression: `[` directly preceded by an identifier char,
/// `)` or `]`. Attributes (`#[...]`), macros (`vec![`), array types
/// (`[u64; 4]`) and slice patterns don't match.
fn has_index_expr(line: &str) -> bool {
    let mut prev = '\0';
    for c in line.chars() {
        if c == '[' && (prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            return true;
        }
        prev = c;
    }
    false
}

// ---------------------------------------------------------------- D5

/// The agreed crate-root lint set (DESIGN.md §11): overflow/`Result`
/// misuse denied everywhere; unsafe either forbidden outright or — in
/// crates that need it — gated by `unsafe_op_in_unsafe_fn`.
pub const D5_MUST_USE: &str = "#![deny(unused_must_use)]";
/// Required when the crate has no `unsafe` at all.
pub const D5_FORBID_UNSAFE: &str = "#![forbid(unsafe_code)]";
/// Required (instead of the forbid) when the crate contains `unsafe`.
pub const D5_UNSAFE_OP: &str = "#![deny(unsafe_op_in_unsafe_fn)]";

/// D5 — lint hygiene on crate roots: the root must carry
/// `#![deny(unused_must_use)]`, plus `#![forbid(unsafe_code)]` when
/// the crate is unsafe-free or `#![deny(unsafe_op_in_unsafe_fn)]`
/// when it is not.
pub fn d5(scope: &FileScope, scanned: &Scanned, crate_has_unsafe: bool) -> Vec<RawFinding> {
    if !scope.is_crate_root {
        return Vec::new();
    }
    let joined = scanned.code.join("\n");
    let mut out = Vec::new();
    if !joined.contains(D5_MUST_USE) {
        out.push(finding(
            1,
            "D5",
            format!("crate root missing `{D5_MUST_USE}`"),
        ));
    }
    if crate_has_unsafe {
        if !joined.contains(D5_UNSAFE_OP) {
            out.push(finding(
                1,
                "D5",
                format!("crate with unsafe code missing `{D5_UNSAFE_OP}`"),
            ));
        }
    } else if !joined.contains(D5_FORBID_UNSAFE) {
        out.push(finding(
            1,
            "D5",
            format!("unsafe-free crate root missing `{D5_FORBID_UNSAFE}`"),
        ));
    }
    out
}

// ---------------------------------------------------------------- D6

/// The retired `Oassis` entry points: call-site patterns and, since
/// the wrappers were deleted outright, definition patterns too — a
/// reintroduced `fn execute` is the same regression as a call site.
const D6_CALLS: [&str; 3] = [".execute(", ".execute_concurrent(", ".execute_rules("];

/// Definition-level patterns: declaring any of the retired wrappers
/// anywhere (including their old home in `engine.rs`) fires.
const D6_DEFS: [&str; 3] = ["fn execute(", "fn execute_concurrent(", "fn execute_rules("];

/// D6 — retired entry points: the `execute*` wrappers are gone, not
/// frozen. No file anywhere — `engine.rs`, tests, benches — may call
/// them *or define them again*; everything goes through `Oassis::run`
/// (DESIGN.md §12.1). (String literals are blanked by the lexer, so
/// quoting a method name in a message never fires.)
pub fn d6(_scope: &FileScope, scanned: &Scanned) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (i, line) in scanned.code.iter().enumerate() {
        let line_no = i + 1;
        for pat in D6_CALLS {
            if line.contains(pat) {
                out.push(finding(
                    line_no,
                    "D6",
                    format!(
                        "retired entry point `{}` — use `Oassis::run` (DESIGN.md §12.1)",
                        &pat[1..pat.len() - 1]
                    ),
                ));
            }
        }
        for pat in D6_DEFS {
            if line.contains(pat) {
                out.push(finding(
                    line_no,
                    "D6",
                    format!(
                        "retired entry point redefined (`{}`) — the wrappers were \
                         deleted; route through `Oassis::run` (DESIGN.md §12.1)",
                        &pat[..pat.len() - 1]
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------- D8

/// D8 — digest coverage: every fn whose name contains `digest`
/// (non-test) is a replica-equality contract; the struct it digests
/// must have *every* field folded in, or the field carries a reasoned
/// `audit: allow(D8, …)`. The "added a field, forgot the digest"
/// drift class fires at the *field's* declaration line, so a newly
/// added field is never masked by a suppression on an older sibling.
pub fn d8(files: &[SourceFile], table: &SymbolTable) -> Vec<CrossFinding> {
    let mut out: Vec<CrossFinding> = Vec::new();
    for f in &table.fns {
        if f.is_test || files[f.file].scope.is_test_file || files[f.file].scope.is_vendor {
            continue;
        }
        if !f.name.to_lowercase().contains("digest") {
            continue;
        }
        let Some((recv, st)) = fold_target(table, f) else {
            continue;
        };
        if st.is_test {
            continue;
        }
        let body: Vec<&str> = body_lines(table, f)
            .into_iter()
            .map(|l| files[f.file].scanned.line(l))
            .collect();
        for field in &st.fields {
            let folded = body
                .iter()
                .any(|l| contains_member_ref(l, &recv, &field.name));
            if !folded {
                out.push((
                    st.file,
                    finding(
                        field.line,
                        "D8",
                        format!(
                            "field `{}` of `{}` is not folded into digest fn `{}` \
                             ({}:{}) — replicas can silently diverge; fold it or \
                             annotate `audit: allow(D8, ...)`",
                            field.name,
                            st.name,
                            f.qual(),
                            files[f.file].path,
                            f.line
                        ),
                    ),
                ));
            }
        }
    }
    out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    out.dedup();
    out
}

/// The (receiver name, struct) a digest fn folds: the impl type for
/// `&self` methods, else the first parameter whose type is a uniquely
/// named repo struct. `None` (primitive/ambiguous inputs) skips the fn.
fn fold_target<'t>(
    table: &'t SymbolTable,
    f: &crate::symbols::FnDef,
) -> Option<(String, &'t crate::symbols::StructDef)> {
    for (i, param) in header_params(&f.header).into_iter().enumerate() {
        let p = param.trim();
        if i == 0 && (p == "self" || p == "&self" || p == "&mut self") {
            if let Some(st) = f.impl_type.as_deref().and_then(|t| table.struct_named(t)) {
                return Some(("self".to_string(), st));
            }
            continue;
        }
        let Some((name, ty)) = p.split_once(':') else {
            continue;
        };
        let base = ty
            .trim()
            .trim_start_matches('&')
            .trim_start_matches("mut ")
            .trim();
        let base = base.split('<').next().unwrap_or(base).trim();
        let base = base.rsplit("::").next().unwrap_or(base).trim();
        if let Some(st) = table.struct_named(base) {
            return Some((name.trim().to_string(), st));
        }
    }
    None
}

/// The comma-split parameter list of a normalized fn header (top-level
/// commas only; generics and nested parens are depth-tracked).
fn header_params(header: &str) -> Vec<String> {
    let open = match header.find('(') {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut depth_paren = 0i32;
    let mut depth_angle = 0i32;
    let mut prev = '\0';
    let mut cur = String::new();
    let mut out = Vec::new();
    for c in header[open..].chars() {
        match c {
            '(' | '[' => {
                depth_paren += 1;
                if depth_paren > 1 {
                    cur.push(c);
                }
            }
            ')' | ']' => {
                depth_paren -= 1;
                if depth_paren == 0 {
                    break;
                }
                cur.push(c);
            }
            '<' => {
                depth_angle += 1;
                cur.push(c);
            }
            '>' if prev != '-' => {
                depth_angle -= 1;
                cur.push(c);
            }
            ',' if depth_paren == 1 && depth_angle == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        prev = c;
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------- D9

/// The wire/fault enums whose `match`es must be exhaustive by name: a
/// new protocol op or fault kind must *fail to compile* at every
/// dispatch site, never fall into a `_` arm that silently drops it.
const D9_ENUMS: [&str; 4] = ["WireVerdict", "OpVerdict", "Payload", "FaultKind"];

/// D9 — wire-op exhaustiveness: every non-test `match` whose arms name
/// a [`D9_ENUMS`] variant must (a) have no catch-all arm (`_`, a bare
/// binding, or an or/`Some`-wrapped one) and (b) name every variant of
/// the enum. Variants are recognized in qualified `Enum::Variant`
/// pattern position only; `if let` chains are out of scope (DESIGN.md
/// §16).
pub fn d9(files: &[SourceFile], table: &SymbolTable) -> Vec<CrossFinding> {
    let mut out: Vec<CrossFinding> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if file.scope.is_test_file || file.scope.is_vendor {
            continue;
        }
        for st in &file.stmts {
            let Some(close) = st.body_close_line else {
                continue;
            };
            if !st.text.ends_with('{')
                || !contains_word(&st.text, "match")
                || file.scope.is_test_line(st.first_line)
            {
                continue;
            }
            let arms = match_arms(&file.scanned, st.last_line, close);
            // Which audited enum does this match dispatch on?
            let mut named: Vec<(&str, String)> = Vec::new(); // (enum, variant)
            for (_, pat) in &arms {
                for e in D9_ENUMS {
                    let marker = format!("{e}::");
                    let mut from = 0;
                    while let Some(p) = find_word_from(pat, e, from) {
                        from = p + e.len();
                        if !pat[from..].starts_with("::") {
                            continue;
                        }
                        let variant: String = pat[p + marker.len()..]
                            .chars()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect();
                        if !variant.is_empty() {
                            named.push((e, variant));
                        }
                    }
                }
            }
            if named.is_empty() {
                continue;
            }
            let enum_name = named[0].0;
            for (line, pat) in &arms {
                if is_catch_all_arm(pat) {
                    out.push((
                        fi,
                        finding(
                            *line,
                            "D9",
                            format!(
                                "catch-all arm in `match` over `{enum_name}` — name every \
                                 variant so a new wire op fails to compile instead of \
                                 silently falling through"
                            ),
                        ),
                    ));
                }
            }
            if let Some(def) = table.enum_named(enum_name) {
                let covered: Vec<&String> = named
                    .iter()
                    .filter(|(e, _)| *e == enum_name)
                    .map(|(_, v)| v)
                    .collect();
                let missing: Vec<&str> = def
                    .variants
                    .iter()
                    .filter(|v| !covered.contains(v))
                    .map(String::as_str)
                    .collect();
                if !missing.is_empty() && !arms.iter().any(|(_, p)| is_catch_all_arm(p)) {
                    out.push((
                        fi,
                        finding(
                            st.first_line,
                            "D9",
                            format!(
                                "`match` over `{enum_name}` does not name variant(s) {} — \
                                 wire/fault dispatch must be exhaustive by name",
                                missing.join(", ")
                            ),
                        ),
                    ));
                }
            }
        }
    }
    out.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    out.dedup();
    out
}

/// The arms of a `match` block: (first line, normalized pattern text)
/// per arm, with guards stripped. The walker starts at the block's
/// opening `{` (last `{` on the header's closing line) and splits on
/// depth-1 `=>`; arm bodies (block or comma-terminated expression) are
/// consumed at depth so nested matches never leak arms outward.
fn match_arms(scanned: &Scanned, open_line: usize, close_line: usize) -> Vec<(usize, String)> {
    let mut arms = Vec::new();
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut in_body = false;
    let mut pat = String::new();
    let mut pat_line = 0usize;
    for line_no in open_line..=close_line {
        let line = scanned.line(line_no);
        let bytes = line.as_bytes();
        let mut i = if line_no == open_line {
            match line.rfind('{') {
                Some(p) => {
                    brace = 1;
                    p + 1
                }
                None => continue,
            }
        } else {
            0
        };
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                '{' => brace += 1,
                '}' => {
                    brace -= 1;
                    if brace == 0 {
                        return arms; // match closed
                    }
                    if in_body && brace == 1 {
                        in_body = false; // block body closed
                    }
                }
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                // The comma terminating an expression body must not
                // leak into the next arm's pattern text.
                ',' if in_body && brace == 1 && paren == 0 => {
                    in_body = false;
                    i += 1;
                    continue;
                }
                '=' if !in_body && brace == 1 && paren == 0 && bytes.get(i + 1) == Some(&b'>') => {
                    let text = normalize_pattern(&pat);
                    if !text.is_empty() {
                        arms.push((pat_line, text));
                    }
                    pat.clear();
                    in_body = true;
                    i += 2;
                    continue;
                }
                _ => {}
            }
            // `{`/`}` never join the pattern text: a struct pattern's
            // closing brace lands back at depth 1 and would otherwise
            // leak into the next arm's pattern.
            if !in_body && brace == 1 && c != '{' && c != '}' {
                if pat.trim().is_empty() && !c.is_whitespace() {
                    pat_line = line_no;
                }
                pat.push(c);
            }
            i += 1;
        }
        if !in_body && brace >= 1 {
            pat.push(' ');
        }
    }
    arms
}

/// Collapses whitespace and strips a trailing ` if GUARD`.
fn normalize_pattern(pat: &str) -> String {
    let collapsed = pat.split_whitespace().collect::<Vec<_>>().join(" ");
    match collapsed.find(" if ") {
        Some(p) => collapsed[..p].trim().to_string(),
        None => collapsed,
    }
}

/// Whether an arm pattern is a catch-all: any top-level `|` alternative
/// that — unwrapped through `&`/`Some`/`Ok`/`Err` — is `_` or a bare
/// lowercase binding. Capitalized bare idents (`None`, unit variants)
/// are named patterns, not catch-alls.
fn is_catch_all_arm(pat: &str) -> bool {
    split_top_level(pat, '|').into_iter().any(|alt| {
        let mut p = alt.trim();
        loop {
            p = p.trim().trim_start_matches('&').trim();
            let mut unwrapped = false;
            for w in ["Some(", "Ok(", "Err("] {
                if p.starts_with(w) && p.ends_with(')') {
                    p = &p[w.len()..p.len() - 1];
                    unwrapped = true;
                    break;
                }
            }
            if !unwrapped {
                break;
            }
        }
        if p == "_" {
            return true;
        }
        p.chars().all(|c| c.is_alphanumeric() || c == '_')
            && p.chars()
                .next()
                .is_some_and(|c| c.is_lowercase() || c == '_')
    })
}

/// Splits on `sep` at paren/bracket depth 0.
fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            c if c == sep && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}
