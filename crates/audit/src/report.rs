//! The machine-readable audit report (`AUDIT.json`).
//!
//! The report is fully deterministic — sorted keys, sorted findings,
//! no timestamps — so the committed `AUDIT.json` only changes when
//! the audited facts change, and drift is reviewable PR-over-PR with
//! a plain diff. JSON is emitted by a small hand-rolled writer (the
//! registry is unreachable, so no serde).

use std::collections::BTreeMap;

use crate::{FileAudit, Finding};

/// Per-rule firing counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleCount {
    /// Unsuppressed findings (must be 0 for a clean tree).
    pub open: usize,
    /// Findings covered by a reasoned suppression.
    pub suppressed: usize,
}

/// One suppression marker, with whether any finding actually used it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionRecord {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the marker.
    pub line: usize,
    /// Rule id it names.
    pub rule: String,
    /// Justification text.
    pub reason: String,
    /// `allow-file` vs line-scoped `allow`.
    pub file_wide: bool,
    /// Whether a finding matched it (an unused suppression is stale
    /// and should be removed — visible in the report, not fatal).
    pub used: bool,
}

/// The aggregated workspace audit.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Counts per rule id (all of D1–D5 present even when zero).
    pub rule_counts: BTreeMap<String, RuleCount>,
    /// `unsafe` sites per crate (every scanned crate present).
    pub unsafe_census: BTreeMap<String, usize>,
    /// Every suppression marker in the tree.
    pub suppressions: Vec<SuppressionRecord>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Folds one file's audit into the totals.
    pub fn add_file(&mut self, crate_name: &str, fa: &FileAudit) {
        for id in crate::RULE_IDS {
            self.rule_counts.entry(id.to_string()).or_default();
        }
        for f in &fa.findings {
            self.rule_counts.entry(f.rule.clone()).or_default().open += 1;
            self.findings.push(f.clone());
        }
        for f in &fa.suppressed {
            self.rule_counts
                .entry(f.rule.clone())
                .or_default()
                .suppressed += 1;
        }
        *self
            .unsafe_census
            .entry(crate_name.to_string())
            .or_insert(0) += fa.unsafe_count;
        self.suppressions.extend(fa.suppressions.iter().cloned());
        self.findings.sort();
        self.suppressions
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    }

    /// Whether the tree is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes the report as pretty-printed, key-sorted JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));

        s.push_str("  \"rules\": {\n");
        let rules: Vec<String> = self
            .rule_counts
            .iter()
            .map(|(id, c)| {
                format!(
                    "    {}: {{\"open\": {}, \"suppressed\": {}}}",
                    json_str(id),
                    c.open,
                    c.suppressed
                )
            })
            .collect();
        s.push_str(&rules.join(",\n"));
        s.push_str("\n  },\n");

        s.push_str("  \"unsafe_census\": {\n");
        let census: Vec<String> = self
            .unsafe_census
            .iter()
            .map(|(k, v)| format!("    {}: {}", json_str(k), v))
            .collect();
        s.push_str(&census.join(",\n"));
        s.push_str("\n  },\n");

        s.push_str("  \"suppressions\": [\n");
        let sups: Vec<String> = self
            .suppressions
            .iter()
            .map(|x| {
                format!(
                    "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"scope\": {}, \
                     \"used\": {}, \"reason\": {}}}",
                    json_str(&x.file),
                    x.line,
                    json_str(&x.rule),
                    json_str(if x.file_wide { "file" } else { "line" }),
                    x.used,
                    json_str(&x.reason)
                )
            })
            .collect();
        s.push_str(&sups.join(",\n"));
        s.push_str(if self.suppressions.is_empty() {
            "  ],\n"
        } else {
            "\n  ],\n"
        });

        s.push_str("  \"findings\": [\n");
        let fs: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                    json_str(&f.path),
                    f.line,
                    json_str(&f.rule),
                    json_str(&f.message)
                )
            })
            .collect();
        s.push_str(&fs.join(",\n"));
        s.push_str(if self.findings.is_empty() {
            "  ]\n"
        } else {
            "\n  ]\n"
        });
        s.push_str("}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_is_clean_and_serializes() {
        let r = Report::default();
        assert!(r.is_clean());
        let j = r.to_json();
        assert!(j.contains("\"findings\": ["));
        assert!(j.ends_with("}\n"));
    }
}
