//! Where a file sits in the workspace, and which of its lines are test
//! code.
//!
//! Scope is what keeps the rules honest: D2 (nondeterminism) and D4
//! (panic surface) apply to engine code but not to tests, benches or
//! examples, while D3 (unsafe hygiene) applies everywhere including
//! vendored shims. Paths are workspace-relative with `/` separators.

use crate::lexer::Scanned;

/// Workspace-relative location facts about one file.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate the file belongs to (`core`, `crowd`, `minipool`,
    /// `oassis` for the root package, `workspace-tests` for root
    /// `tests/`).
    pub crate_name: String,
    /// Whole file is test/bench/example code (path-derived).
    pub is_test_file: bool,
    /// File is a vendored shim (`vendor/...`).
    pub is_vendor: bool,
    /// File is a crate root (`src/lib.rs` of some member, or the root
    /// package's `src/lib.rs`).
    pub is_crate_root: bool,
    /// Per-line flags (1-based via [`FileScope::is_test_line`]):
    /// inside a `#[cfg(test)]` item.
    cfg_test_lines: Vec<bool>,
}

impl FileScope {
    /// Builds scope facts for `path` (workspace-relative) over its
    /// scanned source.
    pub fn new(path: &str, scanned: &Scanned) -> FileScope {
        let path = path.replace('\\', "/");
        let parts: Vec<&str> = path.split('/').collect();
        let crate_name = match parts.as_slice() {
            ["crates", name, ..] => (*name).to_string(),
            ["vendor", name, ..] => (*name).to_string(),
            ["tests", ..] => "workspace-tests".to_string(),
            ["examples", ..] => "oassis".to_string(),
            _ => "oassis".to_string(),
        };
        let is_test_file = parts
            .iter()
            .any(|p| matches!(*p, "tests" | "benches" | "examples"));
        let is_vendor = parts.first() == Some(&"vendor");
        let is_crate_root = path == "src/lib.rs"
            || (parts.len() == 4
                && matches!(parts[0], "crates" | "vendor")
                && parts[2] == "src"
                && parts[3] == "lib.rs");
        FileScope {
            path,
            crate_name,
            is_test_file,
            is_vendor,
            is_crate_root,
            cfg_test_lines: cfg_test_regions(scanned),
        }
    }

    /// Whether the 1-based line is test code: a test file, or inside a
    /// `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.is_test_file
            || line
                .checked_sub(1)
                .and_then(|i| self.cfg_test_lines.get(i))
                .copied()
                .unwrap_or(false)
    }
}

/// Marks the extent of every `#[cfg(test)]` item: from the attribute
/// to the matching close brace of the first block that follows it.
fn cfg_test_regions(s: &Scanned) -> Vec<bool> {
    let n = s.code.len();
    let mut flags = vec![false; n];
    let mut li = 0usize;
    while li < n {
        let line = &s.code[li];
        if !line.contains("#[cfg(test)]") {
            li += 1;
            continue;
        }
        // Walk forward to the first `{` and match braces from there.
        let mut depth = 0i32;
        let mut seen_open = false;
        let mut lj = li;
        'outer: while lj < n {
            for c in s.code[lj].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => {
                        depth -= 1;
                        if seen_open && depth == 0 {
                            break 'outer;
                        }
                    }
                    // `#[cfg(test)]` on a brace-less item (e.g. a
                    // `use` or `mod foo;` declaration) covers only up
                    // to that item's semicolon.
                    ';' if !seen_open => break 'outer,
                    _ => {}
                }
            }
            lj += 1;
        }
        let end = lj.min(n - 1);
        for f in flags.iter_mut().take(end + 1).skip(li) {
            *f = true;
        }
        li = end + 1;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn path_classification() {
        let s = scan("fn main() {}\n");
        let f = FileScope::new("crates/core/src/engine.rs", &s);
        assert_eq!(f.crate_name, "core");
        assert!(!f.is_test_file && !f.is_vendor && !f.is_crate_root);
        let f = FileScope::new("vendor/minipool/src/lib.rs", &s);
        assert!(f.is_vendor && f.is_crate_root);
        assert_eq!(f.crate_name, "minipool");
        let f = FileScope::new("tests/golden_outcomes.rs", &s);
        assert!(f.is_test_file);
        let f = FileScope::new("crates/bench/benches/micro.rs", &s);
        assert!(f.is_test_file);
        let f = FileScope::new("src/lib.rs", &s);
        assert!(f.is_crate_root);
        assert_eq!(f.crate_name, "oassis");
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = scan(src);
        let f = FileScope::new("crates/core/src/x.rs", &s);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_use_item_stops_at_semicolon() {
        let src = "#[cfg(test)]\nuse crate::x;\nfn real() {}\n";
        let s = scan(src);
        let f = FileScope::new("crates/core/src/x.rs", &s);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }
}
