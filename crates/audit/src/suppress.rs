//! The inline suppression grammar and annotation lookup.
//!
//! Every exemption is a grepable, reviewed decision:
//!
//! * `// audit: allow(D1, reason…)` — suppresses rule `D1` on the same
//!   line, or (when the comment stands alone) on the next code line.
//! * `// audit: allow-file(D2, reason…)` — suppresses rule `D2` for
//!   the whole file (placed near the top, typically on vendored shims).
//! * `// SAFETY: …` — justifies an `unsafe` on the same line or on the
//!   comment block immediately above (rule D3).
//! * `// PANIC-OK: …` — justifies an `unwrap`/`expect`/index on the
//!   same line or the comment block immediately above (rule D4).
//!
//! A suppression without a reason string is itself a finding (`SUP`):
//! the grammar is the audit trail, so an empty reason defeats the
//! point.

use crate::lexer::Scanned;

/// One parsed `audit: allow(...)` / `allow-file(...)` marker.
#[derive(Debug, Clone, PartialEq)]
pub struct Suppression {
    /// 1-based line the marker sits on.
    pub line: usize,
    /// Rule id the marker names (e.g. `"D1"`).
    pub rule: String,
    /// Justification text after the comma (trimmed; may be empty —
    /// that is reported as a `SUP` finding).
    pub reason: String,
    /// `allow-file` (whole file) vs `allow` (line-scoped).
    pub file_wide: bool,
}

/// Parses every suppression marker in the comment channel.
///
/// A marker must *start* its comment (`// audit: allow(...)`, possibly
/// as a trailing comment after code) — prose that merely quotes the
/// grammar, like this sentence, is not a marker.
pub fn collect(s: &Scanned) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, comment) in s.comments.iter().enumerate() {
        let line = i + 1;
        let Some(tail) = comment.trim_start().strip_prefix("audit:") else {
            continue;
        };
        let tail = tail.trim_start();
        let file_wide = tail.starts_with("allow-file(");
        let open = if file_wide {
            "allow-file("
        } else if tail.starts_with("allow(") {
            "allow("
        } else {
            continue;
        };
        let body = &tail[open.len()..];
        let Some(close) = body.find(')') else {
            continue;
        };
        let inner = &body[..close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
            None => (inner.trim().to_string(), String::new()),
        };
        out.push(Suppression {
            line,
            rule,
            reason,
            file_wide,
        });
    }
    out
}

/// Whether a finding of `rule` at 1-based `line` is covered by one of
/// the parsed suppressions. Returns the index of the matching
/// suppression so callers can mark it used.
pub fn matches(sups: &[Suppression], s: &Scanned, rule: &str, line: usize) -> Option<usize> {
    // File-wide first.
    if let Some(i) = sups.iter().position(|x| x.file_wide && x.rule == rule) {
        return Some(i);
    }
    // Same line, or a stand-alone comment block immediately above.
    let mut covered = vec![line];
    let mut l = line;
    while l > 1 && s.is_comment_only(l - 1) {
        l -= 1;
        covered.push(l);
    }
    sups.iter()
        .position(|x| !x.file_wide && x.rule == rule && covered.contains(&x.line))
}

/// Whether `marker` (e.g. `"SAFETY:"`, `"PANIC-OK:"`) annotates the
/// 1-based `line`: same-line comment or the stand-alone comment block
/// immediately above. The marker must be followed by a non-empty
/// justification.
pub fn has_marker(s: &Scanned, marker: &str, line: usize) -> bool {
    let check = |l: usize| -> bool {
        let c = s.comment(l);
        c.find(marker)
            .map(|p| !c[p + marker.len()..].trim().is_empty())
            .unwrap_or(false)
    };
    if check(line) {
        return true;
    }
    let mut l = line;
    while l > 1 && s.is_comment_only(l - 1) {
        l -= 1;
        if check(l) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn parses_allow_and_allow_file() {
        let s = scan(
            "// audit: allow-file(D2, vendored bench shim measures wall time)\n\
             let t = now(); // audit: allow(D2, test-only helper)\n\
             // audit: allow(D4)\n",
        );
        let sups = collect(&s);
        assert_eq!(sups.len(), 3);
        assert!(sups[0].file_wide);
        assert_eq!(sups[0].rule, "D2");
        assert_eq!(sups[1].line, 2);
        assert_eq!(sups[1].reason, "test-only helper");
        assert_eq!(sups[2].rule, "D4");
        assert!(sups[2].reason.is_empty());
    }

    #[test]
    fn line_scope_covers_same_line_and_next_code_line() {
        let s = scan(
            "// audit: allow(D1, keys sorted downstream)\n\
             for k in m.keys() { v.push(k); }\n\
             for k in m.keys() { v.push(k); }\n",
        );
        let sups = collect(&s);
        assert_eq!(matches(&sups, &s, "D1", 2), Some(0));
        assert_eq!(matches(&sups, &s, "D1", 3), None);
        assert_eq!(matches(&sups, &s, "D2", 2), None);
    }

    #[test]
    fn marker_lookup_walks_comment_block() {
        let s = scan(
            "// SAFETY: pointer is valid for the scope's lifetime\n\
             // (checked by the caller)\n\
             unsafe { deref(p) }\n\
             unsafe { deref(q) }\n",
        );
        assert!(has_marker(&s, "SAFETY:", 3));
        assert!(!has_marker(&s, "SAFETY:", 4));
        let empty = scan("// SAFETY:\nunsafe { x() }\n");
        assert!(!has_marker(&empty, "SAFETY:", 2));
    }
}
