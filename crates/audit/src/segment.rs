//! Statement and block segmentation over the comment-stripped code
//! channel.
//!
//! Rules that reason about data flow (D1's iteration→sink analysis)
//! need more than single lines: a `for` header can span lines, and a
//! loop body is everything up to the matching close brace. This module
//! cuts the code channel into flat [`Stmt`]s — text between `;`, `{`
//! and `}` at bracket depth 0 — and records the matching close line of
//! every `{` so rules can scan a block's extent without re-parsing.

use crate::lexer::Scanned;

/// A flat statement: the text between separators, with its line span.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Statement text with line breaks collapsed to single spaces.
    pub text: String,
    /// 1-based line of the first character.
    pub first_line: usize,
    /// 1-based line of the last character.
    pub last_line: usize,
    /// When the statement is a block header (`for … {`, `fn … {`,
    /// `match … {` …): the 1-based line of the matching `}`.
    pub body_close_line: Option<usize>,
}

/// Segments the code channel of `s` into statements.
pub fn statements(s: &Scanned) -> Vec<Stmt> {
    let mut out: Vec<Stmt> = Vec::new();
    let mut text = String::new();
    let mut first_line = 0usize;
    // Open-brace stack: indices into `out` of header statements whose
    // close line is still unknown.
    let mut open_headers: Vec<Option<usize>> = Vec::new();
    let mut paren_depth = 0i32;

    for (li, line) in s.code.iter().enumerate() {
        let line_no = li + 1;
        for c in line.chars() {
            match c {
                '(' | '[' => paren_depth += 1,
                ')' | ']' => paren_depth -= 1,
                _ => {}
            }
            let is_sep = matches!(c, ';' | '{' | '}') && paren_depth <= 0;
            if !is_sep {
                if text.trim().is_empty() && !c.is_whitespace() {
                    first_line = line_no;
                    text.clear();
                }
                text.push(c);
                continue;
            }
            match c {
                ';' => {
                    text.push(';');
                    flush(&mut out, &mut text, &mut first_line, line_no, None);
                }
                '{' => {
                    let header_idx = if text.trim().is_empty() {
                        None
                    } else {
                        text.push('{');
                        flush(&mut out, &mut text, &mut first_line, line_no, None);
                        Some(out.len() - 1)
                    };
                    open_headers.push(header_idx);
                }
                '}' => {
                    if !text.trim().is_empty() {
                        flush(&mut out, &mut text, &mut first_line, line_no, None);
                    } else {
                        text.clear();
                    }
                    if let Some(Some(idx)) = open_headers.pop() {
                        out[idx].body_close_line = Some(line_no);
                    }
                }
                _ => unreachable!(),
            }
        }
        if !text.trim().is_empty() {
            text.push(' ');
        }
    }
    if !text.trim().is_empty() {
        let last = s.code.len();
        flush(&mut out, &mut text, &mut first_line, last, None);
    }
    out
}

fn flush(
    out: &mut Vec<Stmt>,
    text: &mut String,
    first_line: &mut usize,
    last_line: usize,
    body_close_line: Option<usize>,
) {
    let t = std::mem::take(text);
    // Collapse whitespace runs (multi-line statements fold to one
    // space-separated line) so rule patterns can match on plain text.
    let normalized = t.split_whitespace().collect::<Vec<_>>().join(" ");
    if normalized.is_empty() {
        return;
    }
    let fl = if *first_line == 0 {
        last_line
    } else {
        *first_line
    };
    out.push(Stmt {
        text: normalized,
        first_line: fl,
        last_line,
        body_close_line,
    });
    *first_line = 0;
}

/// Statements whose span starts strictly inside `(open_line, close_line)`.
pub fn stmts_in_block(
    stmts: &[Stmt],
    open_line: usize,
    close_line: usize,
) -> impl Iterator<Item = &Stmt> {
    stmts
        .iter()
        .filter(move |st| st.first_line > open_line && st.first_line < close_line)
        .filter(move |st| st.last_line <= close_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn splits_on_semicolons_and_braces() {
        let s = scan("let a = 1;\nfor x in ys {\n    a += x;\n}\n");
        let st = statements(&s);
        assert_eq!(st.len(), 3);
        assert_eq!(st[0].text, "let a = 1;");
        assert_eq!(st[1].text, "for x in ys {");
        assert_eq!(st[1].first_line, 2);
        assert_eq!(st[1].body_close_line, Some(4));
        assert_eq!(st[2].text, "a += x;");
    }

    #[test]
    fn multiline_chain_is_one_statement() {
        let s = scan("let v: Vec<_> = m\n    .keys()\n    .cloned()\n    .collect();\n");
        let st = statements(&s);
        assert_eq!(st.len(), 1);
        assert!(st[0].text.contains(".keys() .cloned() .collect();"));
        assert_eq!((st[0].first_line, st[0].last_line), (1, 4));
    }

    #[test]
    fn braces_inside_parens_do_not_split() {
        let s = scan("call(|| { inner(); });\nnext();\n");
        let st = statements(&s);
        assert_eq!(st.len(), 2);
        assert!(st[0].text.starts_with("call"));
    }

    #[test]
    fn block_membership() {
        let s = scan("for x in ys {\n    one();\n    two();\n}\nafter();\n");
        let st = statements(&s);
        let hdr = &st[0];
        let inner: Vec<_> = stmts_in_block(&st, hdr.first_line, hdr.body_close_line.unwrap())
            .map(|s| s.text.as_str())
            .collect();
        assert_eq!(inner, vec!["one();", "two();"]);
    }
}
