//! The `audit` binary: run the workspace pass, print findings as
//! `file:line rule message`, write `AUDIT.json`, exit non-zero on any
//! unsuppressed finding.
//!
//! ```text
//! cargo run -p audit --release             # write AUDIT.json, gate on findings
//! cargo run -p audit --release -- --check  # also fail if AUDIT.json drifted
//! cargo run -p audit --release -- --root <dir> --json <file>
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json_path = args.next().map(PathBuf::from),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("usage: audit [--root DIR] [--json FILE] [--check]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("audit: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| audit::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("audit: no workspace root found (looked for Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };
    let report = match audit::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    let unsafe_total: usize = report.unsafe_census.values().sum();
    let suppressed_total: usize = report.rule_counts.values().map(|c| c.suppressed).sum();
    eprintln!(
        "audit: {} files, {} open finding(s), {} suppressed, {} unsafe site(s)",
        report.files_scanned,
        report.findings.len(),
        suppressed_total,
        unsafe_total,
    );

    let json = report.to_json();
    let json_path = json_path.unwrap_or_else(|| root.join("AUDIT.json"));
    if check {
        match std::fs::read_to_string(&json_path) {
            Ok(on_disk) if on_disk == json => {}
            Ok(_) => {
                eprintln!(
                    "audit: {} drifted from the scanned tree (re-run `cargo run -p audit \
                     --release` and commit the result)",
                    json_path.display()
                );
                return ExitCode::from(1);
            }
            Err(e) => {
                eprintln!("audit: cannot read {}: {e}", json_path.display());
                return ExitCode::from(1);
            }
        }
    } else if let Err(e) = std::fs::write(&json_path, &json) {
        eprintln!("audit: cannot write {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
