//! The intra-repo call graph over the symbol table.
//!
//! Edges are name-resolved, not type-resolved: a call token binds to a
//! repo fn only when the binding is unambiguous — `Type::name(` when
//! exactly one `impl Type` defines `name`, `self.name(` when the
//! enclosing impl type defines it, and bare `name(` / `.name(` when
//! exactly one fn in the whole workspace has that name. Everything
//! else (trait dispatch, closures, shadowed names, std methods that
//! collide with repo names) resolves to *no* edge; D7 propagates
//! held-lock facts only along edges that exist, so the approximation
//! under-reports rather than false-positives. DESIGN.md §16 lists the
//! blind spots; the fixture corpus pins the covered shapes.

use crate::symbols::{find_word_from, SourceFile, SymbolTable};

/// Ubiquitous std method names never treated as repo calls in the
/// `.name(` form — a unique repo fn with one of these names would
/// otherwise swallow every `HashMap::get`/`Vec::push` in the tree.
const STD_METHODS: [&str; 30] = [
    "get", "len", "push", "pop", "insert", "remove", "contains", "clone", "iter", "next", "lock",
    "read", "write", "new", "default", "from", "into", "unwrap", "expect", "min", "max", "map",
    "and_then", "filter", "collect", "sort", "extend", "join", "clear", "take",
];

/// One resolved call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Callee fn index in the symbol table.
    pub callee: usize,
    /// 1-based line of the call token.
    pub line: usize,
    /// Byte column of the call token in the code channel (for
    /// ordering against lock sites on the same line).
    pub col: usize,
}

/// Resolved call sites per caller fn (indexed like `SymbolTable::fns`).
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// `calls[f]` = resolved call sites inside fn `f`'s body, in
    /// (line, col) order.
    pub calls: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the graph for every fn in `table`.
    pub fn build(files: &[SourceFile], table: &SymbolTable) -> CallGraph {
        let mut calls = Vec::with_capacity(table.fns.len());
        for f in &table.fns {
            calls.push(fn_calls(files, table, f));
        }
        CallGraph { calls }
    }
}

/// Lines of `f`'s body, excluding the extents of fns nested inside it
/// (their calls belong to the nested fn, and the nested header itself
/// would read as a call token).
pub(crate) fn body_lines(table: &SymbolTable, f: &crate::symbols::FnDef) -> Vec<usize> {
    let nested: Vec<(usize, usize)> = table
        .fns
        .iter()
        .filter(|g| g.file == f.file && g.line > f.line && g.end_line <= f.end_line)
        .map(|g| (g.line, g.end_line))
        .collect();
    (f.line..=f.end_line)
        .filter(|l| !nested.iter().any(|(a, b)| a <= l && l <= b))
        .collect()
}

fn fn_calls(files: &[SourceFile], table: &SymbolTable, f: &crate::symbols::FnDef) -> Vec<CallSite> {
    let scanned = &files[f.file].scanned;
    let mut out = Vec::new();
    for line_no in body_lines(table, f) {
        let line = scanned.line(line_no);
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if !(c.is_alphabetic() || c == '_') {
                i += 1;
                continue;
            }
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            // A call token is an ident directly followed by `(` —
            // `name!(` (macros) and `name (` never match.
            if i >= bytes.len() || bytes[i] != b'(' {
                continue;
            }
            let name = &line[start..i];
            let before = &line[..start];
            if before.trim_end().ends_with("fn") {
                continue; // definition header, not a call
            }
            let resolved = resolve(table, f, name, before);
            if let Some(callee) = resolved {
                out.push(CallSite {
                    callee,
                    line: line_no,
                    col: start,
                });
            }
        }
    }
    out
}

/// Resolves one call token to a fn index, or `None` when ambiguous.
fn resolve(
    table: &SymbolTable,
    caller: &crate::symbols::FnDef,
    name: &str,
    before: &str,
) -> Option<usize> {
    if let Some(path) = before.strip_suffix("::") {
        // `Type::name(` — bind through the impl when the qualifier is
        // a type; module paths (lowercase) fall back to unique-name.
        let seg: String = path
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if seg.chars().next().is_some_and(char::is_uppercase) {
            return table.method_of(&seg, name);
        }
        return unique(table, name);
    }
    if before.ends_with("self.") {
        if let Some(ty) = &caller.impl_type {
            if let Some(i) = table.method_of(ty, name) {
                return Some(i);
            }
        }
        return unique(table, name);
    }
    if before.ends_with('.') {
        // `.name(` — method position; std collisions are the main
        // false-edge source, so common std names never bind here.
        if STD_METHODS.contains(&name) {
            return None;
        }
        return unique(table, name);
    }
    unique(table, name)
}

fn unique(table: &SymbolTable, name: &str) -> Option<usize> {
    match table.fns_named(name) {
        [i] => Some(*i),
        _ => None,
    }
}

/// Whether `line` contains the member reference `recv.member` with
/// identifier boundaries on both ends (the inner `.` is literal).
pub(crate) fn contains_member_ref(line: &str, recv: &str, member: &str) -> bool {
    find_word_from(line, &format!("{recv}.{member}"), 0).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SourceFile;

    fn graph(src: &str) -> (SymbolTable, CallGraph) {
        let files = vec![SourceFile::prepare("crates/core/src/planted.rs", src)];
        let t = SymbolTable::build(&files);
        let g = CallGraph::build(&files, &t);
        (t, g)
    }

    #[test]
    fn unique_free_fn_and_method_edges() {
        let src = "fn helper(x: u32) -> u32 { x }\n\
                   pub struct A;\n\
                   impl A {\n    fn inner(&self) {}\n    fn outer(&self) {\n        \
                   self.inner();\n        helper(3);\n    }\n}\n";
        let (t, g) = graph(src);
        let outer = t.fns.iter().position(|f| f.name == "outer").unwrap();
        let callees: Vec<&str> = g.calls[outer]
            .iter()
            .map(|c| t.fns[c.callee].name.as_str())
            .collect();
        assert_eq!(callees, vec!["inner", "helper"]);
    }

    #[test]
    fn ambiguous_names_and_std_methods_do_not_bind() {
        let src = "pub struct A;\npub struct B;\n\
                   impl A {\n    fn get(&self) {}\n}\n\
                   impl B {\n    fn get(&self) {}\n}\n\
                   fn caller(m: std::collections::HashMap<u32, u32>) {\n    m.get(&1);\n    \
                   A::get(&A);\n}\n";
        let (t, g) = graph(src);
        let caller = t.fns.iter().position(|f| f.name == "caller").unwrap();
        // `.get(` is a std-method position; `A::get(` resolves via the
        // impl even though the bare name is ambiguous.
        let callees: Vec<String> = g.calls[caller]
            .iter()
            .map(|c| t.fns[c.callee].qual())
            .collect();
        assert_eq!(callees, vec!["A::get".to_string()]);
    }

    #[test]
    fn macros_and_nested_fn_headers_are_not_calls() {
        let src = "fn target() {}\n\
                   fn caller() {\n    println!(\"target()\");\n    fn target2() { target(); }\n    \
                   target2();\n}\n";
        let (t, g) = graph(src);
        let caller = t.fns.iter().position(|f| f.name == "caller").unwrap();
        let callees: Vec<&str> = g.calls[caller]
            .iter()
            .map(|c| t.fns[c.callee].name.as_str())
            .collect();
        // The nested fn's body (and its call to `target`) belongs to
        // `target2`, not `caller`; the string literal is blanked.
        assert_eq!(callees, vec!["target2"]);
        let target2 = t.fns.iter().position(|f| f.name == "target2").unwrap();
        assert_eq!(g.calls[target2].len(), 1);
    }
}
