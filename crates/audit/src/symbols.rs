//! The whole-repo symbol table: functions, structs (with fields) and
//! enums (with variants), extracted from the token stream.
//!
//! This is the foundation the cross-file rules (D7–D9) stand on. There
//! is still no `syn` — declarations are recognized from the
//! comment-stripped statement segmentation, and struct/enum bodies are
//! walked with a small depth-tracking character scanner (the statement
//! segmenter splits brace-bodied declarations, so field and variant
//! extraction works on raw code lines instead). The table is built
//! once per workspace pass and shared by every cross-file rule.
//!
//! Known approximations (documented in DESIGN.md §16): types are
//! matched by *name*, not by resolution — two structs with the same
//! name make that name unresolvable (the rules skip it rather than
//! guess); tuple structs carry no named fields and are not recorded;
//! a field's type text is taken from its declaration line only.

use std::collections::BTreeMap;

use crate::lexer::{self, Scanned};
use crate::scope::FileScope;
use crate::segment::{self, Stmt};

/// One source file prepared for whole-repo analysis: the scanned
/// channels, scope facts and statement segmentation, computed once and
/// shared by the per-file rules, the symbol table and the cross-file
/// rules.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Code/comment channels.
    pub scanned: Scanned,
    /// Location facts (crate, test/vendor/root flags, cfg(test) map).
    pub scope: FileScope,
    /// Flat statement segmentation of the code channel.
    pub stmts: Vec<Stmt>,
}

impl SourceFile {
    /// Scans and segments `src` under its workspace-relative `path`.
    pub fn prepare(path: &str, src: &str) -> SourceFile {
        let scanned = lexer::scan(src);
        let scope = FileScope::new(path, &scanned);
        let stmts = segment::statements(&scanned);
        SourceFile {
            path: scope.path.clone(),
            scanned,
            scope,
            stmts,
        }
    }
}

/// A function definition (free fn or method) with its body extent.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the defining file in the `SourceFile` slice.
    pub file: usize,
    /// 1-based line of the header's first token.
    pub line: usize,
    /// 1-based line of the body's closing `}`.
    pub end_line: usize,
    /// Bare name (`digest`, `run_engine`).
    pub name: String,
    /// Enclosing `impl` type, when the fn is a method (`SimTrace` for
    /// `impl SimTrace { fn digest … }`; trait impls record the
    /// implementing type, not the trait).
    pub impl_type: Option<String>,
    /// Whole normalized header text (for parameter parsing).
    pub header: String,
    /// Defined in test code (test file or `#[cfg(test)]` region).
    pub is_test: bool,
}

impl FnDef {
    /// `Type::name` for methods, bare `name` for free fns.
    pub fn qual(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Declared type text (same-line remainder after the `:`).
    pub ty: String,
}

impl Field {
    /// Whether the declared type is a lock (`Mutex`/`RwLock`,
    /// including instrumented wrappers like `TrackedMutex`).
    pub fn is_lock(&self) -> bool {
        self.ty.contains("Mutex") || self.ty.contains("RwLock")
    }
}

/// A brace-bodied struct definition with its named fields.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Index of the defining file.
    pub file: usize,
    /// 1-based line of the `struct` header.
    pub line: usize,
    /// Type name.
    pub name: String,
    /// Named fields in declaration order.
    pub fields: Vec<Field>,
    /// Defined in test code.
    pub is_test: bool,
}

/// An enum definition with its variant names.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// Index of the defining file.
    pub file: usize,
    /// 1-based line of the `enum` header.
    pub line: usize,
    /// Type name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// Defined in test code.
    pub is_test: bool,
}

/// The whole-repo symbol table.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// Every fn definition, in (file, line) order.
    pub fns: Vec<FnDef>,
    /// Every brace-bodied struct, in (file, line) order.
    pub structs: Vec<StructDef>,
    /// Every enum, in (file, line) order.
    pub enums: Vec<EnumDef>,
    fn_by_name: BTreeMap<String, Vec<usize>>,
    struct_by_name: BTreeMap<String, Vec<usize>>,
    enum_by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Builds the table over every prepared file, in slice order (the
    /// caller passes files sorted by path, so the table — and every
    /// rule that iterates it — is deterministic).
    pub fn build(files: &[SourceFile]) -> SymbolTable {
        let mut t = SymbolTable::default();
        for (fi, f) in files.iter().enumerate() {
            collect_file(&mut t, fi, f);
        }
        for (i, d) in t.fns.iter().enumerate() {
            t.fn_by_name.entry(d.name.clone()).or_default().push(i);
        }
        for (i, d) in t.structs.iter().enumerate() {
            t.struct_by_name.entry(d.name.clone()).or_default().push(i);
        }
        for (i, d) in t.enums.iter().enumerate() {
            t.enum_by_name.entry(d.name.clone()).or_default().push(i);
        }
        t
    }

    /// Indices of every fn with this bare name.
    pub fn fns_named(&self, name: &str) -> &[usize] {
        self.fn_by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The method `ty::name`, when exactly one exists.
    pub fn method_of(&self, ty: &str, name: &str) -> Option<usize> {
        let mut found = None;
        for &i in self.fns_named(name) {
            if self.fns[i].impl_type.as_deref() == Some(ty) {
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found
    }

    /// The struct with this name, when exactly one exists.
    pub fn struct_named(&self, name: &str) -> Option<&StructDef> {
        match self.struct_by_name.get(name).map(Vec::as_slice) {
            Some([i]) => Some(&self.structs[*i]),
            _ => None,
        }
    }

    /// The enum with this name, when exactly one exists.
    pub fn enum_named(&self, name: &str) -> Option<&EnumDef> {
        match self.enum_by_name.get(name).map(Vec::as_slice) {
            Some([i]) => Some(&self.enums[*i]),
            _ => None,
        }
    }
}

/// Word-boundary find of `needle` in `hay` starting at `from`;
/// returns the byte offset of the match.
pub(crate) fn find_word_from(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let mut start = from;
    while let Some(pos) = hay[start..].find(needle) {
        let abs = start + pos;
        let before_ok = !hay[..abs]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + needle.len();
        let after_ok = !hay[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + needle.len();
    }
    None
}

/// The leading identifier of `s`, if any.
fn leading_ident(s: &str) -> Option<String> {
    let ident: String = s
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!ident.is_empty() && !ident.chars().next().unwrap().is_numeric()).then_some(ident)
}

fn collect_file(t: &mut SymbolTable, fi: usize, f: &SourceFile) {
    // `impl` extents first, so fn→impl attribution is one containment
    // lookup. (Innermost wins, though Rust has no nested impls.)
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    for st in &f.stmts {
        let Some(close) = st.body_close_line else {
            continue;
        };
        if let Some(ty) = impl_header_type(&st.text) {
            impls.push((st.first_line, close, ty));
        }
    }

    for st in &f.stmts {
        let Some(close) = st.body_close_line else {
            continue;
        };
        let is_test = f.scope.is_test_line(st.first_line);
        if let Some(name) = fn_header_name(&st.text) {
            let impl_type = impls
                .iter()
                .filter(|(open, end, _)| *open < st.first_line && st.first_line <= *end)
                .max_by_key(|(open, _, _)| *open)
                .map(|(_, _, ty)| ty.clone());
            t.fns.push(FnDef {
                file: fi,
                line: st.first_line,
                end_line: close,
                name,
                impl_type,
                header: strip_attrs(&st.text).to_string(),
                is_test,
            });
        } else if let Some(name) = decl_header_name(&st.text, "struct") {
            t.structs.push(StructDef {
                file: fi,
                line: st.first_line,
                name,
                fields: struct_fields(&f.scanned, st.last_line, close),
                is_test,
            });
        } else if let Some(name) = decl_header_name(&st.text, "enum") {
            t.enums.push(EnumDef {
                file: fi,
                line: st.first_line,
                name,
                variants: enum_variants(&f.scanned, st.last_line, close),
                is_test,
            });
        }
    }
}

/// Strips leading attribute groups (`#[derive(…)] #[cfg(…)] …`) from
/// a normalized header text — the segmenter folds attribute lines
/// into the declaration statement they decorate.
fn strip_attrs(text: &str) -> &str {
    let mut rest = text.trim_start();
    while rest.starts_with("#[") {
        let mut depth = 0i32;
        let mut end = None;
        for (i, c) in rest.char_indices() {
            match c {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(i);
                        break;
                    }
                }
                _ => {}
            }
        }
        match end {
            Some(i) => rest = rest[i + 1..].trim_start(),
            None => break,
        }
    }
    rest
}

/// Tokens allowed before `fn` in a definition header.
fn is_fn_qualifier(tok: &str) -> bool {
    matches!(
        tok,
        "pub" | "const" | "async" | "unsafe" | "extern" | "default"
    ) || tok.starts_with("pub(")
        || tok.starts_with('"') // blanked `extern "C"` ABI string
}

/// The name of a fn definition header (`[quals] fn NAME … {`), if the
/// statement is one.
fn fn_header_name(text: &str) -> Option<String> {
    let text = strip_attrs(text);
    if !text.ends_with('{') {
        return None;
    }
    let pos = find_word_from(text, "fn", 0)?;
    if !text[..pos].split_whitespace().all(is_fn_qualifier) {
        return None;
    }
    leading_ident(text[pos + 2..].trim_start())
}

/// The name of a `struct`/`enum` definition header with a brace body.
fn decl_header_name(text: &str, kw: &str) -> Option<String> {
    let text = strip_attrs(text);
    if !text.ends_with('{') {
        return None;
    }
    let pos = find_word_from(text, kw, 0)?;
    let prefix_ok = text[..pos]
        .split_whitespace()
        .all(|tok| tok == "pub" || tok.starts_with("pub("));
    if !prefix_ok {
        return None;
    }
    leading_ident(text[pos + kw.len()..].trim_start())
}

/// The implementing type of an `impl` header (`Bar` for both
/// `impl Bar {` and `impl<T> Foo<T> for Bar<T> where … {`).
fn impl_header_type(text: &str) -> Option<String> {
    let rest = strip_attrs(text).strip_prefix("impl")?;
    // `impl` must be followed by a generic group, whitespace or a type.
    if rest
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
    {
        return None;
    }
    let rest = rest.strip_suffix('{')?.trim();
    let rest = skip_angle_group(rest).trim_start();
    let rest = rest.split(" where ").next().unwrap_or(rest).trim();
    // Top-level ` for ` separates trait from type.
    let ty = match find_top_level_for(rest) {
        Some(p) => rest[p + 3..].trim(),
        None => rest,
    };
    let base = ty.split('<').next()?.trim();
    let name = base.rsplit("::").next()?.trim();
    leading_ident(name).filter(|n| n.chars().next().is_some_and(char::is_uppercase))
}

/// Skips a leading `<…>` generics group (angle-bracket balanced).
fn skip_angle_group(s: &str) -> &str {
    if !s.starts_with('<') {
        return s;
    }
    let mut depth = 0i32;
    let mut prev = '\0';
    for (i, c) in s.char_indices() {
        match c {
            '<' => depth += 1,
            '>' if prev != '-' => {
                depth -= 1;
                if depth == 0 {
                    return &s[i + 1..];
                }
            }
            _ => {}
        }
        prev = c;
    }
    s
}

/// Byte offset of the word `for` at angle depth 0, if present.
fn find_top_level_for(s: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut prev = '\0';
    let mut i = 0;
    let bytes = s.as_bytes();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '<' => depth += 1,
            '>' if prev != '-' => depth -= 1,
            'f' if depth == 0
                && s[i..].starts_with("for")
                && !s[..i]
                    .chars()
                    .next_back()
                    .is_some_and(|p| p.is_alphanumeric() || p == '_')
                && !s[i + 3..]
                    .chars()
                    .next()
                    .is_some_and(|n| n.is_alphanumeric() || n == '_') =>
            {
                return Some(i);
            }
            _ => {}
        }
        prev = c;
        i += 1;
    }
    None
}

/// Depth-tracking walk over a declaration body shared by field and
/// variant extraction. Calls `emit(name, line, rest_of_line)` for each
/// top-level (depth-1) member name.
fn walk_decl_body(
    scanned: &Scanned,
    open_line: usize,
    close_line: usize,
    mut emit: impl FnMut(String, usize, &str),
) {
    let mut brace = 0i32;
    let mut paren = 0i32;
    // A member name is expected right after the opening `{` and after
    // every top-level `,`.
    let mut expecting = false;
    for line_no in open_line..=close_line {
        let line = scanned.line(line_no);
        let chars: Vec<char> = line.chars().collect();
        // Attribute lines inside the body (`#[cfg(…)]`) never carry
        // the member name; skip them wholesale.
        if brace >= 1 && line.trim_start().starts_with("#[") {
            continue;
        }
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '{' => {
                    brace += 1;
                    if brace == 1 {
                        expecting = true;
                    }
                }
                '}' => brace -= 1,
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                ',' if brace == 1 && paren == 0 => expecting = true,
                c if expecting && brace == 1 && paren == 0 && (c.is_alphabetic() || c == '_') => {
                    let start = i;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let word: String = chars[start..i].iter().collect();
                    if word == "pub" {
                        // Visibility, possibly with a `(crate)` group
                        // the paren counter will skip for us.
                        continue;
                    }
                    let rest: String = chars[i..].iter().collect();
                    emit(word, line_no, &rest);
                    expecting = false;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// Named fields of a struct body (tuple/unit structs never get here:
/// only brace headers are segmented with a body extent).
fn struct_fields(scanned: &Scanned, open_line: usize, close_line: usize) -> Vec<Field> {
    let mut fields = Vec::new();
    walk_decl_body(scanned, open_line, close_line, |name, line, rest| {
        // A field is `name: Type`; anything else (e.g. the macro-free
        // grammar has no other shapes at depth 1) is skipped.
        let rest = rest.trim_start();
        if let Some(ty) = rest.strip_prefix(':') {
            if !ty.starts_with(':') {
                let ty = ty.split(',').next().unwrap_or(ty).trim().to_string();
                fields.push(Field { name, line, ty });
            }
        }
    });
    fields
}

/// Variant names of an enum body.
fn enum_variants(scanned: &Scanned, open_line: usize, close_line: usize) -> Vec<String> {
    let mut variants = Vec::new();
    walk_decl_body(scanned, open_line, close_line, |name, _line, _rest| {
        variants.push(name);
    });
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> (SymbolTable, Vec<SourceFile>) {
        let files = vec![SourceFile::prepare("crates/core/src/planted.rs", src)];
        (SymbolTable::build(&files), files)
    }

    #[test]
    fn fns_and_impl_attribution() {
        let src = "pub struct A {\n    pub x: u32,\n}\n\
                   impl A {\n    pub fn get_x(&self) -> u32 {\n        self.x\n    }\n}\n\
                   impl std::fmt::Display for A {\n    fn fmt(&self) -> u32 { 0 }\n}\n\
                   fn free() {}\n";
        let (t, _) = table(src);
        assert_eq!(t.fns.len(), 3);
        assert_eq!(t.fns[0].qual(), "A::get_x");
        assert_eq!((t.fns[0].line, t.fns[0].end_line), (5, 7));
        assert_eq!(t.fns[1].qual(), "A::fmt");
        assert_eq!(t.fns[2].qual(), "free");
        assert!(t.method_of("A", "get_x").is_some());
        assert!(t.method_of("A", "free").is_none());
    }

    #[test]
    fn struct_fields_with_visibility_attributes_and_locks() {
        let src = "pub struct S {\n    /// doc\n    pub a: u32,\n    #[allow(dead_code)]\n    \
                   b: Vec<(u32, u64)>,\n    pub(crate) inner: std::sync::Mutex<u64>,\n}\n";
        let (t, _) = table(src);
        let s = t.struct_named("S").expect("unique struct");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "inner"]);
        assert_eq!(s.fields[0].line, 3);
        assert!(s.fields[2].is_lock());
        assert!(!s.fields[1].is_lock());
    }

    #[test]
    fn enum_variants_with_payloads() {
        let src = "pub enum E {\n    Plain,\n    Tuple(u64, u32),\n    \
                   Struct { peer: u32, dur: u64 },\n    Last(Option<u64>),\n}\n";
        let (t, _) = table(src);
        let e = t.enum_named("E").expect("unique enum");
        assert_eq!(e.variants, vec!["Plain", "Tuple", "Struct", "Last"]);
    }

    #[test]
    fn generic_trait_impl_resolves_the_implementing_type() {
        let src = "pub struct W<C> {\n    c: C,\n}\n\
                   impl<C: Clone> Iterator for W<C> {\n    fn next(&mut self) -> Option<C> {\n        \
                   None\n    }\n}\n";
        let (t, _) = table(src);
        assert_eq!(t.fns[0].impl_type.as_deref(), Some("W"));
    }

    #[test]
    fn duplicate_names_are_unresolvable() {
        let src = "mod a {\n    pub struct D {\n        pub x: u32,\n    }\n}\n\
                   mod b {\n    pub struct D {\n        pub y: u32,\n    }\n}\n";
        let (t, _) = table(src);
        assert_eq!(t.structs.len(), 2);
        assert!(t.struct_named("D").is_none());
    }

    #[test]
    fn test_code_is_flagged() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let (t, _) = table(src);
        assert!(!t.fns[0].is_test);
        assert!(t.fns[1].is_test);
    }
}
