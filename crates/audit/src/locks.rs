//! D7 — lock discipline over the call graph.
//!
//! Extracts every `Mutex`/`RwLock` acquisition site, derives how long
//! each guard is held (a `let`-bound guard lives to its enclosing
//! block's close or an explicit `drop(..)`, a temporary to its own
//! statement, a block-header scrutinee to the block close), and then
//! checks three properties:
//!
//! * **double lock** — the same lock acquired while already held, on
//!   the same path (directly, or through a uniquely-resolved call
//!   chain): a guaranteed self-deadlock under `std::sync::Mutex`;
//! * **acquisition-order cycles** — lock `A` held while `B` is
//!   acquired at one site and `B` held while `A` is acquired at
//!   another (possibly in different crates, via the call graph): a
//!   potential deadlock the moment the two paths run concurrently;
//! * **fork-join under a lock** — a blocking `par_map` issued while a
//!   guard is held serializes the pool at best and deadlocks at worst
//!   (workers touching the same lock).
//!
//! Lock identity is name-resolved: `self.FIELD.lock()` binds through
//! the enclosing impl type to a `Mutex`-typed field (`Type.field`);
//! `NAME.lock()` binds to a `let`-declared local whose type or
//! constructor names a lock. Receivers the table cannot resolve are
//! skipped — like the call graph, D7 under-reports rather than
//! guesses (DESIGN.md §16 lists the blind spots).

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{body_lines, CallGraph};
use crate::rules::RawFinding;
use crate::symbols::{FnDef, SourceFile, SymbolTable};

/// Lock acquisition tokens (empty-parens forms only, so `io::Read::
/// read(buf)` and `fmt::Write::write(s)` never match).
const LOCK_TOKENS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Blocking fork-join entry points checked under held locks.
const PAR_TOKENS: [&str; 2] = ["par_map(", "minipool::join("];

/// A finding attributed to a file index (cross-file rules report into
/// other files than the one that triggered the analysis).
pub type CrossFinding = (usize, RawFinding);

/// One resolved lock acquisition.
#[derive(Debug, Clone)]
struct Site {
    /// Lock identity (`Type.field` or `path::fn::local`).
    id: String,
    line: usize,
    col: usize,
    /// Last 1-based line on which the guard is still held.
    span_end: usize,
}

/// Runs D7 over every non-test fn.
pub fn d7(files: &[SourceFile], table: &SymbolTable, graph: &CallGraph) -> Vec<CrossFinding> {
    analyze(files, table, graph).0
}

/// The statically derived acquisition-order edges `(held, acquired)`,
/// sorted. The runtime sanitizer's agreement test checks the orders a
/// sim run actually took against these.
pub fn order_edges(
    files: &[SourceFile],
    table: &SymbolTable,
    graph: &CallGraph,
) -> Vec<(String, String)> {
    analyze(files, table, graph).1.into_keys().collect()
}

type OrderEdges = BTreeMap<(String, String), (usize, usize)>;

fn analyze(
    files: &[SourceFile],
    table: &SymbolTable,
    graph: &CallGraph,
) -> (Vec<CrossFinding>, OrderEdges) {
    let mut out: Vec<CrossFinding> = Vec::new();
    // (from, to) → first acquisition site that witnessed the order.
    let mut edges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();

    let sites: Vec<Vec<Site>> = table
        .fns
        .iter()
        .map(|f| fn_sites(files, table, f))
        .collect();
    let pars: Vec<Vec<(usize, usize)>> = table
        .fns
        .iter()
        .map(|f| par_sites(files, table, f))
        .collect();
    let trans = Transitive::compute(table, graph, &sites, &pars);

    for (fi, f) in table.fns.iter().enumerate() {
        if f.is_test || files[f.file].scope.is_test_file || files[f.file].scope.is_vendor {
            continue;
        }
        let s = &sites[fi];
        // Direct pairwise overlap within the fn.
        for j in 1..s.len() {
            for i in 0..j {
                if !covers(&s[i], s[j].line, s[j].col) {
                    continue;
                }
                if s[i].id == s[j].id {
                    out.push((
                        f.file,
                        finding(
                            s[j].line,
                            format!(
                                "double lock: `{}` acquired while the guard from line {} is \
                                 still held (self-deadlock under std::sync::Mutex)",
                                s[j].id, s[i].line
                            ),
                        ),
                    ));
                } else {
                    edges
                        .entry((s[i].id.clone(), s[j].id.clone()))
                        .or_insert((f.file, s[j].line));
                }
            }
        }
        // Fork-join directly under a held guard.
        for &(pl, pc) in &pars[fi] {
            for held in s.iter().filter(|x| covers(x, pl, pc)) {
                out.push((
                    f.file,
                    finding(
                        pl,
                        format!(
                            "blocking fork-join while holding `{}` (guard from line {}): \
                             par_map under a lock serializes or deadlocks the pool",
                            held.id, held.line
                        ),
                    ),
                ));
            }
        }
        // Propagation through uniquely-resolved calls.
        for call in &graph.calls[fi] {
            let callee = &table.fns[call.callee];
            let (tacq, tpar) = trans.of(call.callee);
            let held: Vec<&Site> = s
                .iter()
                .filter(|x| covers(x, call.line, call.col))
                .collect();
            if held.is_empty() {
                continue;
            }
            for h in &held {
                if tacq.contains(&h.id) {
                    out.push((
                        f.file,
                        finding(
                            call.line,
                            format!(
                                "double lock via call: `{}` is held here and re-acquired \
                                 inside `{}` (possibly transitively)",
                                h.id,
                                callee.qual()
                            ),
                        ),
                    ));
                } else {
                    for a in tacq {
                        edges
                            .entry((h.id.clone(), a.clone()))
                            .or_insert((f.file, call.line));
                    }
                }
            }
            if tpar {
                for h in &held {
                    out.push((
                        f.file,
                        finding(
                            call.line,
                            format!(
                                "call while holding `{}` reaches a blocking fork-join \
                                 inside `{}`",
                                h.id,
                                callee.qual()
                            ),
                        ),
                    ));
                }
            }
        }
    }

    // Acquisition-order cycles: every edge on a cycle is reported at
    // the site that witnessed it, so each involved file gets a finding.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (u, v) in edges.keys() {
        adj.entry(u.as_str()).or_default().insert(v.as_str());
    }
    for ((u, v), &(file, line)) in &edges {
        if reachable(&adj, v, u) {
            out.push((
                file,
                finding(
                    line,
                    format!(
                        "lock-order cycle: `{v}` acquired while holding `{u}` here, but \
                         `{u}` is also acquired while `{v}` is held elsewhere — potential \
                         deadlock"
                    ),
                ),
            ));
        }
    }
    (out, edges)
}

fn finding(line: usize, message: String) -> RawFinding {
    RawFinding {
        line,
        rule: "D7",
        message,
    }
}

fn covers(s: &Site, line: usize, col: usize) -> bool {
    ((s.line, s.col) < (line, col)) && line <= s.span_end
}

fn reachable(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Locks acquired (and fork-joins reached) by a fn *or any uniquely
/// resolved callee*, memoized; recursion is cut by returning the
/// partial set (an under-approximation, never a false positive).
struct Transitive {
    acq: Vec<BTreeSet<String>>,
    par: Vec<bool>,
}

impl Transitive {
    fn compute(
        table: &SymbolTable,
        graph: &CallGraph,
        sites: &[Vec<Site>],
        pars: &[Vec<(usize, usize)>],
    ) -> Transitive {
        let n = table.fns.len();
        let mut t = Transitive {
            acq: vec![BTreeSet::new(); n],
            par: vec![false; n],
        };
        let mut done = vec![false; n];
        for i in 0..n {
            Self::fill(i, graph, sites, pars, &mut t, &mut done, &mut Vec::new());
        }
        t
    }

    fn fill(
        i: usize,
        graph: &CallGraph,
        sites: &[Vec<Site>],
        pars: &[Vec<(usize, usize)>],
        t: &mut Transitive,
        done: &mut [bool],
        on_stack: &mut Vec<usize>,
    ) {
        if done[i] || on_stack.contains(&i) {
            return;
        }
        on_stack.push(i);
        let mut acq: BTreeSet<String> = sites[i].iter().map(|s| s.id.clone()).collect();
        let mut par = !pars[i].is_empty();
        for call in &graph.calls[i] {
            Self::fill(call.callee, graph, sites, pars, t, done, on_stack);
            acq.extend(t.acq[call.callee].iter().cloned());
            par |= t.par[call.callee];
        }
        on_stack.pop();
        t.acq[i] = acq;
        t.par[i] = par;
        done[i] = true;
    }

    fn of(&self, i: usize) -> (&BTreeSet<String>, bool) {
        (&self.acq[i], self.par[i])
    }
}

/// Fork-join tokens in a fn body, as (line, col).
fn par_sites(files: &[SourceFile], table: &SymbolTable, f: &FnDef) -> Vec<(usize, usize)> {
    let scanned = &files[f.file].scanned;
    let mut out = Vec::new();
    for line_no in body_lines(table, f) {
        let line = scanned.line(line_no);
        for tok in PAR_TOKENS {
            let mut from = 0;
            while let Some(p) = line[from..].find(tok) {
                let abs = from + p;
                out.push((line_no, abs));
                from = abs + tok.len();
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Every resolved lock acquisition in a fn body, in (line, col) order.
fn fn_sites(files: &[SourceFile], table: &SymbolTable, f: &FnDef) -> Vec<Site> {
    let file = &files[f.file];
    let locals = local_locks(file, f);
    let mut out = Vec::new();
    for line_no in body_lines(table, f) {
        let line = file.scanned.line(line_no);
        for tok in LOCK_TOKENS {
            let mut from = 0;
            while let Some(p) = line[from..].find(tok) {
                let abs = from + p;
                from = abs + tok.len();
                let Some(id) = resolve_receiver(table, f, &locals, &line[..abs]) else {
                    continue;
                };
                let span_end = guard_span(file, f, line_no, tok);
                out.push(Site {
                    id,
                    line: line_no,
                    col: abs,
                    span_end,
                });
            }
        }
    }
    out.sort_by_key(|s| (s.line, s.col));
    out
}

/// `let`-declared lock bindings in the fn body: name → lock id.
fn local_locks(file: &SourceFile, f: &FnDef) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for st in &file.stmts {
        if st.first_line <= f.line || st.first_line > f.end_line {
            continue;
        }
        let Some(rest) = st.text.strip_prefix("let ") else {
            continue;
        };
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() || name == "_" {
            continue;
        }
        let (before_eq, after_eq) = match rest.split_once('=') {
            Some((b, a)) => (b, a),
            None => (rest, ""),
        };
        let is_lock = ["Mutex", "RwLock"]
            .iter()
            .any(|m| before_eq.contains(m) || after_eq.contains(&format!("{m}::new(")));
        if is_lock {
            out.insert(
                name.clone(),
                format!("{}::{}::{}", file.path, f.qual(), name),
            );
        }
    }
    out
}

/// Resolves the receiver chain ending just before a lock token:
/// `self.FIELD` through the impl type's lock fields, a bare name
/// through the fn's `let`-declared locks.
fn resolve_receiver(
    table: &SymbolTable,
    f: &FnDef,
    locals: &BTreeMap<String, String>,
    before: &str,
) -> Option<String> {
    let chain: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    let chain = chain.trim_matches('.');
    if let Some(field) = chain.strip_prefix("self.") {
        let ty = f.impl_type.as_deref()?;
        let st = table.struct_named(ty)?;
        let fd = st.fields.iter().find(|x| x.name == field)?;
        return fd.is_lock().then(|| format!("{ty}.{field}"));
    }
    if !chain.contains('.') {
        return locals.get(chain).cloned();
    }
    None
}

/// How long the guard produced at (`line_no`, token) is held.
fn guard_span(file: &SourceFile, f: &FnDef, line_no: usize, tok: &str) -> usize {
    let stmt = file
        .stmts
        .iter()
        .filter(|s| s.first_line <= line_no && line_no <= s.last_line)
        .find(|s| s.text.contains(tok));
    let Some(stmt) = stmt else {
        return line_no;
    };
    // A block header (`match m.lock() … {`, `if let Ok(g) = m.lock() {`)
    // keeps the scrutinee/binding alive for the whole block.
    if let Some(close) = stmt.body_close_line {
        return close.min(f.end_line);
    }
    let rest = match stmt.text.strip_prefix("let ") {
        Some(r) => r.strip_prefix("mut ").unwrap_or(r),
        None => return stmt.last_line, // temporary guard
    };
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        return stmt.last_line;
    }
    // Innermost enclosing block within the fn, else the fn body.
    let close = file
        .stmts
        .iter()
        .filter(|h| {
            h.body_close_line.is_some_and(|c| c >= stmt.last_line)
                && h.first_line <= stmt.first_line
                && h.first_line >= f.line
                && !std::ptr::eq(*h, stmt)
        })
        .max_by_key(|h| h.first_line)
        .and_then(|h| h.body_close_line)
        .unwrap_or(f.end_line)
        .min(f.end_line);
    // An explicit `drop(NAME)` releases early.
    let drop_tok = format!("drop({name})");
    for l in stmt.last_line + 1..=close {
        if file.scanned.line(l).contains(&drop_tok) {
            return l;
        }
    }
    close
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn run(src: &str) -> Vec<(usize, String)> {
        let files = vec![SourceFile::prepare("crates/core/src/planted.rs", src)];
        let table = SymbolTable::build(&files);
        let graph = CallGraph::build(&files, &table);
        d7(&files, &table, &graph)
            .into_iter()
            .map(|(_, f)| (f.line, f.message))
            .collect()
    }

    const HEADER: &str =
        "use std::sync::Mutex;\npub struct S {\n    a: Mutex<u32>,\n    b: Mutex<u32>,\n}\n";

    #[test]
    fn sequential_guards_in_one_block_are_a_double_lock() {
        let src = format!(
            "{HEADER}impl S {{\n    fn f(&self) {{\n        let g1 = self.a.lock().unwrap();\n        \
             let g2 = self.a.lock().unwrap();\n        drop(g1);\n        drop(g2);\n    }}\n}}\n"
        );
        let got = run(&src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, 9);
        assert!(got[0].1.contains("double lock"));
    }

    #[test]
    fn dropped_guard_clears_the_hold() {
        let src = format!(
            "{HEADER}impl S {{\n    fn f(&self) {{\n        let g1 = self.a.lock().unwrap();\n        \
             drop(g1);\n        let g2 = self.a.lock().unwrap();\n        drop(g2);\n    }}\n}}\n"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn temporaries_do_not_overlap() {
        let src = format!(
            "{HEADER}impl S {{\n    fn f(&self) {{\n        *self.a.lock().unwrap() += 1;\n        \
             *self.a.lock().unwrap() += 1;\n    }}\n}}\n"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn opposite_orders_make_a_cycle() {
        let src = format!(
            "{HEADER}impl S {{\n    fn f(&self) {{\n        let g = self.a.lock().unwrap();\n        \
             let h = self.b.lock().unwrap();\n        drop(h);\n        drop(g);\n    }}\n    \
             fn g(&self) {{\n        let g = self.b.lock().unwrap();\n        \
             let h = self.a.lock().unwrap();\n        drop(h);\n        drop(g);\n    }}\n}}\n"
        );
        let got = run(&src);
        let cycles: Vec<_> = got.iter().filter(|(_, m)| m.contains("cycle")).collect();
        assert_eq!(cycles.len(), 2, "both witnessing sites report: {got:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{HEADER}impl S {{\n    fn f(&self) {{\n        let g = self.a.lock().unwrap();\n        \
             let h = self.b.lock().unwrap();\n        drop(h);\n        drop(g);\n    }}\n    \
             fn g(&self) {{\n        let g = self.a.lock().unwrap();\n        \
             let h = self.b.lock().unwrap();\n        drop(h);\n        drop(g);\n    }}\n}}\n"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn double_lock_through_a_call() {
        let src = format!(
            "{HEADER}impl S {{\n    fn leaf(&self) {{\n        *self.a.lock().unwrap() += 1;\n    }}\n    \
             fn caller(&self) {{\n        let g = self.a.lock().unwrap();\n        \
             self.leaf();\n        drop(g);\n    }}\n}}\n"
        );
        let got = run(&src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].1.contains("double lock via call"), "{got:?}");
    }

    #[test]
    fn par_map_under_local_lock_fires() {
        let src = "fn f(items: &[u32]) {\n    let m = std::sync::Mutex::new(0u32);\n    \
                   let g = m.lock().unwrap();\n    let _v = minipool::par_map(2, items, |x| *x);\n    \
                   drop(g);\n}\n";
        let got = run(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].1.contains("fork-join"), "{got:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = format!(
            "{HEADER}#[cfg(test)]\nmod tests {{\n    use super::*;\n    fn f(s: &S) {{\n        \
             let g1 = s.a.lock().unwrap();\n        let g2 = s.a.lock().unwrap();\n        \
             drop(g1);\n        drop(g2);\n    }}\n}}\n"
        );
        assert!(run(&src).is_empty());
    }
}
