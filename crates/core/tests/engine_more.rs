//! Additional crate-level tests for the core engine: DAG edge cases,
//! caching pass-through, and multi-user specialization accounting.

use crowd::{
    Answer, AnswerModel, CrowdSource, MemberBehavior, MemberId, PersonalDb, Question,
    SimulatedCrowd, SimulatedMember,
};
use oassis_core::{run_multi, CachingCrowd, CrowdCache, Dag, FixedSampleAggregator, MiningConfig};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};
use ontology::domains::figure1;
use ontology::PatternSet;

fn u_avg(ont: &ontology::Ontology, seed: u64) -> SimulatedMember {
    let [d1, d2] = figure1::personal_dbs(ont);
    let mut tx = d1;
    for _ in 0..3 {
        tx.extend(d2.iter().cloned());
    }
    SimulatedMember::new(
        PersonalDb::from_transactions(tx),
        MemberBehavior::default(),
        AnswerModel::Exact,
        seed,
    )
}

#[test]
fn attaching_the_same_more_tip_twice_is_idempotent() {
    let ont = figure1::ontology();
    let q = parse(figure1::SAMPLE_QUERY).unwrap();
    let b = bind(&q, &ont).unwrap();
    let base = evaluate_where(&b, &ont, MatchMode::Exact);
    let mut dag = Dag::new(&b, ont.vocab(), &base);
    let v = ont.vocab();
    let root = dag.roots()[0];
    let tip = v.fact("Rent Bikes", "doAt", "Boathouse").unwrap();
    let c1 = dag.attach_more_tip(root, tip).unwrap();
    let n_children = dag.children(root).len();
    let c2 = dag.attach_more_tip(root, tip).unwrap();
    assert_eq!(c1, c2);
    assert_eq!(dag.children(root).len(), n_children);
    // and the node is findable by assignment
    let a = dag.node(c1).assignment.clone();
    assert_eq!(dag.lookup(&a), Some(c1));
}

#[test]
fn caching_crowd_forwards_specialization_questions() {
    let ont = figure1::ontology();
    let v = ont.vocab();
    let mut cache = CrowdCache::new();
    let crowd = SimulatedCrowd::new(v, vec![u_avg(&ont, 0)]);
    let mut caching = CachingCrowd::new(crowd, &mut cache);
    let base = PatternSet::from_facts([v.fact("Sport", "doAt", "Central Park").unwrap()]);
    let options = vec![
        PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]),
        PatternSet::from_facts([v.fact("Ball Game", "doAt", "Central Park").unwrap()]),
    ];
    let q = Question::Specialization { base, options };
    let a1 = caching.ask(MemberId(0), &q);
    let a2 = caching.ask(MemberId(0), &q);
    assert!(matches!(a1, Answer::Specialized { .. }));
    assert_eq!(a1, a2);
    // spec questions are never cached: both went to the inner crowd
    assert_eq!(caching.fresh_questions(), 2);
    assert_eq!(caching.total_questions(), 2);
    assert!(cache.is_empty());
}

#[test]
fn multi_user_specialization_ratio_produces_spec_answers() {
    let ont = figure1::ontology();
    let q = parse(figure1::SIMPLE_QUERY).unwrap();
    let b = bind(&q, &ont).unwrap();
    let base = evaluate_where(&b, &ont, MatchMode::Exact);
    let mut dag = Dag::new(&b, ont.vocab(), &base);
    let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1), u_avg(&ont, 2)]);
    let cfg = MiningConfig {
        specialization_ratio: 0.5,
        seed: 3,
        ..Default::default()
    };
    let out = run_multi(
        &mut dag,
        &mut crowd,
        &FixedSampleAggregator { sample_size: 2 },
        &cfg,
    );
    assert!(out.mining.complete);
    let st = out.question_stats;
    assert!(st.specialization + st.none_of_these > 0, "{st:?}");
    assert!(st.concrete > 0);
    assert_eq!(st.total(), out.mining.questions);
    // and the result still matches the ground truth
    let rendered: Vec<String> = out
        .mining
        .msps
        .iter()
        .map(|m| m.apply(&b).to_display(ont.vocab()))
        .collect();
    assert!(
        rendered.iter().any(|r| r == "Biking doAt Central Park"),
        "{rendered:?}"
    );
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let ont = figure1::ontology();
    let run = || {
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let cfg = MiningConfig {
            specialization_ratio: 0.3,
            seed: 9,
            ..Default::default()
        };
        let out = run_multi(
            &mut dag,
            &mut crowd,
            &FixedSampleAggregator { sample_size: 1 },
            &cfg,
        );
        (
            out.mining.questions,
            out.mining
                .msps
                .iter()
                .map(|m| m.apply(&b).to_display(ont.vocab()))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}
