//! Assignments with multiplicities (Definition 4.1) and their semantic
//! partial order.
//!
//! An assignment maps each SATISFYING-clause variable to a **set** of
//! vocabulary values (elements or relations; singletons unless the
//! variable carries a multiplicity annotation), plus a set of `MORE` facts.
//! Value sets are kept as canonical **antichains**: a value dominated by
//! another value of the same set is redundant under the order of
//! Definition 4.1 (`{Sport, Biking}` ≡ `{Biking}`), so canonical form
//! removes it — making equality and hashing semantic.

// audit: allow-file(D4, slot indices are bounded by the query arity fixed at parse time)
use oassis_ql::{BoundQuery, FactTerm, RelTerm, Value, VarId};
use ontology::{Fact, PatternFact, PatternSet, Vocabulary};

/// Index of a SATISFYING variable within an assignment (the *slot*);
/// slot `i` corresponds to `BoundQuery::sat_vars[i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slot(pub u16);

impl Slot {
    /// The slot as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// `a ≤ b` over assignment values (elements with `≤E`, relations with
/// `≤R`; values of different kinds are incomparable).
pub fn value_leq(vocab: &Vocabulary, a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::Elem(x), Value::Elem(y)) => vocab.elem_leq(x, y),
        (Value::Rel(x), Value::Rel(y)) => vocab.rel_leq(x, y),
        _ => false,
    }
}

/// An assignment with multiplicities: per-slot canonical antichains of
/// values plus MORE facts (themselves a canonical antichain under the fact
/// order).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Assignment {
    /// Per-slot value sets, sorted; dominated values removed.
    values: Vec<Vec<Value>>,
    /// MORE facts, sorted; dominated facts removed.
    more: Vec<Fact>,
}

impl Assignment {
    /// Creates an assignment from raw per-slot value sets, canonicalizing.
    pub fn new(vocab: &Vocabulary, values: Vec<Vec<Value>>, more: Vec<Fact>) -> Self {
        let values = values
            .into_iter()
            .map(|s| canonical_values(vocab, s))
            .collect();
        let more = canonical_facts(vocab, more);
        Assignment { values, more }
    }

    /// An assignment with `slots` empty slots and no MORE facts.
    pub fn empty(slots: usize) -> Self {
        Assignment {
            values: vec![Vec::new(); slots],
            more: Vec::new(),
        }
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.values.len()
    }

    /// The value set of a slot.
    pub fn slot(&self, s: Slot) -> &[Value] {
        &self.values[s.index()]
    }

    /// The MORE facts.
    pub fn more(&self) -> &[Fact] {
        &self.more
    }

    /// Whether every slot is a singleton and there are no MORE facts
    /// (a *base* assignment, as produced by SPARQL evaluation).
    pub fn is_base(&self) -> bool {
        self.more.is_empty() && self.values.iter().all(|s| s.len() == 1)
    }

    /// Total number of values across slots plus MORE facts (a size measure
    /// used in experiments on multiplicities).
    pub fn total_values(&self) -> usize {
        self.values.iter().map(Vec::len).sum::<usize>() + self.more.len()
    }

    /// Returns a copy with `v` inserted into slot `s` (canonicalized).
    pub fn with_value(&self, vocab: &Vocabulary, s: Slot, v: Value) -> Assignment {
        let mut values = self.values.clone();
        values[s.index()].push(v);
        Assignment::new(vocab, values, self.more.clone())
    }

    /// Returns a copy with value `old` of slot `s` replaced by `new`
    /// (canonicalized; `old` must be present).
    pub fn with_replaced(&self, vocab: &Vocabulary, s: Slot, old: Value, new: Value) -> Assignment {
        let mut values = self.values.clone();
        let set = &mut values[s.index()];
        let pos = set
            .iter()
            .position(|&x| x == old)
            .expect("old value present");
        set[pos] = new;
        Assignment::new(vocab, values, self.more.clone())
    }

    /// Returns a copy with the MORE fact `f` added (canonicalized).
    pub fn with_more(&self, vocab: &Vocabulary, f: Fact) -> Assignment {
        let mut more = self.more.clone();
        more.push(f);
        Assignment {
            values: self.values.clone(),
            more: canonical_facts(vocab, more),
        }
    }

    /// Returns a copy with MORE fact `old` replaced by `new`.
    pub fn with_more_replaced(&self, vocab: &Vocabulary, old: Fact, new: Fact) -> Assignment {
        let mut more = self.more.clone();
        let pos = more
            .iter()
            .position(|&x| x == old)
            .expect("old fact present");
        more[pos] = new;
        Assignment {
            values: self.values.clone(),
            more: canonical_facts(vocab, more),
        }
    }

    /// The assignment order of Definition 4.1: `self ≤ other` iff for every
    /// slot, every value of `self` is ≤ some value of `other` in that slot
    /// — and likewise for MORE facts under the fact order.
    pub fn leq(&self, vocab: &Vocabulary, other: &Assignment) -> bool {
        debug_assert_eq!(self.num_slots(), other.num_slots());
        let slots_ok = self
            .values
            .iter()
            .zip(&other.values)
            .all(|(a, b)| a.iter().all(|&v| b.iter().any(|&w| value_leq(vocab, v, w))));
        slots_ok
            && self
                .more
                .iter()
                .all(|&f| other.more.iter().any(|&g| vocab.fact_leq(f, g)))
    }

    /// Applies the assignment to the full mined meta–fact-set — the
    /// SATISFYING patterns, the `IMPLYING` patterns (rule queries), and the
    /// MORE facts — producing the pattern-set the crowd is asked about
    /// (`φ(A_SAT)`, Section 3).
    ///
    /// A meta-fact containing a variable with `k` assigned values expands
    /// to `k` pattern facts (the cross product, if several variables have
    /// multiple values); a variable with an empty value set deletes the
    /// meta-facts that contain it (multiplicity 0, Section 3). Blanks stay
    /// wildcards. MORE facts are appended as concrete patterns.
    pub fn apply(&self, q: &BoundQuery) -> PatternSet {
        let mut out: Vec<PatternFact> = Vec::new();
        self.expand_meta(q, &q.sat_meta, &mut out);
        self.expand_meta(q, &q.imp_meta, &mut out);
        for &f in &self.more {
            out.push(PatternFact::from_fact(f));
        }
        PatternSet::from_iter(out)
    }

    /// Applies the assignment to the rule *body* only (`A_SAT` + MORE,
    /// without the `IMPLYING` head) — the denominator of the confidence
    /// measure in rule queries.
    pub fn apply_body(&self, q: &BoundQuery) -> PatternSet {
        let mut out: Vec<PatternFact> = Vec::new();
        self.expand_meta(q, &q.sat_meta, &mut out);
        for &f in &self.more {
            out.push(PatternFact::from_fact(f));
        }
        PatternSet::from_iter(out)
    }

    /// Applies the assignment to the rule *head* only (`A_IMP`).
    pub fn apply_head(&self, q: &BoundQuery) -> PatternSet {
        let mut out: Vec<PatternFact> = Vec::new();
        self.expand_meta(q, &q.imp_meta, &mut out);
        PatternSet::from_iter(out)
    }

    fn expand_meta(
        &self,
        q: &BoundQuery,
        meta: &[oassis_ql::MetaFact],
        out: &mut Vec<PatternFact>,
    ) {
        let slot_of = |v: VarId| -> Option<Slot> {
            q.sat_vars
                .iter()
                .position(|&x| x == v)
                .map(|i| Slot(i as u16))
        };
        for mf in meta {
            // candidate component values
            let subjects: Vec<Option<ontology::ElemId>> = match mf.subject {
                FactTerm::Blank => vec![None],
                FactTerm::Const(e) => vec![Some(e)],
                FactTerm::Var(v) => {
                    let s = slot_of(v).expect("satisfying var has a slot");
                    self.values[s.index()]
                        .iter()
                        .filter_map(|v| v.as_elem())
                        .map(Some)
                        .collect()
                }
            };
            let rels: Vec<Option<ontology::RelId>> = match mf.rel {
                RelTerm::Const(r) => vec![Some(r)],
                RelTerm::Var(v) => {
                    let s = slot_of(v).expect("satisfying var has a slot");
                    self.values[s.index()]
                        .iter()
                        .filter_map(|v| v.as_rel())
                        .map(Some)
                        .collect()
                }
            };
            let objects: Vec<Option<ontology::ElemId>> = match mf.object {
                FactTerm::Blank => vec![None],
                FactTerm::Const(e) => vec![Some(e)],
                FactTerm::Var(v) => {
                    let s = slot_of(v).expect("satisfying var has a slot");
                    self.values[s.index()]
                        .iter()
                        .filter_map(|v| v.as_elem())
                        .map(Some)
                        .collect()
                }
            };
            // When the same variable appears in both element positions
            // (`$x likes $x`), the i-th value instantiates both positions
            // together instead of crossing (a value pairs with itself).
            let same_var = matches!(
                (mf.subject, mf.object),
                (FactTerm::Var(a), FactTerm::Var(b)) if a == b
            );
            for (si, &s) in subjects.iter().enumerate() {
                for &r in &rels {
                    if same_var {
                        out.push(PatternFact {
                            subject: s,
                            rel: r,
                            object: objects[si],
                        });
                    } else {
                        for &o in &objects {
                            out.push(PatternFact {
                                subject: s,
                                rel: r,
                                object: o,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Renders the assignment for debugging/UI: slot values by variable
    /// name plus MORE facts.
    pub fn to_display(&self, q: &BoundQuery, vocab: &Vocabulary) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (i, &v) in q.sat_vars.iter().enumerate() {
            let names: Vec<String> = self.values[i]
                .iter()
                .map(|&val| match val {
                    Value::Elem(e) => vocab.elem_name(e).to_owned(),
                    Value::Rel(r) => vocab.rel_name(r).to_owned(),
                })
                .collect();
            parts.push(format!(
                "${} ↦ {{{}}}",
                q.vars[v.index()].name,
                names.join(", ")
            ));
        }
        if !self.more.is_empty() {
            let facts: Vec<String> = self.more.iter().map(|&f| vocab.fact_to_string(f)).collect();
            parts.push(format!("MORE {{{}}}", facts.join(". ")));
        }
        parts.join("; ")
    }
}

/// Sorts, dedups and removes dominated values (canonical antichain).
fn canonical_values(vocab: &Vocabulary, mut vs: Vec<Value>) -> Vec<Value> {
    vs.sort_unstable();
    vs.dedup();
    let keep: Vec<Value> = vs
        .iter()
        .copied()
        .filter(|&v| !vs.iter().any(|&w| w != v && value_leq(vocab, v, w)))
        .collect();
    keep
}

/// Canonical antichain of facts under the fact order.
fn canonical_facts(vocab: &Vocabulary, mut fs: Vec<Fact>) -> Vec<Fact> {
    fs.sort_unstable();
    fs.dedup();
    fs.iter()
        .copied()
        .filter(|&f| !fs.iter().any(|&g| g != f && vocab.fact_leq(f, g)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_ql::{bind, parse};
    use ontology::domains::figure1;

    fn setup() -> (ontology::Ontology, BoundQuery) {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        (ont, b)
    }

    fn elem(ont: &ontology::Ontology, name: &str) -> Value {
        Value::Elem(ont.vocab().elem_id(name).unwrap())
    }

    /// slots for SIMPLE_QUERY sat vars: [x, y] in VarId order (x before y).
    fn assign(ont: &ontology::Ontology, x: &str, ys: &[&str]) -> Assignment {
        Assignment::new(
            ont.vocab(),
            vec![
                vec![elem(ont, x)],
                ys.iter().map(|y| elem(ont, y)).collect(),
            ],
            vec![],
        )
    }

    #[test]
    fn sat_vars_are_x_and_y() {
        let (_, b) = setup();
        assert_eq!(b.sat_vars.len(), 2);
        let names: Vec<&str> = b
            .sat_vars
            .iter()
            .map(|&v| b.vars[v.index()].name.as_str())
            .collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn canonical_antichain_removes_dominated() {
        let (ont, _) = setup();
        // {Sport, Biking} collapses to {Biking}
        let a = assign(&ont, "Central Park", &["Sport", "Biking"]);
        let b = assign(&ont, "Central Park", &["Biking"]);
        assert_eq!(a, b);
        // {Biking, Ball Game} is a genuine antichain
        let c = assign(&ont, "Central Park", &["Biking", "Ball Game"]);
        assert_eq!(c.slot(Slot(1)).len(), 2);
    }

    #[test]
    fn order_example_4_2() {
        // φ17 = (CP, Ball Game) ≤ φ20 = (CP, Baseball), immediate in spirit
        let (ont, _) = setup();
        let v = ont.vocab();
        let phi17 = assign(&ont, "Central Park", &["Ball Game"]);
        let phi20 = assign(&ont, "Central Park", &["Baseball"]);
        assert!(phi17.leq(v, &phi20));
        assert!(!phi20.leq(v, &phi17));
        // φ15 = (CP, Sport) ≤ φ16 = (CP, Biking)
        let phi15 = assign(&ont, "Central Park", &["Sport"]);
        let phi16 = assign(&ont, "Central Park", &["Biking"]);
        assert!(phi15.leq(v, &phi16));
        // incomparable: φ16 vs φ20
        assert!(!phi16.leq(v, &phi20));
        assert!(!phi20.leq(v, &phi16));
    }

    #[test]
    fn multiplicity_order() {
        // (CP, {Biking}) ≤ (CP, {Biking, Ball Game}): node 16 ≤ node 18
        let (ont, _) = setup();
        let v = ont.vocab();
        let n16 = assign(&ont, "Central Park", &["Biking"]);
        let n17 = assign(&ont, "Central Park", &["Ball Game"]);
        let n18 = assign(&ont, "Central Park", &["Biking", "Ball Game"]);
        assert!(n16.leq(v, &n18));
        assert!(n17.leq(v, &n18));
        assert!(!n18.leq(v, &n16));
        // and the set {Sport} is below the pair
        let n15 = assign(&ont, "Central Park", &["Sport"]);
        assert!(n15.leq(v, &n18));
    }

    #[test]
    fn empty_slot_is_below_everything() {
        let (ont, _) = setup();
        let v = ont.vocab();
        let empty_y = Assignment::new(v, vec![vec![elem(&ont, "Central Park")], vec![]], vec![]);
        let with_y = assign(&ont, "Central Park", &["Biking"]);
        assert!(empty_y.leq(v, &with_y));
        assert!(!with_y.leq(v, &empty_y));
    }

    #[test]
    fn apply_expands_multiplicities() {
        let (ont, b) = setup();
        let v = ont.vocab();
        let n18 = assign(&ont, "Central Park", &["Biking", "Ball Game"]);
        let p = n18.apply(&b);
        let rendered = p.to_display(v);
        assert!(rendered.contains("Biking doAt Central Park"));
        assert!(rendered.contains("Ball Game doAt Central Park"));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn apply_empty_slot_deletes_meta_fact() {
        let (ont, b) = setup();
        let empty_y = Assignment::new(
            ont.vocab(),
            vec![vec![elem(&ont, "Central Park")], vec![]],
            vec![],
        );
        let p = empty_y.apply(&b);
        assert!(p.is_empty()); // the only meta-fact used $y
    }

    #[test]
    fn apply_includes_more_facts() {
        let (ont, b) = setup();
        let v = ont.vocab();
        let f = v.fact("Rent Bikes", "doAt", "Boathouse").unwrap();
        let n = assign(&ont, "Central Park", &["Biking"]).with_more(v, f);
        let p = n.apply(&b);
        assert_eq!(p.len(), 2);
        assert!(p.to_display(v).contains("Rent Bikes doAt Boathouse"));
    }

    #[test]
    fn more_facts_participate_in_order() {
        let (ont, _) = setup();
        let v = ont.vocab();
        let f = v.fact("Rent Bikes", "doAt", "Boathouse").unwrap();
        let base = assign(&ont, "Central Park", &["Biking"]);
        let extended = base.with_more(v, f);
        assert!(base.leq(v, &extended));
        assert!(!extended.leq(v, &base));
    }

    #[test]
    fn with_replaced_respects_canonical_form() {
        let (ont, _) = setup();
        let v = ont.vocab();
        let a = assign(&ont, "Central Park", &["Sport"]);
        let biking = elem(&ont, "Biking");
        let sport = elem(&ont, "Sport");
        let b = a.with_replaced(v, Slot(1), sport, biking);
        assert_eq!(b, assign(&ont, "Central Park", &["Biking"]));
    }

    #[test]
    fn blank_in_satisfying_yields_wildcard() {
        let ont = figure1::ontology();
        let q = parse(figure1::SAMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        // slots: x, y, z
        let v = ont.vocab();
        let a = Assignment::new(
            v,
            vec![
                vec![Value::Elem(v.elem_id("Central Park").unwrap())],
                vec![Value::Elem(v.elem_id("Biking").unwrap())],
                vec![Value::Elem(v.elem_id("Maoz Veg").unwrap())],
            ],
            vec![],
        );
        let p = a.apply(&b);
        // `[] eatAt $z` → wildcard subject
        assert!(p.to_display(v).contains("[] eatAt Maoz Veg"));
    }

    #[test]
    fn same_variable_in_both_positions_pairs_values() {
        // `$x likes $x` with φ(x) = {A, B} must yield {A likes A, B likes
        // B}, not the 2×2 cross product.
        let ont = figure1::ontology();
        let q =
            parse("SELECT FACT-SETS WHERE SATISFYING $x+ nearBy $x WITH SUPPORT = 0.2").unwrap();
        let b = bind(&q, &ont).unwrap();
        let v = ont.vocab();
        let a = Assignment::new(
            v,
            vec![vec![
                Value::Elem(v.elem_id("Central Park").unwrap()),
                Value::Elem(v.elem_id("Maoz Veg").unwrap()),
            ]],
            vec![],
        );
        let p = a.apply(&b);
        assert_eq!(p.len(), 2, "{}", p.to_display(v));
        let rendered = p.to_display(v);
        assert!(rendered.contains("Central Park nearBy Central Park"));
        assert!(rendered.contains("Maoz Veg nearBy Maoz Veg"));
        assert!(!rendered.contains("Central Park nearBy Maoz Veg"));
    }

    #[test]
    fn leq_is_reflexive_and_antisymmetric_on_canonicals() {
        let (ont, _) = setup();
        let v = ont.vocab();
        let a = assign(&ont, "Central Park", &["Biking", "Ball Game"]);
        assert!(a.leq(v, &a));
        let b = assign(&ont, "Central Park", &["Ball Game"]);
        assert!(!(a.leq(v, &b) && b.leq(v, &a)));
    }
}
