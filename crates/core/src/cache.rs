//! `CrowdCache` (Section 6.1/6.3): caching crowd answers per
//! (pattern, member) so that re-evaluating the same query with a different
//! support threshold re-uses answers instead of re-asking.
//!
//! "We have used the answers from the crowd to simulate executing the same
//! query with different support thresholds: note that the crowd answers
//! are independent of the threshold. … In the statistics below, we count
//! for each threshold only the answers used by the algorithm out of the
//! cached ones." — the engine's own `questions` counter counts *used*
//! answers, while [`CachingCrowd::fresh_questions`] counts actual crowd
//! work.

use crowd::{Answer, CrowdSource, MemberId, Question};
use ontology::json::{self, Json, JsonError};
use ontology::{PatternFact, PatternSet};
use std::collections::HashMap;
use telemetry::lockorder::TrackedMutex;

/// A serializable store of concrete-question answers.
///
/// Only concrete questions are cached: specialization questions depend on
/// the offered options, which vary between runs. (A specialization answer
/// does imply a concrete answer for the chosen option, but the paper's
/// CrowdCache records answers per assignment, which is what we keep.)
#[derive(Debug, Default, Clone)]
pub struct CrowdCache {
    answers: HashMap<MemberId, HashMap<PatternSet, CachedAnswer>>,
}

/// A cached concrete answer.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedAnswer {
    /// Reported support (+ volunteered MORE fact, if any).
    Support {
        /// The reported support.
        support: f64,
        /// A volunteered MORE fact.
        more_tip: Option<ontology::Fact>,
    },
    /// A user-guided pruning click.
    Irrelevant {
        /// The element clicked irrelevant.
        elem: ontology::ElemId,
    },
}

impl CrowdCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.answers.values().map(HashMap::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a cached answer.
    pub fn get(&self, member: MemberId, pattern: &PatternSet) -> Option<&CachedAnswer> {
        self.answers.get(&member)?.get(pattern)
    }

    /// Stores an answer.
    pub fn put(&mut self, member: MemberId, pattern: PatternSet, answer: CachedAnswer) {
        self.answers
            .entry(member)
            .or_default()
            .insert(pattern, answer);
    }

    /// Serializes to JSON (the paper kept CrowdCache in MySQL; a snapshot
    /// file plays that role here). Entries are sorted for determinism.
    pub fn to_json(&self) -> String {
        let mut entries: Vec<(MemberId, &PatternSet, &CachedAnswer)> = self
            .answers
            .iter()
            .flat_map(|(&m, inner)| inner.iter().map(move |(p, a)| (m, p, a)))
            .collect();
        entries.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        let entries = entries
            .into_iter()
            .map(|(m, p, a)| {
                Json::Arr(vec![
                    Json::Num(m.0 as f64),
                    pattern_to_json(p),
                    answer_to_json(a),
                ])
            })
            .collect();
        Json::Obj(vec![("entries".into(), Json::Arr(entries))]).to_string()
    }

    /// The members holding cached answers, in id order (the WAL store
    /// shards its answer log by member).
    pub fn members(&self) -> Vec<MemberId> {
        let mut ids: Vec<MemberId> = self
            .answers
            .iter()
            .filter(|(_, inner)| !inner.is_empty())
            .map(|(&m, _)| m)
            .collect();
        ids.sort();
        ids
    }

    /// One member's cached entries, sorted by pattern for determinism —
    /// the per-member answer database a WAL snapshot persists.
    pub fn entries_of(&self, member: MemberId) -> Vec<(&PatternSet, &CachedAnswer)> {
        let mut entries: Vec<(&PatternSet, &CachedAnswer)> = self
            .answers
            .get(&member)
            .map(|inner| inner.iter().collect())
            .unwrap_or_default();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries
    }

    /// Restores from JSON.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let doc = json::parse(s)?;
        let mut cache = CrowdCache::new();
        for entry in doc.field("entries")?.as_arr()? {
            let [m, p, a] = entry.as_arr()? else {
                return Err(JsonError::shape(
                    "expected a [member, pattern, answer] entry",
                ));
            };
            cache.put(
                MemberId(m.as_u32()?),
                pattern_from_json(p)?,
                answer_from_json(a)?,
            );
        }
        Ok(cache)
    }
}

/// Serializes one `(pattern, answer)` cache entry — the WAL's `answer`
/// record payload, reusing the snapshot encoding of [`CrowdCache::to_json`].
pub fn entry_to_json(pattern: &PatternSet, answer: &CachedAnswer) -> Json {
    Json::Arr(vec![pattern_to_json(pattern), answer_to_json(answer)])
}

/// Restores a cache entry serialized by [`entry_to_json`].
pub fn entry_from_json(v: &Json) -> Result<(PatternSet, CachedAnswer), JsonError> {
    let [p, a] = v.as_arr()? else {
        return Err(JsonError::shape("expected a [pattern, answer] entry"));
    };
    Ok((pattern_from_json(p)?, answer_from_json(a)?))
}

fn opt_id_to_json(id: Option<u32>) -> Json {
    id.map_or(Json::Null, |v| Json::Num(v as f64))
}

fn opt_id_from_json(v: &Json) -> Result<Option<u32>, JsonError> {
    match v {
        Json::Null => Ok(None),
        other => other.as_u32().map(Some),
    }
}

fn pattern_to_json(p: &PatternSet) -> Json {
    Json::Arr(
        p.iter()
            .map(|f| {
                Json::Arr(vec![
                    opt_id_to_json(f.subject.map(|e| e.0)),
                    opt_id_to_json(f.rel.map(|r| r.0)),
                    opt_id_to_json(f.object.map(|e| e.0)),
                ])
            })
            .collect(),
    )
}

fn pattern_from_json(v: &Json) -> Result<PatternSet, JsonError> {
    let facts = v
        .as_arr()?
        .iter()
        .map(|f| {
            let [s, r, o] = f.as_arr()? else {
                return Err(JsonError::shape(
                    "expected a [subject, rel, object] pattern",
                ));
            };
            Ok(PatternFact {
                subject: opt_id_from_json(s)?.map(ontology::ElemId),
                rel: opt_id_from_json(r)?.map(ontology::RelId),
                object: opt_id_from_json(o)?.map(ontology::ElemId),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(PatternSet::from_iter(facts))
}

fn answer_to_json(a: &CachedAnswer) -> Json {
    match a {
        CachedAnswer::Support { support, more_tip } => {
            let tip = more_tip.map_or(Json::Null, |f| {
                Json::Arr(vec![
                    Json::Num(f.subject.0 as f64),
                    Json::Num(f.rel.0 as f64),
                    Json::Num(f.object.0 as f64),
                ])
            });
            Json::Obj(vec![(
                "Support".into(),
                Json::Obj(vec![
                    ("support".into(), Json::Num(*support)),
                    ("more_tip".into(), tip),
                ]),
            )])
        }
        CachedAnswer::Irrelevant { elem } => Json::Obj(vec![(
            "Irrelevant".into(),
            Json::Obj(vec![("elem".into(), Json::Num(elem.0 as f64))]),
        )]),
    }
}

fn answer_from_json(v: &Json) -> Result<CachedAnswer, JsonError> {
    let [(tag, body)] = v.as_obj()? else {
        return Err(JsonError::shape("expected a single-variant answer object"));
    };
    match tag.as_str() {
        "Support" => {
            let tip = match body.field("more_tip")? {
                Json::Null => None,
                f => {
                    let [s, r, o] = f.as_arr()? else {
                        return Err(JsonError::shape("expected a [s, r, o] fact"));
                    };
                    Some(ontology::Fact::new(
                        ontology::ElemId(s.as_u32()?),
                        ontology::RelId(r.as_u32()?),
                        ontology::ElemId(o.as_u32()?),
                    ))
                }
            };
            Ok(CachedAnswer::Support {
                support: body.field("support")?.as_f64()?,
                more_tip: tip,
            })
        }
        "Irrelevant" => Ok(CachedAnswer::Irrelevant {
            elem: ontology::ElemId(body.field("elem")?.as_u32()?),
        }),
        other => Err(JsonError::shape(format!(
            "unknown answer variant {other:?}"
        ))),
    }
}

/// A [`CrowdSource`] adaptor that consults a [`CrowdCache`] before
/// forwarding to the inner crowd.
pub struct CachingCrowd<'c, C> {
    inner: C,
    cache: &'c mut CrowdCache,
    asked: usize,
    fresh: usize,
}

impl<'c, C: CrowdSource> CachingCrowd<'c, C> {
    /// Wraps `inner` with `cache`.
    pub fn new(inner: C, cache: &'c mut CrowdCache) -> Self {
        CachingCrowd {
            inner,
            cache,
            asked: 0,
            fresh: 0,
        }
    }

    /// Questions that actually reached the inner crowd (cache misses and
    /// non-cacheable questions).
    pub fn fresh_questions(&self) -> usize {
        self.fresh
    }

    /// All questions, including cache hits.
    pub fn total_questions(&self) -> usize {
        self.asked
    }

    /// Unwraps the inner crowd.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: CrowdSource> CrowdSource for CachingCrowd<'_, C> {
    fn members(&self) -> Vec<MemberId> {
        self.inner.members()
    }

    fn ask(&mut self, member: MemberId, question: &Question) -> Answer {
        self.asked += 1;
        if let Question::Concrete { pattern } = question {
            if let Some(hit) = self.cache.get(member, pattern) {
                return match hit.clone() {
                    CachedAnswer::Support { support, more_tip } => {
                        Answer::Support { support, more_tip }
                    }
                    CachedAnswer::Irrelevant { elem } => Answer::Irrelevant { elem },
                };
            }
            self.fresh += 1;
            let answer = self.inner.ask(member, question);
            match &answer {
                Answer::Support { support, more_tip } => {
                    self.cache.put(
                        member,
                        pattern.clone(),
                        CachedAnswer::Support {
                            support: *support,
                            more_tip: *more_tip,
                        },
                    );
                }
                Answer::Irrelevant { elem } => {
                    self.cache.put(
                        member,
                        pattern.clone(),
                        CachedAnswer::Irrelevant { elem: *elem },
                    );
                }
                _ => {}
            }
            return answer;
        }
        self.fresh += 1;
        self.inner.ask(member, question)
    }

    fn questions_asked(&self) -> usize {
        self.asked
    }

    fn advance_clock(&mut self, ticks: u64) {
        self.inner.advance_clock(ticks);
    }

    fn supports_prefetch(&self) -> bool {
        self.inner.supports_prefetch()
    }

    fn prefetch(&mut self, batch: &[(MemberId, Question)]) {
        // cache hits never reach the inner crowd, so speculating on them
        // would only waste worker time (and be rolled back anyway)
        let misses: Vec<(MemberId, Question)> = batch
            .iter()
            .filter(|(m, q)| match q {
                Question::Concrete { pattern } => self.cache.get(*m, pattern).is_none(),
                _ => true,
            })
            .cloned()
            .collect();
        if !misses.is_empty() {
            self.inner.prefetch(&misses);
        }
    }
}

/// A thread-safe [`CrowdCache`] for concurrent query execution (batch
/// requests through [`Oassis::run`](crate::Oassis::run) and the serving
/// layer's sessions): several queries running on different threads share
/// one answer store, so a pattern any query already asked a member about
/// is never re-asked.
///
/// A single mutex guards the store. Lookups clone the cached answer out
/// under the lock; the lock is never held across a crowd call, so worker
/// threads only contend for the duration of a hash-map probe.
#[derive(Debug)]
pub struct SharedCrowdCache {
    inner: TrackedMutex<CrowdCache>,
}

impl Default for SharedCrowdCache {
    fn default() -> SharedCrowdCache {
        SharedCrowdCache::new(CrowdCache::default())
    }
}

impl SharedCrowdCache {
    /// Wraps an existing cache (use `SharedCrowdCache::default()` for an
    /// empty one).
    pub fn new(cache: CrowdCache) -> Self {
        SharedCrowdCache {
            inner: TrackedMutex::new("core.cache.inner", cache),
        }
    }

    /// Unwraps the inner cache.
    pub fn into_inner(self) -> CrowdCache {
        self.inner.into_inner().expect("cache mutex poisoned") // PANIC-OK: poisoning means a worker already panicked; propagate it
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache mutex poisoned").len() // PANIC-OK: poisoning means a worker already panicked; propagate it
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a cached answer (cloned out under the lock).
    pub fn get(&self, member: MemberId, pattern: &PatternSet) -> Option<CachedAnswer> {
        self.inner
            .lock()
            .expect("cache mutex poisoned") // PANIC-OK: poisoning means a worker already panicked; propagate it
            .get(member, pattern)
            .cloned()
    }

    /// Stores an answer.
    pub fn put(&self, member: MemberId, pattern: PatternSet, answer: CachedAnswer) {
        self.inner
            .lock()
            .expect("cache mutex poisoned") // PANIC-OK: poisoning means a worker already panicked; propagate it
            .put(member, pattern, answer)
    }
}

/// The [`CachingCrowd`] analogue over a [`SharedCrowdCache`]: consults the
/// shared store before forwarding to this query's own crowd. Takes `&`
/// (not `&mut`) to the cache, so any number of concurrent queries can wrap
/// the same store.
pub struct SharedCachingCrowd<'c, C> {
    inner: C,
    cache: &'c SharedCrowdCache,
    asked: usize,
    fresh: usize,
}

impl<'c, C: CrowdSource> SharedCachingCrowd<'c, C> {
    /// Wraps `inner` with the shared `cache`.
    pub fn new(inner: C, cache: &'c SharedCrowdCache) -> Self {
        SharedCachingCrowd {
            inner,
            cache,
            asked: 0,
            fresh: 0,
        }
    }

    /// Questions that actually reached the inner crowd.
    pub fn fresh_questions(&self) -> usize {
        self.fresh
    }

    /// All questions, including cache hits.
    pub fn total_questions(&self) -> usize {
        self.asked
    }

    /// Unwraps the inner crowd.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: CrowdSource> CrowdSource for SharedCachingCrowd<'_, C> {
    fn members(&self) -> Vec<MemberId> {
        self.inner.members()
    }

    fn ask(&mut self, member: MemberId, question: &Question) -> Answer {
        self.asked += 1;
        if let Question::Concrete { pattern } = question {
            if let Some(hit) = self.cache.get(member, pattern) {
                return match hit {
                    CachedAnswer::Support { support, more_tip } => {
                        Answer::Support { support, more_tip }
                    }
                    CachedAnswer::Irrelevant { elem } => Answer::Irrelevant { elem },
                };
            }
            self.fresh += 1;
            let answer = self.inner.ask(member, question);
            match &answer {
                Answer::Support { support, more_tip } => {
                    self.cache.put(
                        member,
                        pattern.clone(),
                        CachedAnswer::Support {
                            support: *support,
                            more_tip: *more_tip,
                        },
                    );
                }
                Answer::Irrelevant { elem } => {
                    self.cache.put(
                        member,
                        pattern.clone(),
                        CachedAnswer::Irrelevant { elem: *elem },
                    );
                }
                _ => {}
            }
            return answer;
        }
        self.fresh += 1;
        self.inner.ask(member, question)
    }

    fn questions_asked(&self) -> usize {
        self.asked
    }

    fn advance_clock(&mut self, ticks: u64) {
        self.inner.advance_clock(ticks);
    }

    fn supports_prefetch(&self) -> bool {
        self.inner.supports_prefetch()
    }

    fn prefetch(&mut self, batch: &[(MemberId, Question)]) {
        let misses: Vec<(MemberId, Question)> = batch
            .iter()
            .filter(|(m, q)| match q {
                Question::Concrete { pattern } => self.cache.get(*m, pattern).is_none(),
                _ => true,
            })
            .cloned()
            .collect();
        if !misses.is_empty() {
            self.inner.prefetch(&misses);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::vertical::{run_vertical, MiningConfig};
    use crowd::{AnswerModel, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember};
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};
    use ontology::domains::figure1;

    fn u_avg(ont: &ontology::Ontology) -> SimulatedMember {
        let [d1, d2] = figure1::personal_dbs(ont);
        let mut tx = d1;
        for _ in 0..3 {
            tx.extend(d2.iter().cloned());
        }
        SimulatedMember::new(
            PersonalDb::from_transactions(tx),
            MemberBehavior::default(),
            AnswerModel::Exact,
            0,
        )
    }

    #[test]
    fn threshold_reuse_asks_no_fresh_questions_when_raising() {
        // Evaluate at Θ=0.2, cache everything, then re-evaluate at
        // Θ=0.4: every answer the 0.4-run needs was already asked at 0.2
        // (the 0.4 significant region is a subset), so fresh == 0.
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut cache = CrowdCache::new();

        let run = |cache: &mut CrowdCache, theta: f64| {
            let mut dag = Dag::new(&b, ont.vocab(), &base);
            let crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont)]);
            let mut caching = CachingCrowd::new(crowd, cache);
            let cfg = MiningConfig {
                threshold: Some(theta),
                ..Default::default()
            };
            let out = run_vertical(&mut dag, &mut caching, crowd::MemberId(0), &cfg);
            (out, caching.fresh_questions(), caching.total_questions())
        };

        let (out_02, fresh_02, total_02) = run(&mut cache, 0.2);
        assert!(out_02.complete);
        assert_eq!(fresh_02, total_02); // cold cache
        assert!(!cache.is_empty());

        let (out_04, fresh_04, total_04) = run(&mut cache, 0.4);
        assert!(out_04.complete);
        // Raising the threshold reuses cached answers wherever the two
        // runs' traversals coincide. They diverge where classifications
        // flip (a node significant at 0.2 but not at 0.4 redirects the
        // climb), so some fresh questions remain — but a solid share must
        // come from the cache, and far less fresh crowd work is needed
        // than a cold run.
        assert!(
            fresh_04 < total_04,
            "no reuse at all: {fresh_04} of {total_04}"
        );
        assert!(fresh_04 < fresh_02, "fresh {fresh_04} vs cold {fresh_02}");
        // the 0.4-significant region is a subset of the 0.2 one
        for m in &out_04.msps {
            let p = m.apply(&b);
            assert!(
                out_02
                    .significant_valid
                    .iter()
                    .chain(out_02.msps.iter())
                    .any(|s| { p.leq(ont.vocab(), &s.apply(&b)) || s.apply(&b) == p })
                    || out_02.msps.iter().any(|s| p.leq(ont.vocab(), &s.apply(&b))),
                "0.4 MSP not within the 0.2 significant region"
            );
        }
    }

    #[test]
    fn cache_roundtrips_through_json() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let mut cache = CrowdCache::new();
        let p =
            ontology::PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        cache.put(
            crowd::MemberId(3),
            p.clone(),
            CachedAnswer::Support {
                support: 0.25,
                more_tip: None,
            },
        );
        let restored = CrowdCache::from_json(&cache.to_json()).unwrap();
        assert_eq!(
            restored.get(crowd::MemberId(3), &p),
            Some(&CachedAnswer::Support {
                support: 0.25,
                more_tip: None
            })
        );
        assert_eq!(restored.len(), 1);
    }

    #[test]
    fn cache_is_per_member() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let mut cache = CrowdCache::new();
        let p =
            ontology::PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        cache.put(
            crowd::MemberId(0),
            p.clone(),
            CachedAnswer::Support {
                support: 1.0,
                more_tip: None,
            },
        );
        assert!(cache.get(crowd::MemberId(1), &p).is_none());
        assert!(cache.get(crowd::MemberId(0), &p).is_some());
    }
}
