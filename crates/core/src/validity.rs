//! The validity index: deciding membership in the expanded assignment set
//! `𝒜 = {φ | ∃φ' ∈ 𝒜_valid, φ ≤ φ'}` (line 1 of Algorithm 1), where
//! `𝒜_valid` contains the SPARQL base assignments **and** all their
//! multiplicity combinations (Section 5, Proposition 5.1).
//!
//! A combination assigns a *set* of concrete values to each slot such that
//! every cross-product choice tuple is a valid base assignment. `φ ∈ 𝒜`
//! therefore holds iff each value of each slot can be *covered* by a
//! concrete valid value (a universe value above it in the order) such that
//! the covering tuples are simultaneously valid — which this module decides
//! by recursive search with intersection-filtered tuple sets.

// audit: allow-file(D4, assignment/level indexing is bounded by the vertical-domain sizes fixed at construction)
use crate::assignment::{value_leq, Assignment, Slot};
use oassis_ql::{BaseAssignment, BoundQuery, Multiplicity, Value};
use ontology::Vocabulary;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

/// Static information about one slot of the assignment DAG.
#[derive(Debug, Clone)]
pub struct SlotInfo {
    /// The SATISFYING variable this slot carries.
    pub var: oassis_ql::VarId,
    /// Its multiplicity.
    pub mult: Multiplicity,
    /// Whether it binds relations (predicate position).
    pub is_rel: bool,
    /// `true` when the WHERE clause does not constrain the variable: it
    /// then ranges over the entire vocabulary (how OASSIS-QL captures
    /// classic frequent itemset mining, Section 4.1).
    pub free: bool,
}

/// Index over the valid base assignments, answering membership in the
/// expanded set `𝒜` ([`admits`](ValidityIndex::admits)) and exact validity
/// ([`is_valid`](ValidityIndex::is_valid)).
#[derive(Debug)]
pub struct ValidityIndex {
    slots: Vec<SlotInfo>,
    /// Indices (into `slots`) of WHERE-constrained slots.
    constrained: Vec<usize>,
    /// Valid tuples over the constrained slots (in `constrained` order).
    tuples: HashSet<Vec<Value>>,
    /// Per slot: distinct concrete valid values (constrained slots) or all
    /// vocabulary values of the right kind (free slots), sorted.
    universes: Vec<Vec<Value>>,
    /// Per slot: universe plus all generalizations, sorted.
    closures: Vec<Vec<Value>>,
    /// Per slot: the minimal (most general) values of the closure.
    minimals: Vec<Vec<Value>>,
    /// Tuples in a stable indexed order (same elements as `tuples`).
    tuple_list: Vec<Vec<Value>>,
    /// Words per cover bitset: `tuple_list.len().div_ceil(64)`.
    stride: usize,
    /// Number of vocabulary elements — rel keys are offset past them.
    num_elems: usize,
    /// Dense value-key space: `num_elems + num_rels` (elems first).
    key_space: usize,
    /// Lazily memoized cover bitsets, flattened: `cover_off[ci][key(v)]`
    /// is the block index (×`stride`) into `cover_words` of the bitset
    /// with bit `t` set iff `v ≤ tuple_list[t][ci]` — the fast path of
    /// [`Self::admits`]. `u32::MAX` = not built yet; columns allocate
    /// their key table on first use.
    cover_off: RefCell<Vec<Vec<u32>>>,
    /// Contiguous arena of all memoized cover bitsets, `stride` words
    /// per block.
    cover_words: RefCell<Vec<u64>>,
    /// Lazily built per-column rest-projection grouping (the
    /// single-multiplicity-slot path of [`Self::admits`]): tuples with the
    /// same projection minus column `ci` share a group id.
    mult_groups: RefCell<HashMap<usize, Rc<MultGroups>>>,
    /// Epoch-stamped scratch for the grouped cover masks (reused across
    /// `admits` calls; node expansion calls `admits` in its inner loop).
    group_scratch: RefCell<GroupScratch>,
    /// Memoized result of [`Self::valid_base_assignments`]. Both the live
    /// run's discovery-curve tracker and op-log replay build a
    /// `ValidTracker` over the same DAG, so the second construction reuses
    /// the first enumeration instead of re-sorting the tuple set.
    base_memo: RefCell<Option<Arc<Vec<Assignment>>>>,
}

/// Tuple-index → rest-projection group id for one multiplicity column.
#[derive(Debug)]
struct MultGroups {
    group_of: Vec<u32>,
    num: usize,
}

#[derive(Debug, Default)]
struct GroupScratch {
    /// Per group: bitmask of slot values covered by a surviving tuple.
    mask: Vec<u64>,
    /// Per group: epoch of the last `mask` write (stale masks are reset
    /// lazily instead of clearing the whole vector each call).
    stamp: Vec<u32>,
    epoch: u32,
}

impl ValidityIndex {
    /// Builds the index from the WHERE evaluation output.
    pub fn new(q: &BoundQuery, vocab: &Vocabulary, base: &[BaseAssignment]) -> Self {
        let slots: Vec<SlotInfo> = q
            .sat_vars
            .iter()
            .map(|&v| {
                let info = &q.vars[v.index()];
                let free = !info.in_where;
                SlotInfo {
                    var: v,
                    mult: info.mult,
                    is_rel: info.is_rel,
                    free,
                }
            })
            .collect();
        let constrained: Vec<usize> = (0..slots.len()).filter(|&i| !slots[i].free).collect();

        let mut tuples: HashSet<Vec<Value>> = HashSet::new();
        for b in base {
            let tuple: Option<Vec<Value>> =
                constrained.iter().map(|&i| b.get(slots[i].var)).collect();
            if let Some(t) = tuple {
                tuples.insert(t);
            }
        }

        let mut universes: Vec<Vec<Value>> = vec![Vec::new(); slots.len()];
        for (ci, &si) in constrained.iter().enumerate() {
            let mut vals: Vec<Value> = tuples.iter().map(|t| t[ci]).collect();
            vals.sort_unstable();
            vals.dedup();
            universes[si] = vals;
        }
        for (si, slot) in slots.iter().enumerate() {
            if slot.free {
                universes[si] = if slot.is_rel {
                    vocab.rels().map(Value::Rel).collect()
                } else {
                    vocab.elems().map(Value::Elem).collect()
                };
            }
        }

        let closures: Vec<Vec<Value>> = universes
            .iter()
            .map(|u| generalization_closure(vocab, u))
            .collect();
        let minimals: Vec<Vec<Value>> = closures
            .iter()
            .map(|c| {
                c.iter()
                    .copied()
                    .filter(|&v| !c.iter().any(|&w| w != v && value_leq(vocab, w, v)))
                    .collect()
            })
            .collect();

        let mut tuple_list: Vec<Vec<Value>> = tuples.iter().cloned().collect();
        tuple_list.sort();
        let stride = tuple_list.len().div_ceil(64);
        let cover_off = RefCell::new(vec![Vec::new(); constrained.len()]);
        ValidityIndex {
            slots,
            constrained,
            tuples,
            universes,
            closures,
            minimals,
            tuple_list,
            stride,
            num_elems: vocab.num_elems(),
            key_space: vocab.num_elems() + vocab.num_rels(),
            cover_off,
            cover_words: RefCell::new(Vec::new()),
            mult_groups: RefCell::new(HashMap::new()),
            group_scratch: RefCell::new(GroupScratch::default()),
            base_memo: RefCell::new(None),
        }
    }

    /// Slot metadata.
    pub fn slots(&self) -> &[SlotInfo] {
        &self.slots
    }

    /// The concrete valid values of a slot.
    pub fn universe(&self, s: Slot) -> &[Value] {
        &self.universes[s.index()]
    }

    /// Universe plus all generalizations — the values DAG nodes may carry.
    pub fn closure(&self, s: Slot) -> &[Value] {
        &self.closures[s.index()]
    }

    /// The most general values of a slot (DAG-root values).
    pub fn minimal_values(&self, s: Slot) -> &[Value] {
        &self.minimals[s.index()]
    }

    /// Number of valid constrained tuples.
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// The valid base (multiplicity-1) assignments as [`Assignment`]s, in
    /// canonical order — used by the discovery-curve tracker. Returns an
    /// empty list when the query has free slots (the valid set is then the
    /// whole vocabulary and per-assignment tracking is meaningless).
    ///
    /// Memoized: the enumeration runs once per index; later calls (op-log
    /// replay building a second `ValidTracker` over the same DAG) share
    /// the same `Arc`.
    pub fn valid_base_assignments(&self, vocab: &Vocabulary) -> Arc<Vec<Assignment>> {
        if let Some(memo) = self.base_memo.borrow().as_ref() {
            return Arc::clone(memo);
        }
        let built = Arc::new(self.build_base_assignments(vocab));
        *self.base_memo.borrow_mut() = Some(Arc::clone(&built));
        built
    }

    fn build_base_assignments(&self, vocab: &Vocabulary) -> Vec<Assignment> {
        if self.slots.iter().any(|s| s.free) {
            return Vec::new();
        }
        let mut tuples: Vec<&Vec<Value>> = self.tuples.iter().collect();
        tuples.sort();
        tuples
            .iter()
            .map(|t| {
                let mut values: Vec<Vec<Value>> = vec![Vec::new(); self.slots.len()];
                for (ci, &si) in self.constrained.iter().enumerate() {
                    values[si] = vec![t[ci]];
                }
                Assignment::new(vocab, values, Vec::new())
            })
            .collect()
    }

    /// Dense key of a value: elems first, then rels.
    fn value_key(&self, v: Value) -> usize {
        match v {
            Value::Elem(e) => e.index(),
            Value::Rel(r) => self.num_elems + r.index(),
        }
    }

    /// Word offset into `cover_words` of the memoized cover bitset for
    /// constrained column `ci` and value `v`, building it on first use.
    /// The returned block is `self.stride` words long and immutable once
    /// built — callers re-borrow `cover_words` to read it.
    fn cover_offset(&self, vocab: &Vocabulary, ci: usize, v: Value) -> usize {
        debug_assert!(self.stride > 0, "admits bails out on an empty tuple set");
        let key = self.value_key(v);
        {
            let off = self.cover_off.borrow();
            // PANIC-OK: cover_off has one entry per constrained column.
            if let Some(&o) = off[ci].get(key) {
                if o != u32::MAX {
                    return o as usize * self.stride;
                }
            }
        }
        let mut words = self.cover_words.borrow_mut();
        let block = words.len() / self.stride;
        let base = words.len();
        words.resize(base + self.stride, 0);
        for (t, tuple) in self.tuple_list.iter().enumerate() {
            if value_leq(vocab, v, tuple[ci]) {
                // PANIC-OK: the resize above added a full stride of words
                // and t/64 < stride by construction.
                words[base + t / 64] |= 1u64 << (t % 64);
            }
        }
        drop(words);
        let mut off = self.cover_off.borrow_mut();
        // PANIC-OK: cover_off has one entry per constrained column.
        let col = &mut off[ci];
        if col.is_empty() {
            col.resize(self.key_space, u32::MAX);
        }
        // PANIC-OK: keys are < key_space, the length col was resized to.
        col[key] = block as u32;
        base
    }

    /// Whether `φ ∈ 𝒜`: φ is ≤ some valid (combination) assignment.
    /// MORE facts are ignored — they are unconstrained by the WHERE clause.
    ///
    /// Fast paths: single-valued slots intersect memoized cover bitsets;
    /// with one multiplicity slot the surviving tuples are grouped by
    /// their rest-projection and each value of the slot must be covered
    /// within one group (the cross-product condition of Proposition 5.1).
    /// The fully general case (≥ 2 multiplicity slots) falls back to a
    /// recursive cover search.
    pub fn admits(&self, vocab: &Vocabulary, a: &Assignment) -> bool {
        if self.constrained.is_empty() {
            return true;
        }
        let n = self.tuple_list.len();
        if n == 0 {
            return false;
        }
        // intersect single-value cover bitsets; collect multiplicity slots
        let mut acc: Vec<u64> = vec![!0u64; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            *acc.last_mut().expect("non-empty") = (1u64 << (n % 64)) - 1;
        }
        let mut multi: Vec<(usize, &[Value])> = Vec::new();
        for (ci, &si) in self.constrained.iter().enumerate() {
            let values = a.slot(Slot(si as u16));
            match values.len() {
                0 => {} // unconstrained: grouping by rest pins it consistently
                1 => {
                    let off = self.cover_offset(vocab, ci, values[0]);
                    let words = self.cover_words.borrow();
                    // PANIC-OK: cover_offset returns the base of a full
                    // stride-sized block inside cover_words.
                    for (w, &b) in acc.iter_mut().zip(&words[off..off + self.stride]) {
                        *w &= b;
                    }
                }
                _ => multi.push((ci, values)),
            }
        }
        if acc.iter().all(|&w| w == 0) {
            return false;
        }
        match multi.len() {
            0 => true,
            1 => {
                let (ci, values) = multi[0];
                // a rest-projection group must cover every value of the
                // slot; with ≤ 64 values this reduces to OR-ing per-value
                // cover bitsets into per-group masks (the group ids are
                // precomputed once per column)
                if values.len() <= 64 {
                    return self.admits_one_mult(vocab, ci, values, &acc);
                }
                // exact scan fallback for absurdly wide antichains
                let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
                for t in 0..n {
                    if acc[t / 64] & (1u64 << (t % 64)) == 0 {
                        continue;
                    }
                    let tuple = &self.tuple_list[t];
                    let rest: Vec<Value> = tuple
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != ci)
                        .map(|(_, &v)| v)
                        .collect();
                    groups.entry(rest).or_default().push(tuple[ci]);
                }
                groups.values().any(|col| {
                    values
                        .iter()
                        .all(|&v| col.iter().any(|&u| value_leq(vocab, v, u)))
                })
            }
            _ => {
                // general recursion over the surviving tuple subset
                let live: HashSet<Vec<Value>> = (0..n)
                    .filter(|&t| acc[t / 64] & (1u64 << (t % 64)) != 0)
                    .map(|t| self.tuple_list[t].clone())
                    .collect();
                self.admits_rec(vocab, a, 0, live)
            }
        }
    }

    /// The single-multiplicity-slot case of [`Self::admits`], decided via
    /// the precomputed rest-projection group index.
    ///
    /// Semantics (identical to the scan fallback): some group of surviving
    /// tuples — tuples agreeing on every column but `ci` — must cover all
    /// of the slot's `values`. `mask[g]` accumulates, per group `g`, which
    /// values a surviving tuple of `g` covers: bit `vi` is set iff some
    /// tuple `t` in `g` survives (`acc`) and `values[vi] ≤ t[ci]` (the
    /// memoized cover bitset). A full mask is a covering group.
    fn admits_one_mult(
        &self,
        vocab: &Vocabulary,
        ci: usize,
        values: &[Value],
        acc: &[u64],
    ) -> bool {
        debug_assert!((1..=64).contains(&values.len()));
        let groups = self.mult_groups_for(ci);
        let full: u64 = if values.len() == 64 {
            !0
        } else {
            (1u64 << values.len()) - 1
        };
        // prefetch all offsets first: cover_offset may grow the arena, so
        // it must run before the long immutable borrow below
        let offs: Vec<usize> = values
            .iter()
            .map(|&v| self.cover_offset(vocab, ci, v))
            .collect();
        let cover = self.cover_words.borrow();
        let mut scratch = self.group_scratch.borrow_mut();
        let GroupScratch { mask, stamp, epoch } = &mut *scratch;
        if mask.len() < groups.num {
            mask.resize(groups.num, 0);
            stamp.resize(groups.num, 0);
        }
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            stamp.fill(0);
            *epoch = 1;
        }
        for (vi, &off) in offs.iter().enumerate() {
            // PANIC-OK: cover_offset returns the base of a full
            // stride-sized block inside cover_words.
            let bits = &cover[off..off + self.stride];
            let last = vi + 1 == values.len();
            for (w, (&bv, &av)) in bits.iter().zip(acc.iter()).enumerate() {
                let mut word = bv & av;
                while word != 0 {
                    let t = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let g = groups.group_of[t] as usize;
                    if stamp[g] != *epoch {
                        stamp[g] = *epoch;
                        mask[g] = 0;
                    }
                    mask[g] |= 1u64 << vi;
                    // masks grow monotonically, so fullness can only first
                    // appear while the last value's bits are applied
                    if last && mask[g] == full {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// The rest-projection grouping for multiplicity column `ci`, built on
    /// first use: tuples with equal projections minus `ci` get one id.
    fn mult_groups_for(&self, ci: usize) -> Rc<MultGroups> {
        if let Some(g) = self.mult_groups.borrow().get(&ci) {
            return Rc::clone(g);
        }
        let mut ids: HashMap<Vec<Value>, u32> = HashMap::new();
        let group_of: Vec<u32> = self
            .tuple_list
            .iter()
            .map(|tuple| {
                let rest: Vec<Value> = tuple
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != ci)
                    .map(|(_, &v)| v)
                    .collect();
                let next = ids.len() as u32;
                *ids.entry(rest).or_insert(next)
            })
            .collect();
        let rc = Rc::new(MultGroups {
            group_of,
            num: ids.len(),
        });
        self.mult_groups.borrow_mut().insert(ci, Rc::clone(&rc));
        rc
    }

    fn admits_rec(
        &self,
        vocab: &Vocabulary,
        a: &Assignment,
        ci: usize,
        live: HashSet<Vec<Value>>,
    ) -> bool {
        if live.is_empty() {
            return false;
        }
        let Some(&si) = self.constrained.get(ci) else {
            return true;
        };
        let values = a.slot(Slot(si as u16));
        if values.is_empty() {
            // unconstrained by φ: any single concrete value works; branch
            // over the distinct values present in the live tuples.
            let mut seen: Vec<Value> = live.iter().map(|t| t[0]).collect();
            seen.sort_unstable();
            seen.dedup();
            for u in seen {
                let rest = rests_with(&live, u);
                if self.admits_rec(vocab, a, ci + 1, rest) {
                    return true;
                }
            }
            return false;
        }
        let acc: HashSet<Vec<Value>> = live.iter().map(|t| t[1..].to_vec()).collect();
        self.choose_covers(vocab, a, ci, values, 0, &live, acc)
    }

    #[allow(clippy::too_many_arguments)]
    fn choose_covers(
        &self,
        vocab: &Vocabulary,
        a: &Assignment,
        ci: usize,
        values: &[Value],
        vi: usize,
        live: &HashSet<Vec<Value>>,
        acc: HashSet<Vec<Value>>,
    ) -> bool {
        if acc.is_empty() {
            return false;
        }
        if vi == values.len() {
            return self.admits_rec(vocab, a, ci + 1, acc);
        }
        let v = values[vi];
        let mut covers: Vec<Value> = live
            .iter()
            .map(|t| t[0])
            .filter(|&u| value_leq(vocab, v, u))
            .collect();
        covers.sort_unstable();
        covers.dedup();
        for u in covers {
            let with_u = rests_with(live, u);
            let inter: HashSet<Vec<Value>> = acc
                .iter()
                .filter(|r| with_u.contains(*r))
                .cloned()
                .collect();
            if self.choose_covers(vocab, a, ci, values, vi + 1, live, inter) {
                return true;
            }
        }
        false
    }

    /// Whether `φ ∈ 𝒜_valid`: every slot holds concrete valid values
    /// within its multiplicity bounds and the cross-product of constrained
    /// slots consists of valid base tuples (Proposition 5.1, iterated).
    pub fn is_valid(&self, a: &Assignment) -> bool {
        for (si, slot) in self.slots.iter().enumerate() {
            let n = a.slot(Slot(si as u16)).len();
            if n < slot.mult.min() || slot.mult.max().is_some_and(|m| n > m) {
                return false;
            }
        }
        // cross-product membership over constrained slots
        let mut choice: Vec<Value> = Vec::with_capacity(self.constrained.len());
        self.valid_rec(a, 0, &mut choice)
    }

    fn valid_rec(&self, a: &Assignment, ci: usize, choice: &mut Vec<Value>) -> bool {
        let Some(&si) = self.constrained.get(ci) else {
            return self.tuples.contains(choice);
        };
        let values = a.slot(Slot(si as u16));
        if values.is_empty() {
            // multiplicity 0: the meta-facts vanish; validity requires the
            // remaining slots to form valid tuples with *some* value here.
            // Deterministic candidate order: hash-set iteration order
            // must not decide which branch the existential search
            // explores first (the result is the same either way, but
            // the work done — and any future trace of it — would not
            // be reproducible).
            let mut seen: Vec<Value> = self.tuples.iter().map(|t| t[ci]).collect();
            seen.sort_unstable();
            seen.dedup();
            for u in seen {
                choice.push(u);
                let ok = self.valid_rec(a, ci + 1, choice);
                choice.pop();
                if ok {
                    return true;
                }
            }
            return false;
        }
        // every value must participate: all cross tuples must be valid
        self.valid_product(a, ci, values, 0, choice)
    }

    fn valid_product(
        &self,
        a: &Assignment,
        ci: usize,
        values: &[Value],
        vi: usize,
        choice: &mut Vec<Value>,
    ) -> bool {
        if vi == values.len() {
            return true;
        }
        choice.push(values[vi]);
        let ok = self.valid_rec(a, ci + 1, choice);
        choice.pop();
        ok && self.valid_product(a, ci, values, vi + 1, choice)
    }
}

/// Rest-tuples (columns `1..`) of the live tuples whose first column is `u`.
fn rests_with(live: &HashSet<Vec<Value>>, u: Value) -> HashSet<Vec<Value>> {
    live.iter()
        .filter(|t| t[0] == u)
        .map(|t| t[1..].to_vec())
        .collect::<HashSet<Vec<Value>>>()
}

fn generalization_closure(vocab: &Vocabulary, universe: &[Value]) -> Vec<Value> {
    let mut out: HashSet<Value> = universe.iter().copied().collect();
    let mut stack: Vec<Value> = universe.to_vec();
    while let Some(v) = stack.pop() {
        let parents: Vec<Value> = match v {
            Value::Elem(e) => vocab
                .elem_parents(e)
                .iter()
                .map(|&p| Value::Elem(p))
                .collect(),
            Value::Rel(r) => vocab
                .rel_parents(r)
                .iter()
                .map(|&p| Value::Rel(p))
                .collect(),
        };
        for p in parents {
            if out.insert(p) {
                stack.push(p);
            }
        }
    }
    let mut v: Vec<Value> = out.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};
    use ontology::domains::figure1;

    fn setup(src: &str) -> (ontology::Ontology, BoundQuery, ValidityIndex) {
        let ont = figure1::ontology();
        let q = parse(src).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let idx = ValidityIndex::new(&b, ont.vocab(), &base);
        (ont, b, idx)
    }

    fn elem(ont: &ontology::Ontology, name: &str) -> Value {
        Value::Elem(ont.vocab().elem_id(name).unwrap())
    }

    fn assign(ont: &ontology::Ontology, x: &str, ys: &[&str]) -> Assignment {
        Assignment::new(
            ont.vocab(),
            vec![
                vec![elem(ont, x)],
                ys.iter().map(|y| elem(ont, y)).collect(),
            ],
            vec![],
        )
    }

    #[test]
    fn universes_and_roots_match_figure_3() {
        let (ont, _, idx) = setup(figure1::SIMPLE_QUERY);
        let v = ont.vocab();
        // x-universe: the two child-friendly attractions
        let xs: Vec<&str> = idx
            .universe(Slot(0))
            .iter()
            .map(|&u| v.elem_name(u.as_elem().unwrap()))
            .collect();
        assert_eq!(xs, vec!["Central Park", "Bronx Zoo"]);
        // y-universe: all 13 activity classes
        assert_eq!(idx.universe(Slot(1)).len(), 13);
        // closure adds Park/Zoo/Outdoor/Attraction/Place/Thing for x
        assert_eq!(idx.closure(Slot(0)).len(), 2 + 6);
        // minimal values: Thing (figure-1 has a global root)
        let x_min: Vec<&str> = idx
            .minimal_values(Slot(0))
            .iter()
            .map(|&u| v.elem_name(u.as_elem().unwrap()))
            .collect();
        assert_eq!(x_min, vec!["Thing"]);
        // y's minimal is also Thing (Activity ≤ Thing)
        let y_min: Vec<&str> = idx
            .minimal_values(Slot(1))
            .iter()
            .map(|&u| v.elem_name(u.as_elem().unwrap()))
            .collect();
        assert_eq!(y_min, vec!["Thing"]);
    }

    #[test]
    fn admits_generalizations_of_valid() {
        let (ont, _, idx) = setup(figure1::SIMPLE_QUERY);
        let v = ont.vocab();
        // valid base: (Central Park, Biking)
        assert!(idx.admits(v, &assign(&ont, "Central Park", &["Biking"])));
        // generalizations are admitted
        assert!(idx.admits(v, &assign(&ont, "Park", &["Sport"])));
        assert!(idx.admits(v, &assign(&ont, "Attraction", &["Activity"])));
        assert!(idx.admits(v, &assign(&ont, "Thing", &["Thing"])));
        // Madison Square is not child-friendly ⇒ nothing admits it
        assert!(!idx.admits(v, &assign(&ont, "Madison Square", &["Biking"])));
    }

    #[test]
    fn admits_multiplicity_combinations() {
        let (ont, _, idx) = setup(figure1::SIMPLE_QUERY);
        let v = ont.vocab();
        // {Biking, Ball Game} at Central Park: both bases valid ⇒ admitted
        assert!(idx.admits(v, &assign(&ont, "Central Park", &["Biking", "Ball Game"])));
        // generalized x with a value pair still admitted
        assert!(idx.admits(v, &assign(&ont, "Outdoor", &["Biking", "Feed a Monkey"])));
    }

    #[test]
    fn is_valid_checks_concreteness_and_product() {
        let (ont, _, idx) = setup(figure1::SIMPLE_QUERY);
        // base assignments are valid
        assert!(idx.is_valid(&assign(&ont, "Central Park", &["Biking"])));
        // combination: both (CP, Biking) and (CP, Ball Game) valid bases
        assert!(idx.is_valid(&assign(&ont, "Central Park", &["Biking", "Ball Game"])));
        // class-level x is NOT valid (instances required) though admitted
        let gen = assign(&ont, "Park", &["Biking"]);
        assert!(!idx.is_valid(&gen));
        assert!(idx.admits(ont.vocab(), &gen));
    }

    #[test]
    fn multiplicity_bounds_enforced() {
        let (ont, _, idx) = setup(figure1::SIMPLE_QUERY);
        // $y has +: at least one value; empty y violates min
        let empty_y = Assignment::new(
            ont.vocab(),
            vec![vec![elem(&ont, "Central Park")], vec![]],
            vec![],
        );
        assert!(!idx.is_valid(&empty_y));
        // $x defaults to exactly one: two x values invalid
        let two_x = Assignment::new(
            ont.vocab(),
            vec![
                vec![elem(&ont, "Central Park"), elem(&ont, "Bronx Zoo")],
                vec![elem(&ont, "Biking")],
            ],
            vec![],
        );
        assert!(!idx.is_valid(&two_x));
    }

    #[test]
    fn product_condition_rejects_cross_invalid() {
        // craft a query where the valid set is NOT a product:
        // (CP, Maoz) and (BZ, Pine) valid, but (CP, Pine) not.
        let src = r#"
SELECT FACT-SETS
WHERE
  $x hasLabel "child-friendly".
  $z nearBy $x
SATISFYING
  $z+ eatAt $x
WITH SUPPORT = 0.2
"#;
        let (ont, _, idx) = setup(src);
        let v = ont.vocab();
        // slots ordered by VarId: x then z
        let cp_maoz = Assignment::new(
            v,
            vec![
                vec![elem(&ont, "Central Park")],
                vec![elem(&ont, "Maoz Veg")],
            ],
            vec![],
        );
        assert!(idx.is_valid(&cp_maoz));
        let cp_pine = Assignment::new(
            v,
            vec![vec![elem(&ont, "Central Park")], vec![elem(&ont, "Pine")]],
            vec![],
        );
        assert!(!idx.is_valid(&cp_pine));
        assert!(!idx.admits(v, &cp_pine));
        // combination {Maoz, Pine} for z at CP requires (CP, Pine) valid ⇒ no
        let combo = Assignment::new(
            v,
            vec![
                vec![elem(&ont, "Central Park")],
                vec![elem(&ont, "Maoz Veg"), elem(&ont, "Pine")],
            ],
            vec![],
        );
        assert!(!idx.is_valid(&combo));
        assert!(!idx.admits(v, &combo));
    }

    #[test]
    fn free_slots_admit_everything() {
        let (ont, _, idx) = setup("SELECT FACT-SETS WHERE SATISFYING $a+ $p $b WITH SUPPORT = 0.2");
        let v = ont.vocab();
        assert!(idx.slots().iter().all(|s| s.free));
        let a = Assignment::new(
            v,
            vec![
                vec![elem(&ont, "Biking")],
                vec![Value::Rel(v.rel_id("doAt").unwrap())],
                vec![elem(&ont, "Central Park")],
            ],
            vec![],
        );
        assert!(idx.admits(v, &a));
        assert!(idx.is_valid(&a));
    }

    #[test]
    fn more_facts_do_not_affect_admission() {
        let (ont, _, idx) = setup(figure1::SIMPLE_QUERY);
        let v = ont.vocab();
        let f = v.fact("Rent Bikes", "doAt", "Boathouse").unwrap();
        let a = assign(&ont, "Central Park", &["Biking"]).with_more(v, f);
        assert!(idx.admits(v, &a));
    }
}
