//! # Sharded deployment core: member partitions, wire ops, coordinator merge
//!
//! ROADMAP item "shard crowd members across N logical nodes": the crowd
//! is partitioned by a [`ShardMap`], each node runs its own engine loop
//! over a [`ShardCrowd`] view of its partition (ontology and DAG
//! replicated, member ids staying *global*), and the resulting per-node
//! op logs are shipped — as replica-independent [`WireOp`]s — to a
//! [`Coordinator`] that merges them into one global classification with
//! [`OpLog::replay_merged`] semantics.
//!
//! ## Why the merge is deterministic
//!
//! The canonical `(tick, member, seq)` order of [`crate::oplog`] is a
//! *total* order over any union of per-node streams: ticks are per-node
//! question counters (so they collide across nodes), but every op of a
//! tick belongs to the member who answered it and each member lives on
//! exactly one node — `member` breaks every cross-node tie, and `seq`
//! orders within a tick. Any delivery interleaving therefore sorts to
//! the same sequence, which is what the simulated network in
//! `crates/simtest` exploits: reordering, delay, partition and
//! crash/restart faults can change *when* ops arrive but never what the
//! merge computes.
//!
//! ## Why ops travel as assignments
//!
//! [`NodeId`]s are replica-local: each node materializes its DAG lazily
//! in its own discovery order, so the same assignment gets different ids
//! on different replicas. A [`WireOp`] therefore addresses nodes by
//! [`Assignment`] — content, not index — and the coordinator interns
//! each one into its own replica on receipt ([`Coordinator::merge`]).
//! This is also exactly the *stale-DAG* replay shape of crash recovery:
//! a restarted node re-applies its durable log against a fresh replica
//! whose nodes are materialized at recovery time, long after the ops'
//! ticks.
//!
//! ## Watermark protocol
//!
//! The coordinator applies each node's stream strictly in order: a batch
//! is accepted only where it extends the contiguous received prefix
//! ([`Coordinator::ingest`]), duplicates below the watermark are
//! idempotently ignored, and a gapped batch is rejected outright — the
//! sender's periodic retransmission from its last acked watermark closes
//! the gap. Per-node prefixes are what make faulty merges safe: within
//! one log, an `Msp` op's justifying evidence precedes it, so a prefix
//! can starve a *peer's* MSP claim (handled by the entailment filter in
//! [`OpLog::replay_merged`]) but never deliver a claim without its own
//! node's evidence.

use crate::aggregate::Aggregator;
use crate::assignment::Assignment;
use crate::dag::{Dag, NodeId};
use crate::oplog::{AnswerOp, OpLog, OpVerdict, ReplayOutcome, Watermark};
use crate::vertical::MiningOutcome;
use crowd::{Answer, CrowdSource, MemberId, Question};
use oassis_ql::{BoundQuery, Value};
use ontology::json::{Json, JsonError};
use ontology::{ElemId, Fact, RelId, Vocabulary};

/// A deterministic member → shard-node assignment over `shards` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `assign[m]` = shard owning member `m`.
    assign: Vec<u32>,
    shards: u32,
}

impl ShardMap {
    /// Round-robin assignment: member `m` lives on shard `m % shards`.
    pub fn round_robin(members: u32, shards: u32) -> ShardMap {
        let shards = shards.max(1);
        ShardMap {
            assign: (0..members).map(|m| m % shards).collect(),
            shards,
        }
    }

    /// An explicit assignment (`assign[m]` = shard of member `m`);
    /// returns `None` if any entry names a shard `>= shards` or
    /// `shards == 0`. Arbitrary maps — including ones that leave some
    /// shards empty — are legal; the equivalence oracle quantifies over
    /// them.
    pub fn from_assignments(assign: Vec<u32>, shards: u32) -> Option<ShardMap> {
        if shards == 0 || assign.iter().any(|&s| s >= shards) {
            return None;
        }
        Some(ShardMap { assign, shards })
    }

    /// Number of shard nodes.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of members in the map.
    pub fn members(&self) -> u32 {
        self.assign.len() as u32
    }

    /// The shard owning `member`.
    pub fn shard_of(&self, member: MemberId) -> u32 {
        self.assign[member.0 as usize] // PANIC-OK: assign is sized to the member universe at construction
    }

    /// The (global) member ids living on `shard`, in id order.
    pub fn members_of(&self, shard: u32) -> Vec<MemberId> {
        self.assign
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(m, _)| MemberId(m as u32))
            .collect()
    }
}

/// A shard node's view of the crowd: only its own member partition is
/// visible, with ids kept **global** so the ops the node records merge
/// canonically (member is the cross-node tie-breaker of the merge
/// order).
pub struct ShardCrowd<C> {
    inner: C,
    own: Vec<MemberId>,
}

impl<C: CrowdSource> ShardCrowd<C> {
    /// Restricts `inner` to the members `own` (global ids).
    pub fn new(inner: C, own: Vec<MemberId>) -> ShardCrowd<C> {
        ShardCrowd { inner, own }
    }
}

impl<C: CrowdSource> CrowdSource for ShardCrowd<C> {
    fn members(&self) -> Vec<MemberId> {
        let inner: Vec<MemberId> = self.inner.members();
        self.own
            .iter()
            .copied()
            .filter(|m| inner.contains(m))
            .collect()
    }

    fn ask(&mut self, member: MemberId, question: &Question) -> Answer {
        debug_assert!(self.own.contains(&member), "ask outside the partition");
        self.inner.ask(member, question)
    }

    fn questions_asked(&self) -> usize {
        self.inner.questions_asked()
    }

    fn member_has_profile(&self, member: MemberId, label: &str) -> bool {
        self.inner.member_has_profile(member, label)
    }

    fn supports_prefetch(&self) -> bool {
        self.inner.supports_prefetch()
    }

    fn prefetch(&mut self, batch: &[(MemberId, Question)]) {
        self.inner.prefetch(batch);
    }

    fn advance_clock(&mut self, ticks: u64) {
        self.inner.advance_clock(ticks);
    }
}

/// [`OpVerdict`] with nodes addressed by assignment — replica-portable.
#[derive(Debug, Clone, PartialEq)]
pub enum WireVerdict {
    /// A support answer for the op's assignment.
    Support {
        /// Reported support in `[0, 1]`.
        support: f64,
    },
    /// Grouped "none of these" over the declined options.
    NoneOfThese {
        /// The declined options, in presentation order.
        options: Vec<Assignment>,
    },
    /// An "irrelevant" pruning click (element ids are vocabulary-global,
    /// so they travel as-is).
    Prune {
        /// The pruned element.
        elem: ElemId,
    },
    /// A counted question with no shared-state delta.
    NoAnswer,
    /// A confirmed MSP discovery.
    Msp {
        /// Whether the MSP is valid w.r.t. the query.
        valid: bool,
    },
    /// A compensating re-answer (state-neutral, kept for provenance).
    Revise {
        /// The revised support (never applied).
        support: f64,
    },
}

/// One op of a node's durable log in wire form: the `(tick, member,
/// seq)` stamp travels unchanged, nodes travel as assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOp {
    /// Node-local question-counter tick.
    pub tick: u32,
    /// Intra-tick sequence number.
    pub seq: u32,
    /// Global member id (the merge order's cross-node tie-breaker).
    pub member: MemberId,
    /// The op's assignment, `None` for node-less ops (prune/no-answer
    /// and node-less revisions).
    pub node: Option<Assignment>,
    /// The recorded effect.
    pub verdict: WireVerdict,
}

impl WireOp {
    /// The `(tick, seq)` watermark position of this op.
    pub fn watermark(&self) -> Watermark {
        Watermark {
            tick: self.tick,
            seq: self.seq,
        }
    }
}

/// Renders one op in wire form, resolving its node-local [`NodeId`]s
/// against the replica `dag` it was recorded on — the per-op unit of
/// [`to_wire`], used by streaming consumers ([`crate::oplog::OpTap`]
/// implementations) that ship ops before the run's log is finished.
pub fn op_to_wire(op: &AnswerOp, dag: &Dag<'_>) -> WireOp {
    let assignment = |id: NodeId| -> Option<Assignment> {
        (id != NodeId::SENTINEL).then(|| dag.node(id).assignment.clone())
    };
    let verdict = match &op.verdict {
        OpVerdict::Support { support } => WireVerdict::Support { support: *support },
        OpVerdict::NoneOfThese { options } => WireVerdict::NoneOfThese {
            options: options
                .iter()
                .map(|&o| dag.node(o).assignment.clone())
                .collect(),
        },
        OpVerdict::Prune { elem } => WireVerdict::Prune { elem: *elem },
        OpVerdict::NoAnswer => WireVerdict::NoAnswer,
        OpVerdict::Msp { valid } => WireVerdict::Msp { valid: *valid },
        OpVerdict::Revise { support } => WireVerdict::Revise { support: *support },
    };
    WireOp {
        tick: op.tick,
        seq: op.seq,
        member: op.member,
        node: assignment(op.node),
        verdict,
    }
}

/// Renders a node's op log in wire form, resolving the node-local
/// [`NodeId`]s against the replica `dag` the log was recorded on.
pub fn to_wire(log: &OpLog, dag: &Dag<'_>) -> Vec<WireOp> {
    log.ops().iter().map(|op| op_to_wire(op, dag)).collect()
}

fn value_to_json(v: Value) -> Json {
    match v {
        Value::Elem(e) => Json::Arr(vec![Json::Str("e".into()), Json::Num(e.0 as f64)]),
        Value::Rel(r) => Json::Arr(vec![Json::Str("r".into()), Json::Num(r.0 as f64)]),
    }
}

fn value_from_json(j: &Json) -> Result<Value, JsonError> {
    let [kind, id] = j.as_arr()? else {
        return Err(JsonError::shape("expected a [kind, id] value"));
    };
    match kind.as_str()? {
        "e" => Ok(Value::Elem(ElemId(id.as_u32()?))),
        "r" => Ok(Value::Rel(RelId(id.as_u32()?))),
        other => Err(JsonError::shape(format!("unknown value kind {other:?}"))),
    }
}

/// Serializes an assignment for the wire/WAL: per-slot value arrays plus
/// MORE facts, element and relation ids vocabulary-global.
pub fn assignment_to_json(a: &Assignment) -> Json {
    let slots = (0..a.num_slots())
        .map(|si| {
            Json::Arr(
                a.slot(crate::assignment::Slot(si as u16))
                    .iter()
                    .map(|&v| value_to_json(v))
                    .collect(),
            )
        })
        .collect();
    let more = a
        .more()
        .iter()
        .map(|f| {
            Json::Arr(vec![
                Json::Num(f.subject.0 as f64),
                Json::Num(f.rel.0 as f64),
                Json::Num(f.object.0 as f64),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("slots".into(), Json::Arr(slots)),
        ("more".into(), Json::Arr(more)),
    ])
}

/// Restores an assignment serialized by [`assignment_to_json`],
/// re-canonicalizing against `vocab` (a no-op for well-formed input —
/// wire assignments are canonical by construction).
pub fn assignment_from_json(vocab: &Vocabulary, j: &Json) -> Result<Assignment, JsonError> {
    let values = j
        .field("slots")?
        .as_arr()?
        .iter()
        .map(|s| s.as_arr()?.iter().map(value_from_json).collect())
        .collect::<Result<Vec<Vec<Value>>, _>>()?;
    let more = j
        .field("more")?
        .as_arr()?
        .iter()
        .map(|f| {
            let [s, r, o] = f.as_arr()? else {
                return Err(JsonError::shape("expected a [s, r, o] fact"));
            };
            Ok(Fact::new(
                ElemId(s.as_u32()?),
                RelId(r.as_u32()?),
                ElemId(o.as_u32()?),
            ))
        })
        .collect::<Result<Vec<Fact>, _>>()?;
    Ok(Assignment::new(vocab, values, more))
}

/// Serializes a wire op for the WAL / wire protocol. The verdict is a
/// single-variant object mirroring [`WireVerdict`]; decoders ignore
/// fields they don't know, so frames can grow.
pub fn wire_to_json(op: &WireOp) -> Json {
    let verdict = match &op.verdict {
        WireVerdict::Support { support } => Json::Obj(vec![(
            "Support".into(),
            Json::Obj(vec![("support".into(), Json::Num(*support))]),
        )]),
        WireVerdict::NoneOfThese { options } => Json::Obj(vec![(
            "NoneOfThese".into(),
            Json::Obj(vec![(
                "options".into(),
                Json::Arr(options.iter().map(assignment_to_json).collect()),
            )]),
        )]),
        WireVerdict::Prune { elem } => Json::Obj(vec![(
            "Prune".into(),
            Json::Obj(vec![("elem".into(), Json::Num(elem.0 as f64))]),
        )]),
        WireVerdict::NoAnswer => Json::Obj(vec![("NoAnswer".into(), Json::Obj(vec![]))]),
        WireVerdict::Msp { valid } => Json::Obj(vec![(
            "Msp".into(),
            Json::Obj(vec![("valid".into(), Json::Bool(*valid))]),
        )]),
        WireVerdict::Revise { support } => Json::Obj(vec![(
            "Revise".into(),
            Json::Obj(vec![("support".into(), Json::Num(*support))]),
        )]),
    };
    Json::Obj(vec![
        ("tick".into(), Json::Num(op.tick as f64)),
        ("seq".into(), Json::Num(op.seq as f64)),
        ("member".into(), Json::Num(op.member.0 as f64)),
        (
            "node".into(),
            op.node.as_ref().map_or(Json::Null, assignment_to_json),
        ),
        ("verdict".into(), verdict),
    ])
}

/// Restores a wire op serialized by [`wire_to_json`].
pub fn wire_from_json(vocab: &Vocabulary, j: &Json) -> Result<WireOp, JsonError> {
    let node = match j.field("node")? {
        Json::Null => None,
        a => Some(assignment_from_json(vocab, a)?),
    };
    let [(tag, body)] = j.field("verdict")?.as_obj()? else {
        return Err(JsonError::shape("expected a single-variant verdict object"));
    };
    let verdict = match tag.as_str() {
        "Support" => WireVerdict::Support {
            support: body.field("support")?.as_f64()?,
        },
        "NoneOfThese" => WireVerdict::NoneOfThese {
            options: body
                .field("options")?
                .as_arr()?
                .iter()
                .map(|a| assignment_from_json(vocab, a))
                .collect::<Result<Vec<_>, _>>()?,
        },
        "Prune" => WireVerdict::Prune {
            elem: ElemId(body.field("elem")?.as_u32()?),
        },
        "NoAnswer" => WireVerdict::NoAnswer,
        "Msp" => WireVerdict::Msp {
            valid: match body.field("valid")? {
                Json::Bool(b) => *b,
                other => {
                    return Err(JsonError::shape(format!(
                        "expected bool valid, got {other}"
                    )))
                }
            },
        },
        "Revise" => WireVerdict::Revise {
            support: body.field("support")?.as_f64()?,
        },
        other => Err(JsonError::shape(format!(
            "unknown verdict variant {other:?}"
        )))?,
    };
    Ok(WireOp {
        tick: j.field("tick")?.as_u32()?,
        seq: j.field("seq")?.as_u32()?,
        member: MemberId(j.field("member")?.as_u32()?),
        node,
        verdict,
    })
}

/// Interns one wire op into `dag` (assignment → local [`NodeId`]) — the
/// stale-DAG replay shape shared by the coordinator merge and crash
/// recovery: the target replica materializes nodes at intern time, long
/// after the op's tick.
pub fn intern_wire_op(dag: &mut Dag<'_>, w: &WireOp) -> AnswerOp {
    let node = w
        .node
        .as_ref()
        .map(|a| dag.intern(a.clone()))
        .unwrap_or(NodeId::SENTINEL);
    let verdict = match &w.verdict {
        WireVerdict::Support { support } => OpVerdict::Support { support: *support },
        WireVerdict::NoneOfThese { options } => OpVerdict::NoneOfThese {
            options: options.iter().map(|a| dag.intern(a.clone())).collect(),
        },
        WireVerdict::Prune { elem } => OpVerdict::Prune { elem: *elem },
        WireVerdict::NoAnswer => OpVerdict::NoAnswer,
        WireVerdict::Msp { valid } => OpVerdict::Msp { valid: *valid },
        WireVerdict::Revise { support } => OpVerdict::Revise { support: *support },
    };
    AnswerOp {
        tick: w.tick,
        seq: w.seq,
        member: w.member,
        node,
        verdict,
    }
}

/// The merge side of the cluster: per-node contiguous op streams,
/// watermark acks, and the final [`OpLog::replay_merged`] into a global
/// classification over the coordinator's own DAG replica.
#[derive(Debug, Clone)]
pub struct Coordinator {
    /// Per-node received prefix (always contiguous from op 0).
    streams: Vec<Vec<WireOp>>,
    threshold: f64,
    aggregated: bool,
    /// Ops accepted into streams (duplicates and gaps excluded).
    merge_ops: u64,
}

impl Coordinator {
    /// A coordinator for `nodes` shard nodes; `threshold` and
    /// `aggregated` are the op-log footer facts of the recording runs
    /// (all nodes share them — the engine configuration is replicated).
    pub fn new(nodes: u32, threshold: f64, aggregated: bool) -> Coordinator {
        Coordinator {
            streams: vec![Vec::new(); nodes as usize],
            threshold,
            aggregated,
            merge_ops: 0,
        }
    }

    /// Ingests a batch of `node`'s log starting at log index `start`.
    ///
    /// Accepts only what extends the contiguous received prefix:
    /// duplicates (fully below the watermark) are ignored, overlapping
    /// batches are deduplicated by position, and a batch that would
    /// leave a gap (`start` beyond the prefix) is rejected — the
    /// sender's retransmission from its acked watermark will close the
    /// gap. Returns the new prefix length (the count acked back to the
    /// node).
    pub fn ingest(&mut self, node: u32, start: usize, ops: &[WireOp]) -> usize {
        let stream = &mut self.streams[node as usize]; // PANIC-OK: streams is sized to the node count at construction
        let have = stream.len();
        if start > have {
            return have; // gap — wait for retransmission
        }
        if start + ops.len() > have {
            let fresh = &ops[have - start..]; // PANIC-OK: have >= start is guaranteed by the watermark check above
            self.merge_ops += fresh.len() as u64;
            stream.extend_from_slice(fresh);
        }
        stream.len()
    }

    /// The contiguous received prefix length for `node` — the ack value.
    pub fn received(&self, node: u32) -> usize {
        self.streams[node as usize].len() // PANIC-OK: streams is sized to the node count at construction
    }

    /// The `(tick, seq)` watermark of `node`'s received prefix — what a
    /// restarted node re-requests to resume sending from the right op.
    pub fn watermark_of(&self, node: u32) -> Watermark {
        self.streams[node as usize] // PANIC-OK: streams is sized to the node count at construction
            .last()
            .map(WireOp::watermark)
            .unwrap_or_default()
    }

    /// Total ops accepted across all streams.
    pub fn merge_ops(&self) -> u64 {
        self.merge_ops
    }

    /// Merges everything received into a global classification: every
    /// wire op is interned into the coordinator's replica `dag`
    /// (assignment → local [`NodeId`]), and the union of streams is
    /// replayed under the canonical `(tick, member, seq)` order with the
    /// merged-mode MSP dedup/entailment rules.
    ///
    /// `complete` is the footer fact for the merged log: whether every
    /// (non-empty) node run completed *and* every stream was fully
    /// received — environmental knowledge the coordinator's caller has
    /// and the ops do not encode.
    pub fn merge<A: Aggregator>(
        &self,
        dag: &mut Dag<'_>,
        aggregator: &A,
        pool: &minipool::Pool,
        tele: &telemetry::Telemetry,
        complete: bool,
    ) -> ReplayOutcome {
        let span = tele.span("cluster.merge");
        let tele = span.tele().clone();
        let mut ops: Vec<AnswerOp> = Vec::with_capacity(self.merge_ops as usize);
        for stream in &self.streams {
            for w in stream {
                ops.push(intern_wire_op(dag, w));
            }
        }
        tele.count("cluster.merge_ops", ops.len() as u64);
        let mut log = OpLog::new(self.threshold, self.aggregated);
        log.set_complete(complete);
        log.with_ops(ops)
            .replay_merged(dag, aggregator, pool, &tele)
    }
}

/// The replica-independent face of a mining outcome: sorted display
/// strings of the MSP sets plus the classified-valid count. Two runs
/// with equal [`SemanticOutcome`]s found the same answer, whatever order
/// they found it in and however their replicas materialized — this is
/// the value the shard-equivalence oracle digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticOutcome {
    /// All MSP displays, sorted.
    pub msps: Vec<String>,
    /// Valid MSP displays (the query answer), sorted.
    pub valid_msps: Vec<String>,
    /// Valid base assignments classified.
    pub total_valid: usize,
    /// Whether the run (or merged run) classified everything.
    pub complete: bool,
}

impl SemanticOutcome {
    fn build(
        msps: &[Assignment],
        valid_msps: &[Assignment],
        total_valid: usize,
        complete: bool,
        b: &BoundQuery,
        vocab: &Vocabulary,
    ) -> SemanticOutcome {
        let disp = |a: &Assignment| a.apply(b).to_display(vocab);
        let mut msps: Vec<String> = msps.iter().map(disp).collect();
        msps.sort();
        let mut valid: Vec<String> = valid_msps.iter().map(disp).collect();
        valid.sort();
        SemanticOutcome {
            msps,
            valid_msps: valid,
            total_valid,
            complete,
        }
    }

    /// The semantic face of a coordinator merge (or any replay).
    pub fn from_replay(r: &ReplayOutcome, b: &BoundQuery, vocab: &Vocabulary) -> SemanticOutcome {
        SemanticOutcome::build(&r.msps, &r.valid_msps, r.total_valid, r.complete, b, vocab)
    }

    /// The semantic face of a round-driven engine run.
    pub fn from_mining(m: &MiningOutcome, b: &BoundQuery, vocab: &Vocabulary) -> SemanticOutcome {
        SemanticOutcome::build(&m.msps, &m.valid_msps, m.total_valid, m.complete, b, vocab)
    }

    /// FNV-1a digest of the semantic outcome — the cluster golden.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for m in &self.msps {
            fold(m.as_bytes());
            fold(&[0xFF]);
        }
        fold(&[0xFE]);
        for m in &self.valid_msps {
            fold(m.as_bytes());
            fold(&[0xFF]);
        }
        fold(&[0xFE]);
        fold(&(self.total_valid as u64).to_le_bytes());
        fold(&[u8::from(self.complete)]);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::FixedSampleAggregator;
    use crate::multi::run_multi;
    use crate::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
    use crate::vertical::MiningConfig;
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};

    #[test]
    fn shard_maps_partition_members() {
        let map = ShardMap::round_robin(8, 4);
        assert_eq!(map.shards(), 4);
        assert_eq!(map.members_of(1), vec![MemberId(1), MemberId(5)]);
        for m in 0..8 {
            assert_eq!(map.shard_of(MemberId(m)), m % 4);
        }
        // arbitrary maps may leave shards empty
        let skewed = ShardMap::from_assignments(vec![2, 2, 2, 0], 3).unwrap();
        assert!(skewed.members_of(1).is_empty());
        assert_eq!(skewed.members_of(2).len(), 3);
        assert!(ShardMap::from_assignments(vec![3], 3).is_none());
        assert!(ShardMap::from_assignments(vec![0], 0).is_none());
    }

    #[test]
    fn coordinator_ingest_is_contiguous_and_idempotent() {
        let wire = |tick: u32, seq: u32| WireOp {
            tick,
            seq,
            member: MemberId(0),
            node: None,
            verdict: WireVerdict::NoAnswer,
        };
        let mut c = Coordinator::new(2, 0.5, true);
        let ops: Vec<WireOp> = (1..=4).map(|t| wire(t, 0)).collect();
        // a gapped batch is rejected outright
        assert_eq!(c.ingest(0, 2, &ops[2..]), 0);
        assert_eq!(c.ingest(0, 0, &ops[..2]), 2);
        // duplicate delivery below the watermark is a no-op
        assert_eq!(c.ingest(0, 0, &ops[..2]), 2);
        // overlap extends only with the fresh suffix
        assert_eq!(c.ingest(0, 1, &ops[1..]), 4);
        assert_eq!(c.merge_ops(), 4);
        assert_eq!(c.received(0), 4);
        assert_eq!(c.received(1), 0);
        assert_eq!(c.watermark_of(0), Watermark { tick: 4, seq: 0 });
        assert_eq!(c.watermark_of(1), Watermark::default());
    }

    /// Every wire-op verdict survives the JSON round trip bit-identically
    /// (assignments re-canonicalize to themselves, floats are exact).
    #[test]
    fn wire_ops_roundtrip_through_json() {
        let d = synthetic_domain(30, 4, 2);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        dag.materialize_all();
        let vocab = d.ontology.vocab();
        let a0 = dag.node(crate::dag::NodeId(0)).assignment.clone();
        let a1 = dag.node(crate::dag::NodeId(1)).assignment.clone();
        let ops = vec![
            WireOp {
                tick: 1,
                seq: 0,
                member: MemberId(2),
                node: Some(a0.clone()),
                verdict: WireVerdict::Support { support: 1.0 / 3.0 },
            },
            WireOp {
                tick: 1,
                seq: 1,
                member: MemberId(2),
                node: None,
                verdict: WireVerdict::NoneOfThese {
                    options: vec![a0.clone(), a1],
                },
            },
            WireOp {
                tick: 2,
                seq: 0,
                member: MemberId(0),
                node: None,
                verdict: WireVerdict::Prune { elem: ElemId(3) },
            },
            WireOp {
                tick: 3,
                seq: 0,
                member: MemberId(1),
                node: None,
                verdict: WireVerdict::NoAnswer,
            },
            WireOp {
                tick: 3,
                seq: 1,
                member: MemberId(1),
                node: Some(a0),
                verdict: WireVerdict::Msp { valid: true },
            },
            WireOp {
                tick: 4,
                seq: 0,
                member: MemberId(3),
                node: None,
                verdict: WireVerdict::Revise { support: 0.125 },
            },
        ];
        for op in &ops {
            let text = wire_to_json(op).to_string();
            let back = wire_from_json(vocab, &ontology::json::parse(&text).unwrap()).unwrap();
            assert_eq!(&back, op, "{text}");
        }
        // decoding tolerates unknown fields (frame evolution)
        let mut j = wire_to_json(&ops[0]);
        if let Json::Obj(fields) = &mut j {
            fields.push(("future_field".into(), Json::Str("ignored".into())));
        }
        let back = wire_from_json(vocab, &j).unwrap();
        assert_eq!(back, ops[0]);
    }

    /// Two shards mine their member partitions independently; the
    /// coordinator merge over fresh-replica interning must reproduce the
    /// single-node run's semantic outcome exactly.
    #[test]
    fn sharded_merge_matches_the_single_node_run() {
        let d = synthetic_domain(60, 5, 2);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 4, true, MspDistribution::Uniform, 11);
        let patterns: Vec<_> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();
        let agg = FixedSampleAggregator { sample_size: 1 };
        let cfg = MiningConfig {
            specialization_ratio: 0.25,
            seed: 9,
            ..Default::default()
        };
        let members = 4u32;

        // single-node reference over the whole crowd
        let mut ref_dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut ref_crowd =
            PlantedOracle::new(d.ontology.vocab(), patterns.clone(), members as usize, 9);
        let reference = run_multi(&mut ref_dag, &mut ref_crowd, &agg, &cfg);
        let want = SemanticOutcome::from_mining(&reference.mining, &b, d.ontology.vocab());

        // two shard nodes, each mining its partition on its own replica
        let map = ShardMap::round_robin(members, 2);
        let mut coord = Coordinator::new(2, reference.mining.ops.threshold(), true);
        let pool = minipool::Pool::sequential();
        let tele = telemetry::Telemetry::off();
        let mut all_complete = true;
        for node in 0..2u32 {
            let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
            let oracle =
                PlantedOracle::new(d.ontology.vocab(), patterns.clone(), members as usize, 9);
            let mut crowd = ShardCrowd::new(oracle, map.members_of(node));
            let out = run_multi(&mut dag, &mut crowd, &agg, &cfg);
            all_complete &= out.mining.complete;
            let wire = to_wire(&out.mining.ops, &dag);
            let n = wire.len();
            assert_eq!(coord.ingest(node, 0, &wire), n);
        }
        let mut coord_dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let merged = coord.merge(&mut coord_dag, &agg, &pool, &tele, all_complete);
        let got = SemanticOutcome::from_replay(&merged, &b, d.ontology.vocab());
        assert_eq!(got, want);
        assert_eq!(got.digest(), want.digest());
        assert!(got.complete);
    }
}
