//! The comparison algorithms of Section 6.4.
//!
//! * [`run_horizontal`] — "Inspired by the classic Apriori algorithm, this
//!   algorithm asks about assignment φ only after verifying that all of its
//!   predecessors are significant."
//! * [`run_naive`] — "randomly chooses an assignment among the valid ones."
//! * [`baseline_question_count`] — the exhaustive baseline of Section 6.3:
//!   `sample_size` questions for every valid assignment, no traversal
//!   order, no inference (the `baseline%` denominator of Figures 4a–4c).
//!
//! Both algorithms "use the same inference scheme as our algorithm and
//! avoid questions on classified assignments"; they run over a
//! pre-materialized DAG (the paper fed the naive algorithm the assignments
//! the vertical algorithm had generated, for fairness).

// audit: allow-file(D4, baseline replays index structures sized by the same domain that produced the indices)
use crate::classify::{Class, Classifier};
use crate::dag::{Dag, NodeId};
use crate::vertical::{
    finish, DiscoveryEvent, DiscoveryKind, MiningConfig, MiningOutcome, Session, ValidTracker,
};
use crowd::{CrowdSource, MemberId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashSet;

/// Questions the exhaustive baseline would ask: `sample_size` per valid
/// assignment.
pub fn baseline_question_count(dag: &mut Dag<'_>, sample_size: usize) -> usize {
    let valid = dag.node_ids().filter(|&i| dag.node(i).valid).count();
    valid * sample_size
}

/// Incrementally detects assignments whose MSP status is *entailed* by the
/// current classification: known significant, children generated, and
/// every child known non-significant.
pub(crate) struct MspMonitor {
    /// High-water mark into the classifier's append-only witness list —
    /// witnesses past this index have not been copied into `pending` yet.
    seen: usize,
    /// Directly-witnessed significant nodes not yet confirmed as MSPs,
    /// kept in witness order so confirmation events fire in the same
    /// order as a full witness-list rescan would emit them. The second
    /// field is a resume index into the child list: children before it
    /// were already seen `Insignificant`, which is sticky, so a re-check
    /// picks up where the last one stopped instead of rescanning.
    pending: Vec<(NodeId, u32)>,
}

impl MspMonitor {
    pub fn new() -> Self {
        MspMonitor {
            seen: 0,
            pending: Vec::new(),
        }
    }

    /// Scans for newly entailed MSPs and records discovery events.
    ///
    /// Only directly-witnessed significant nodes can be MSPs: a node that
    /// is significant purely by inference sits below its witness and thus
    /// has a significant successor. Each witness enters `pending` once (the
    /// witness list is append-only and duplicate-free) and leaves it when
    /// confirmed, so an update touches only the unconfirmed tail instead
    /// of rescanning — and reallocating — the whole witness list.
    pub fn update(
        &mut self,
        dag: &mut Dag<'_>,
        cls: &mut Classifier,
        question: usize,
        events: &mut Vec<DiscoveryEvent>,
        out: &mut Vec<NodeId>,
    ) {
        let witnesses = cls.sig_witnesses();
        if self.seen < witnesses.len() {
            // PANIC-OK: `seen` only advances to a previously observed
            // witness-list length, and the list is append-only.
            self.pending
                .extend(witnesses[self.seen..].iter().map(|&w| (w, 0u32)));
            self.seen = witnesses.len();
        }
        let dag = &*dag;
        self.pending.retain_mut(|(id, resume)| {
            let id = *id;
            let Some(children) = dag.children_if_generated(id) else {
                return true;
            };
            let mut i = *resume as usize;
            while let Some(&c) = children.get(i) {
                // `class` (not `class_frozen`): the scan must *stamp* each
                // child it inspects, exactly as the historical rescan did —
                // stickiness makes the stamping order observable. The
                // cached fast path is a no-op for already-stamped children.
                let cl = match cls.cached_queried(c) {
                    Some(cl) => cl,
                    None => cls.class(dag, c),
                };
                match cl {
                    Class::Insignificant => i += 1,
                    // A queried Significant child is sticky: this witness
                    // can never become maximal — and the historical rescan
                    // would short-circuit here on every later update
                    // without stamping anything new, so dropping it is
                    // observation-identical.
                    Class::Significant => return false,
                    Class::Unknown => {
                        *resume = i as u32;
                        return true;
                    }
                }
            }
            out.push(id);
            events.push(DiscoveryEvent {
                question,
                kind: DiscoveryKind::Msp {
                    valid: dag.node(id).valid,
                },
            });
            false
        });
    }
}

/// Runs the horizontal (Apriori-style, levelwise) baseline.
///
/// The DAG should be pre-materialized (e.g. via
/// [`Dag::materialize_all`]); lazily generated parts are expanded as the
/// frontier reaches them.
pub fn run_horizontal<C: CrowdSource>(
    dag: &mut Dag<'_>,
    crowd: &mut C,
    member: MemberId,
    cfg: &MiningConfig,
) -> MiningOutcome {
    let threshold = cfg.threshold.unwrap_or(dag.query().threshold);
    let root = cfg.telemetry.span("mine.horizontal");
    let tele = root.tele().clone();
    let mut s = Session {
        cls: Classifier::new(),
        rng: StdRng::seed_from_u64(cfg.seed),
        questions: 0,
        events: Vec::new(),
        ops: crate::oplog::OpLog::new(threshold, false),
        tracker: ValidTracker::new(dag).with_telemetry(tele.clone()),
        available: true,
        threshold,
        cfg,
        manifest: Default::default(),
        gave_up: Vec::new(),
        gave_up_set: HashSet::new(),
        tele,
    };
    let mut monitor = MspMonitor::new();
    let mut msp_ids: Vec<NodeId> = Vec::new();

    // levelwise frontier: a node is asked only when all its materialized
    // parents are significant
    let mut queue: Vec<NodeId> = dag.roots().to_vec();
    let mut queued: HashSet<NodeId> = queue.iter().copied().collect();
    let mut qi = 0;
    // consecutive re-queues without an ask; once every pending node has
    // been re-queued with no progress (a gave-up parent stays Unknown
    // forever) the frontier is stuck and the run degrades gracefully
    let mut stalled = 0usize;
    while qi < queue.len() {
        if s.exhausted() {
            break;
        }
        let id = queue[qi];
        qi += 1;
        let class = match s.cls.class(dag, id) {
            Class::Unknown => {
                let parents_ok = dag
                    .parents(id)
                    .all(|p| s.cls.class(dag, p) == Class::Significant);
                if !parents_ok {
                    // re-queue: a later classification may unlock it
                    if s.cls.class(dag, id) == Class::Unknown {
                        stalled += 1;
                        if stalled > queue.len() - qi {
                            break;
                        }
                        queue.push(id);
                    }
                    continue;
                }
                if s.gave_up_set.contains(&id) {
                    // the retry policy already gave up on this node
                    continue;
                }
                stalled = 0;
                let sig = s.ask_concrete(dag, crowd, member, id);
                let known = msp_ids.len();
                monitor.update(dag, &mut s.cls, s.questions, &mut s.events, &mut msp_ids);
                // PANIC-OK: `known` was msp_ids.len() before the update;
                // the monitor only appends, so the range is in bounds.
                // PANIC-OK: `known` was msp_ids.len() before the update; the
                // monitor only appends, so the range is in bounds.
                // PANIC-OK: `known` was msp_ids.len() before the update; the monitor
                // only appends, so the range is in bounds.
                s.ops
                    .record_msps(s.questions, member, dag, &msp_ids[known..]);
                if sig {
                    Class::Significant
                } else {
                    Class::Insignificant
                }
            }
            c => {
                stalled = 0;
                c
            }
        };
        if class == Class::Significant {
            for c in dag.children(id) {
                if queued.insert(c) {
                    queue.push(c);
                }
            }
        }
    }
    // final sweep for entailed MSPs
    let known = msp_ids.len();
    monitor.update(dag, &mut s.cls, s.questions, &mut s.events, &mut msp_ids);
    // PANIC-OK: `known` was msp_ids.len() before the update; the monitor
    // only appends, so the range is in bounds.
    s.ops
        .record_msps(s.questions, member, dag, &msp_ids[known..]);
    let complete = s.available
        && !s.exhausted_budget()
        && crate::vertical::find_minimal_unclassified(dag, &mut s.cls, &cfg.pool, &HashSet::new())
            .is_none();
    finish(dag, s, msp_ids, complete)
}

/// Runs the naive baseline: random order over the **valid** assignments of
/// a pre-materialized DAG, with inference.
pub fn run_naive<C: CrowdSource>(
    dag: &mut Dag<'_>,
    crowd: &mut C,
    member: MemberId,
    cfg: &MiningConfig,
) -> MiningOutcome {
    let threshold = cfg.threshold.unwrap_or(dag.query().threshold);
    let root = cfg.telemetry.span("mine.naive");
    let tele = root.tele().clone();
    let mut s = Session {
        cls: Classifier::new(),
        rng: StdRng::seed_from_u64(cfg.seed),
        questions: 0,
        events: Vec::new(),
        ops: crate::oplog::OpLog::new(threshold, false),
        tracker: ValidTracker::new(dag).with_telemetry(tele.clone()),
        available: true,
        threshold,
        cfg,
        manifest: Default::default(),
        gave_up: Vec::new(),
        gave_up_set: HashSet::new(),
        tele,
    };
    let mut monitor = MspMonitor::new();
    let mut msp_ids: Vec<NodeId> = Vec::new();

    let mut order: Vec<NodeId> = dag.node_ids().filter(|&i| dag.node(i).valid).collect();
    order.shuffle(&mut s.rng);
    for id in order {
        if s.exhausted() {
            break;
        }
        if s.cls.class(dag, id) != Class::Unknown {
            continue;
        }
        s.ask_concrete(dag, crowd, member, id);
        let known = msp_ids.len();
        monitor.update(dag, &mut s.cls, s.questions, &mut s.events, &mut msp_ids);
        // PANIC-OK: `known` was msp_ids.len() before the update; the
        // monitor only appends, so the range is in bounds.
        // PANIC-OK: `known` was msp_ids.len() before the update; the monitor
        // only appends, so the range is in bounds.
        s.ops
            .record_msps(s.questions, member, dag, &msp_ids[known..]);
    }
    // classify leftover non-valid nodes so the MSP sweep can conclude:
    // the naive algorithm only *asks* valid assignments, but entailment
    // over the expanded DAG still applies.
    let known = msp_ids.len();
    monitor.update(dag, &mut s.cls, s.questions, &mut s.events, &mut msp_ids);
    // PANIC-OK: `known` was msp_ids.len() before the update; the monitor
    // only appends, so the range is in bounds.
    s.ops
        .record_msps(s.questions, member, dag, &msp_ids[known..]);
    let all_resolved = {
        let view = dag.view();
        s.gave_up
            .iter()
            .all(|&id| s.cls.class_frozen(&view, id) != Class::Unknown)
    };
    let complete = s.available && !s.exhausted_budget() && all_resolved;
    finish(dag, s, msp_ids, complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
    use crate::vertical::run_vertical;
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};

    struct Setup {
        ont: ontology::Ontology,
        query: String,
    }

    fn setup(width: usize, depth: usize) -> Setup {
        let d = synthetic_domain(width, depth, 0);
        Setup {
            ont: d.ontology,
            query: d.query,
        }
    }

    fn msp_names(
        out: &MiningOutcome,
        b: &oassis_ql::BoundQuery,
        ont: &ontology::Ontology,
    ) -> HashSet<String> {
        out.msps
            .iter()
            .map(|m| m.apply(b).to_display(ont.vocab()))
            .collect()
    }

    #[test]
    fn all_three_algorithms_agree_on_msps() {
        let su = setup(100, 5);
        let q = parse(&su.query).unwrap();
        let b = bind(&q, &su.ont).unwrap();
        let base = evaluate_where(&b, &su.ont, MatchMode::Exact);
        let mut full = Dag::new(&b, su.ont.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 8, true, MspDistribution::Uniform, 11);
        let patterns: Vec<_> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();
        let cfg = MiningConfig::default();

        let run = |which: &str| {
            let mut dag = Dag::new(&b, su.ont.vocab(), &base).without_multiplicities();
            let mut oracle = PlantedOracle::new(su.ont.vocab(), patterns.clone(), 1, 0);
            let out = match which {
                "vertical" => run_vertical(&mut dag, &mut oracle, MemberId(0), &cfg),
                "horizontal" => {
                    dag.materialize_all();
                    run_horizontal(&mut dag, &mut oracle, MemberId(0), &cfg)
                }
                _ => {
                    dag.materialize_all();
                    run_naive(&mut dag, &mut oracle, MemberId(0), &cfg)
                }
            };
            (msp_names(&out, &b, &su.ont), out.questions)
        };
        let (v_msps, v_q) = run("vertical");
        let (h_msps, _h_q) = run("horizontal");
        let (n_msps, n_q) = run("naive");
        assert_eq!(v_msps, h_msps);
        assert_eq!(v_msps, n_msps);
        assert_eq!(v_msps.len(), 8);
        // vertical beats naive on question count at low MSP density
        assert!(v_q < n_q, "vertical {v_q} vs naive {n_q}");
    }

    #[test]
    fn horizontal_asks_predecessors_first() {
        // With a single planted deep MSP, horizontal asks at least as many
        // questions as vertical (it verifies every level fully).
        let su = setup(120, 6);
        let q = parse(&su.query).unwrap();
        let b = bind(&q, &su.ont).unwrap();
        let base = evaluate_where(&b, &su.ont, MatchMode::Exact);
        let mut full = Dag::new(&b, su.ont.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 2, true, MspDistribution::Uniform, 3);
        let patterns: Vec<_> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();
        let cfg = MiningConfig::default();

        let mut dagv = Dag::new(&b, su.ont.vocab(), &base).without_multiplicities();
        let mut ov = PlantedOracle::new(su.ont.vocab(), patterns.clone(), 1, 0);
        let out_v = run_vertical(&mut dagv, &mut ov, MemberId(0), &cfg);

        let mut dagh = Dag::new(&b, su.ont.vocab(), &base).without_multiplicities();
        dagh.materialize_all();
        let mut oh = PlantedOracle::new(su.ont.vocab(), patterns.clone(), 1, 0);
        let out_h = run_horizontal(&mut dagh, &mut oh, MemberId(0), &cfg);

        assert_eq!(
            msp_names(&out_v, &b, &su.ont),
            msp_names(&out_h, &b, &su.ont)
        );
        assert!(
            out_v.questions <= out_h.questions + 2,
            "vertical {} vs horizontal {}",
            out_v.questions,
            out_h.questions
        );
    }

    #[test]
    fn baseline_count_is_five_per_valid() {
        let su = setup(60, 4);
        let q = parse(&su.query).unwrap();
        let b = bind(&q, &su.ont).unwrap();
        let base = evaluate_where(&b, &su.ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, su.ont.vocab(), &base).without_multiplicities();
        let n = dag.materialize_all();
        assert_eq!(baseline_question_count(&mut dag, 5), n * 5); // all valid here
    }

    #[test]
    fn naive_respects_question_budget() {
        let su = setup(100, 5);
        let q = parse(&su.query).unwrap();
        let b = bind(&q, &su.ont).unwrap();
        let base = evaluate_where(&b, &su.ont, MatchMode::Exact);
        let mut full = Dag::new(&b, su.ont.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 4, true, MspDistribution::Uniform, 1);
        let patterns: Vec<_> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();
        let mut dag = Dag::new(&b, su.ont.vocab(), &base).without_multiplicities();
        dag.materialize_all();
        let mut oracle = PlantedOracle::new(su.ont.vocab(), patterns, 1, 0);
        let cfg = MiningConfig {
            max_questions: Some(7),
            ..Default::default()
        };
        let out = run_naive(&mut dag, &mut oracle, MemberId(0), &cfg);
        assert!(out.questions <= 7);
        assert!(!out.complete || out.msps.len() <= 4);
    }
}
