//! Association-rule mining over the assignment DAG — the `IMPLYING … AND
//! CONFIDENCE` extension of OASSIS-QL (the paper's language guide mentions
//! rule mining; Section 8 lists it among the features "described in the
//! language guide").
//!
//! A rule query mines assignments φ whose *full* pattern
//! `φ(A_SAT ∪ A_IMP ∪ MORE)` has average support ≥ Θ **and** whose
//! confidence `supp(full) / supp(body)` is ≥ the confidence threshold,
//! where the *body* is `φ(A_SAT ∪ MORE)`.
//!
//! Support is antitone in the assignment order (Observation 4.4), so the
//! support dimension is classified exactly like the vertical algorithm.
//! Confidence, however, is **not** monotone — a rule can gain or lose
//! confidence under specialization — so it must be evaluated pointwise on
//! every support-significant assignment. The algorithm therefore runs in
//! two phases:
//!
//! 1. classify full-pattern support top-down with inference (questions ≈
//!    the vertical algorithm's);
//! 2. sweep the support-significant region, asking each member panel for
//!    the body support, and report the *maximal rule-significant*
//!    assignments (no rule-significant successor).

use crate::assignment::Assignment;
use crate::classify::{Class, Classifier};
use crate::dag::{Dag, NodeId};
use crowd::{Answer, CrowdSource, MemberId, Question};
use oassis_ql::QlError;
use ontology::PatternSet;
use std::collections::{HashMap, HashSet, VecDeque};

/// Configuration for rule mining.
#[derive(Debug, Clone)]
pub struct RuleMiningConfig {
    /// Support threshold override (`None` = the query's `WITH SUPPORT`).
    pub support: Option<f64>,
    /// Confidence threshold override (`None` = the query's
    /// `AND CONFIDENCE`).
    pub confidence: Option<f64>,
    /// Members asked per pattern; their reported supports are averaged
    /// (a panel stand-in for the full multi-user machinery).
    pub panel_size: usize,
    /// Question budget (`None` = run to completion).
    pub max_questions: Option<usize>,
}

impl Default for RuleMiningConfig {
    fn default() -> Self {
        RuleMiningConfig {
            support: None,
            confidence: None,
            panel_size: 5,
            max_questions: None,
        }
    }
}

/// One mined rule: a maximal rule-significant assignment.
#[derive(Debug, Clone)]
pub struct MinedRule {
    /// The assignment.
    pub assignment: Assignment,
    /// The rule body `φ(A_SAT ∪ MORE)`.
    pub body: PatternSet,
    /// The rule head `φ(A_IMP)`.
    pub head: PatternSet,
    /// Average support of body ∪ head.
    pub support: f64,
    /// `supp(body ∪ head) / supp(body)`.
    pub confidence: f64,
    /// Whether the assignment is valid w.r.t. the WHERE clause.
    pub valid: bool,
}

/// Outcome of a rule-mining run.
#[derive(Debug)]
pub struct RuleOutcome {
    /// Maximal rule-significant assignments, valid ones first.
    pub rules: Vec<MinedRule>,
    /// Questions answered by the crowd (both phases).
    pub questions: usize,
    /// Whether the run classified everything.
    pub complete: bool,
    /// Nodes materialized.
    pub nodes_materialized: usize,
}

/// Runs rule mining on a bound rule query (one with an `IMPLYING` clause).
pub fn run_rules<C: CrowdSource>(
    dag: &mut Dag<'_>,
    crowd: &mut C,
    cfg: &RuleMiningConfig,
) -> Result<RuleOutcome, QlError> {
    let q = dag.query();
    if q.imp_meta.is_empty() {
        return Err(QlError::Invalid(
            "run_rules requires an IMPLYING clause".into(),
        ));
    }
    let theta = cfg.support.unwrap_or(q.threshold);
    let conf_theta = cfg
        .confidence
        .or(q.confidence)
        .ok_or_else(|| QlError::Invalid("rule query lacks a confidence threshold".into()))?;

    let members = crowd.members();
    if members.is_empty() {
        return Err(QlError::Invalid(
            "rule mining needs at least one crowd member".into(),
        ));
    }
    let panel: Vec<MemberId> = members.into_iter().take(cfg.panel_size.max(1)).collect();
    // rule mining is panel-bounded and never the throughput bottleneck;
    // keep its minimality checks on the sequential path
    let pool = minipool::Pool::sequential();

    let mut state = RuleState {
        cls: Classifier::new(),
        questions: 0,
        budget: cfg.max_questions,
        support_cache: HashMap::new(),
        exhausted: false,
    };

    // ---- phase 1: classify full-pattern support, vertical-style ----
    loop {
        if state.out_of_budget() {
            break;
        }
        let Some(mut phi) = crate::vertical::find_minimal_unclassified(
            dag,
            &mut state.cls,
            &pool,
            &std::collections::HashSet::new(),
        ) else {
            break;
        };
        if !state.ask_support(dag, crowd, &panel, phi, theta) {
            continue;
        }
        loop {
            if state.out_of_budget() {
                break;
            }
            let children = dag.children(phi);
            if let Some(&c) = children
                .iter()
                .find(|&&c| state.cls.class(dag, c) == Class::Significant)
            {
                phi = c;
                continue;
            }
            let next = children
                .iter()
                .copied()
                .find(|&c| state.cls.class(dag, c) == Class::Unknown);
            match next {
                None => break,
                Some(c) => {
                    if state.ask_support(dag, crowd, &panel, c, theta) {
                        phi = c;
                    }
                }
            }
        }
    }
    let complete = !state.out_of_budget()
        && crate::vertical::find_minimal_unclassified(
            dag,
            &mut state.cls,
            &pool,
            &std::collections::HashSet::new(),
        )
        .is_none();

    // ---- phase 2: confidence sweep over the support-significant region ----
    let mut sig_nodes: Vec<NodeId> = Vec::new();
    {
        let mut queue: VecDeque<NodeId> = dag.roots().iter().copied().collect();
        let mut seen: HashSet<NodeId> = queue.iter().copied().collect();
        while let Some(id) = queue.pop_front() {
            if state.cls.class(dag, id) != Class::Significant {
                continue;
            }
            sig_nodes.push(id);
            for c in dag.children(id) {
                if seen.insert(c) {
                    queue.push_back(c);
                }
            }
        }
    }

    let mut rule_sig: HashMap<NodeId, (f64, f64)> = HashMap::new(); // supp, conf
    for &id in &sig_nodes {
        if state.out_of_budget() {
            break;
        }
        let full = dag.node(id).assignment.apply(dag.query());
        let body = dag.node(id).assignment.apply_body(dag.query());
        let supp_full = state.avg_support(crowd, &panel, &full);
        let supp_body = state.avg_support(crowd, &panel, &body);
        let conf = if supp_body > 0.0 {
            supp_full / supp_body
        } else {
            0.0
        };
        if supp_full >= theta && conf >= conf_theta {
            rule_sig.insert(id, (supp_full, conf.min(1.0)));
        }
    }

    // maximal rule-significant: no rule-significant child
    let mut rules: Vec<MinedRule> = rule_sig
        .iter()
        .filter(|(&id, _)| {
            dag.children_if_generated(id)
                .unwrap_or(&[])
                .iter()
                .all(|c| !rule_sig.contains_key(c))
        })
        .map(|(&id, &(support, confidence))| {
            let a = dag.node(id).assignment.clone();
            MinedRule {
                body: a.apply_body(dag.query()),
                head: a.apply_head(dag.query()),
                support,
                confidence,
                valid: dag.node(id).valid,
                assignment: a,
            }
        })
        .collect();
    rules.sort_by(|a, b| {
        b.valid
            .cmp(&a.valid)
            .then(
                b.support
                    .partial_cmp(&a.support)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then_with(|| a.assignment.cmp(&b.assignment))
    });

    Ok(RuleOutcome {
        rules,
        questions: state.questions,
        complete: complete && !state.exhausted,
        nodes_materialized: dag.len(),
    })
}

struct RuleState {
    cls: Classifier,
    questions: usize,
    budget: Option<usize>,
    /// Per (pattern) panel-average support, so phase 2 re-uses phase-1
    /// answers instead of re-asking.
    support_cache: HashMap<PatternSet, f64>,
    exhausted: bool,
}

impl RuleState {
    fn out_of_budget(&self) -> bool {
        self.exhausted || self.budget.is_some_and(|b| self.questions >= b)
    }

    /// Panel-average support of a pattern (cached).
    fn avg_support<C: CrowdSource>(
        &mut self,
        crowd: &mut C,
        panel: &[MemberId],
        pattern: &PatternSet,
    ) -> f64 {
        if let Some(&s) = self.support_cache.get(pattern) {
            return s;
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for &m in panel {
            match crowd.ask(
                m,
                &Question::Concrete {
                    pattern: pattern.clone(),
                },
            ) {
                Answer::Support { support, .. } => {
                    self.questions += 1;
                    sum += support;
                    n += 1;
                }
                Answer::Irrelevant { .. } => {
                    self.questions += 1;
                    n += 1; // counts as support 0
                }
                Answer::Unavailable => {
                    self.exhausted = true;
                }
                // stalled member: skip their sample, average the rest
                Answer::NoResponse => {}
                _ => unreachable!("non-concrete answer to a concrete question"),
            }
        }
        let avg = if n == 0 { 0.0 } else { sum / n as f64 };
        self.support_cache.insert(pattern.clone(), avg);
        avg
    }

    /// Asks the panel about the node's full pattern and classifies it.
    fn ask_support<C: CrowdSource>(
        &mut self,
        dag: &mut Dag<'_>,
        crowd: &mut C,
        panel: &[MemberId],
        id: NodeId,
        theta: f64,
    ) -> bool {
        let pattern = dag.node(id).assignment.apply(dag.query());
        let avg = self.avg_support(crowd, panel, &pattern);
        let sig = avg >= theta;
        if sig {
            self.cls.mark_significant(dag, id);
        } else {
            self.cls.mark_insignificant(dag, id);
        }
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd::{AnswerModel, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember};
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};
    use ontology::domains::figure1;

    /// Rule query on the running example: "when people do an activity at a
    /// child-friendly NYC attraction, do they also eat at a nearby
    /// restaurant?"
    const RULE_QUERY: &str = r#"
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity.
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y doAt $x
IMPLYING
  [] eatAt $z
WITH SUPPORT = 0.3 AND CONFIDENCE = 0.75
"#;

    fn u_avg(ont: &ontology::Ontology) -> SimulatedMember {
        let [d1, d2] = figure1::personal_dbs(ont);
        let mut tx = d1;
        for _ in 0..3 {
            tx.extend(d2.iter().cloned());
        }
        SimulatedMember::new(
            PersonalDb::from_transactions(tx),
            MemberBehavior::default(),
            AnswerModel::Exact,
            0,
        )
    }

    #[test]
    fn mines_rules_on_the_running_example() {
        let ont = figure1::ontology();
        let q = parse(RULE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        assert_eq!(b.imp_meta.len(), 1);
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont)]);
        let cfg = RuleMiningConfig {
            panel_size: 1,
            ..Default::default()
        };
        let out = run_rules(&mut dag, &mut crowd, &cfg).unwrap();
        assert!(out.complete);
        assert!(!out.rules.is_empty());
        let v = ont.vocab();
        // Feed a Monkey @ Bronx Zoo ⇒ eat at Pine: supp(full) = avg(2/6,1/2)
        // = 5/12 ≥ 0.3; supp(body) = avg(3/6, 1/2) = 1/2; conf = 5/6 ≥ 0.75.
        let monkey = out.rules.iter().find(|r| {
            r.body
                .to_display(v)
                .contains("Feed a Monkey doAt Bronx Zoo")
        });
        let monkey = monkey.expect("monkey rule found");
        assert!(monkey.head.to_display(v).contains("eatAt Pine"));
        assert!(
            (monkey.confidence - 5.0 / 6.0).abs() < 1e-9,
            "{}",
            monkey.confidence
        );
        assert!((monkey.support - 5.0 / 12.0).abs() < 1e-9);
        // Every reported rule clears both thresholds.
        for r in &out.rules {
            assert!(r.support >= 0.3);
            assert!(r.confidence >= 0.75);
        }
    }

    #[test]
    fn confidence_threshold_filters_rules() {
        // With CONFIDENCE = 1.0 only always-co-occurring rules survive.
        let ont = figure1::ontology();
        let strict = RULE_QUERY.replace("CONFIDENCE = 0.75", "CONFIDENCE = 1");
        let q = parse(&strict).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont)]);
        let cfg = RuleMiningConfig {
            panel_size: 1,
            ..Default::default()
        };
        let out = run_rules(&mut dag, &mut crowd, &cfg).unwrap();
        for r in &out.rules {
            assert!(r.confidence >= 1.0 - 1e-9);
        }
        // Biking@CP ⇒ eat@Maoz has confidence 1 for u_avg: body supp
        // avg(2/6, 1/2) = 5/12, full supp 5/12.
        let v = ont.vocab();
        assert!(
            out.rules
                .iter()
                .any(|r| r.body.to_display(v).contains("Biking doAt Central Park")),
            "{:?}",
            out.rules
                .iter()
                .map(|r| r.body.to_display(v))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn phase_one_reuses_answers_in_phase_two() {
        let ont = figure1::ontology();
        let q = parse(RULE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont)]);
        let cfg = RuleMiningConfig {
            panel_size: 1,
            ..Default::default()
        };
        let out = run_rules(&mut dag, &mut crowd, &cfg).unwrap();
        // crowd-level question count equals the engine's (no re-asks for
        // cached patterns)
        assert_eq!(out.questions, crowd.questions_asked());
    }

    #[test]
    fn non_rule_query_is_rejected() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont)]);
        assert!(run_rules(&mut dag, &mut crowd, &RuleMiningConfig::default()).is_err());
    }

    #[test]
    fn budget_stops_rule_mining() {
        let ont = figure1::ontology();
        let q = parse(RULE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont)]);
        let cfg = RuleMiningConfig {
            panel_size: 1,
            max_questions: Some(5),
            ..Default::default()
        };
        let out = run_rules(&mut dag, &mut crowd, &cfg).unwrap();
        assert!(!out.complete);
        assert!(out.questions <= 6); // one panel round may finish in flight
    }
}
