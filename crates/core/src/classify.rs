//! Classification of assignments with inference (Observation 4.4).
//!
//! "If φ ≤ φ' then if φ' is significant, so must be φ." A single crowd
//! answer therefore classifies a whole cone: a significant answer at `w`
//! classifies every `φ ≤ w` significant; an insignificant answer at `w`
//! classifies every `φ ≥ w` insignificant. The classifier stores the
//! answered nodes as *witnesses* and resolves other nodes (including ones
//! materialized later) by order comparison, caching definite results.
//!
//! User-guided pruning (Section 6.2) is a second inference channel: a
//! member clicking element `e` as irrelevant classifies every assignment
//! containing a value (or MORE-fact component) that specializes `e` as
//! insignificant.

use crate::assignment::Assignment;
use crate::dag::{Dag, NodeId};
use oassis_ql::Value;
use ontology::{ElemId, Vocabulary};
use std::collections::HashMap;

/// Classification state of an assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Not yet known.
    Unknown,
    /// Average crowd support ≥ Θ.
    Significant,
    /// Average crowd support < Θ.
    Insignificant,
}

/// A witness-based classifier over (a view of) the assignment DAG.
///
/// The same type serves as the *global* classifier of the multi-user
/// engine and as each member's *personal* exclusion record.
#[derive(Debug, Default)]
pub struct Classifier {
    sig_witnesses: Vec<NodeId>,
    insig_witnesses: Vec<NodeId>,
    pruned_elems: Vec<ElemId>,
    cache: HashMap<NodeId, Class>,
}

impl Classifier {
    /// A classifier with no knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `id` (answered) significant; classifies all its
    /// generalizations by inference.
    pub fn mark_significant(&mut self, id: NodeId) {
        self.sig_witnesses.push(id);
        self.cache.insert(id, Class::Significant);
    }

    /// Marks `id` (answered) insignificant; classifies all its
    /// specializations by inference.
    pub fn mark_insignificant(&mut self, id: NodeId) {
        self.insig_witnesses.push(id);
        self.cache.insert(id, Class::Insignificant);
    }

    /// Records a user-guided pruning click on element `e`.
    pub fn prune_elem(&mut self, e: ElemId) {
        self.pruned_elems.push(e);
        // cached Unknowns may now be insignificant
        self.cache.retain(|_, c| *c != Class::Unknown);
    }

    /// Number of direct decisions recorded (significant + insignificant
    /// witnesses) — a cheap change counter.
    pub fn decisions(&self) -> usize {
        self.sig_witnesses.len() + self.insig_witnesses.len()
    }

    /// The nodes directly answered significant.
    pub fn sig_witnesses(&self) -> &[NodeId] {
        &self.sig_witnesses
    }

    /// The nodes directly answered insignificant.
    pub fn insig_witnesses(&self) -> &[NodeId] {
        &self.insig_witnesses
    }

    /// Classifies `id`, using witnesses and pruning records.
    pub fn class(&mut self, dag: &Dag<'_>, id: NodeId) -> Class {
        if let Some(&c) = self.cache.get(&id) {
            if c != Class::Unknown {
                return c;
            }
        }
        let c = self.compute(dag, id);
        if c != Class::Unknown {
            self.cache.insert(id, c);
        }
        c
    }

    fn compute(&self, dag: &Dag<'_>, id: NodeId) -> Class {
        let a = &dag.node(id).assignment;
        let vocab = dag.vocab();
        if self.pruned_matches(vocab, a) {
            return Class::Insignificant;
        }
        for &w in &self.sig_witnesses {
            if a.leq(vocab, &dag.node(w).assignment) {
                return Class::Significant;
            }
        }
        for &w in &self.insig_witnesses {
            if dag.node(w).assignment.leq(vocab, a) {
                return Class::Insignificant;
            }
        }
        Class::Unknown
    }

    /// Whether the assignment involves a pruned element or a
    /// specialization of one.
    fn pruned_matches(&self, vocab: &Vocabulary, a: &Assignment) -> bool {
        if self.pruned_elems.is_empty() {
            return false;
        }
        let elem_hit = |e: ElemId| self.pruned_elems.iter().any(|&p| vocab.elem_leq(p, e));
        for si in 0..a.num_slots() {
            for &v in a.slot(crate::assignment::Slot(si as u16)) {
                if let Value::Elem(e) = v {
                    if elem_hit(e) {
                        return true;
                    }
                }
            }
        }
        a.more().iter().any(|f| elem_hit(f.subject) || elem_hit(f.object))
    }

    /// Whether `id` is classified (not [`Class::Unknown`]).
    pub fn is_classified(&mut self, dag: &Dag<'_>, id: NodeId) -> bool {
        self.class(dag, id) != Class::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_ql::{bind, evaluate_where, parse, BoundQuery, MatchMode};
    use ontology::domains::figure1;

    fn setup() -> (ontology::Ontology, BoundQuery) {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        (ont, b)
    }

    fn node(dag: &mut Dag, ont: &ontology::Ontology, x: &str, y: &str) -> NodeId {
        let v = ont.vocab();
        dag.intern(Assignment::new(
            v,
            vec![
                vec![Value::Elem(v.elem_id(x).unwrap())],
                vec![Value::Elem(v.elem_id(y).unwrap())],
            ],
            vec![],
        ))
    }

    #[test]
    fn significant_witness_classifies_generalizations() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let specific = node(&mut dag, &ont, "Central Park", "Basketball");
        let general = node(&mut dag, &ont, "Park", "Sport");
        let sibling = node(&mut dag, &ont, "Central Park", "Biking");
        cls.mark_significant(specific);
        assert_eq!(cls.class(&dag, general), Class::Significant);
        assert_eq!(cls.class(&dag, sibling), Class::Unknown);
    }

    #[test]
    fn insignificant_witness_classifies_specializations() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let general = node(&mut dag, &ont, "Central Park", "Ball Game");
        let specific = node(&mut dag, &ont, "Central Park", "Basketball");
        let other = node(&mut dag, &ont, "Central Park", "Biking");
        cls.mark_insignificant(general);
        assert_eq!(cls.class(&dag, specific), Class::Insignificant);
        assert_eq!(cls.class(&dag, other), Class::Unknown);
    }

    #[test]
    fn pruning_kills_the_element_cone() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let ball = node(&mut dag, &ont, "Central Park", "Ball Game");
        let basket = node(&mut dag, &ont, "Central Park", "Basketball");
        let biking = node(&mut dag, &ont, "Bronx Zoo", "Biking");
        // probe first so Unknown is computed (and must not stick)
        assert_eq!(cls.class(&dag, basket), Class::Unknown);
        cls.prune_elem(ont.vocab().elem_id("Ball Game").unwrap());
        assert_eq!(cls.class(&dag, ball), Class::Insignificant);
        assert_eq!(cls.class(&dag, basket), Class::Insignificant);
        assert_eq!(cls.class(&dag, biking), Class::Unknown);
    }

    #[test]
    fn later_materialized_nodes_are_classified() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let w = node(&mut dag, &ont, "Central Park", "Sport");
        cls.mark_significant(w);
        // materialize a more general node afterwards
        let g = node(&mut dag, &ont, "Outdoor", "Activity");
        assert_eq!(cls.class(&dag, g), Class::Significant);
    }

    #[test]
    fn witnesses_classify_themselves() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let n = node(&mut dag, &ont, "Central Park", "Biking");
        assert!(!cls.is_classified(&dag, n));
        cls.mark_significant(n);
        assert_eq!(cls.class(&dag, n), Class::Significant);
    }
}
