//! Classification of assignments with inference (Observation 4.4).
//!
//! "If φ ≤ φ' then if φ' is significant, so must be φ." A single crowd
//! answer therefore classifies a whole cone: a significant answer at `w`
//! classifies every `φ ≤ w` significant; an insignificant answer at `w`
//! classifies every `φ ≥ w` insignificant. The classifier stores the
//! answered nodes as *witnesses* and resolves other nodes (including ones
//! materialized later) by order comparison.
//!
//! User-guided pruning (Section 6.2) is a second inference channel: a
//! member clicking element `e` as irrelevant classifies every assignment
//! containing a value (or MORE-fact component) that specializes `e` as
//! insignificant.
//!
//! Lookups used to be linear scans over the witness lists. They are now
//! near-O(1) through two index structures over the DAG's closure
//! fingerprints plus eager cone propagation:
//!
//! * every `mark_significant` walks the materialized *parent* edges
//!   upward and stamps the generalization cone [`Cached::DerivedSig`];
//!   `mark_insignificant` walks generated *child* edges downward and
//!   stamps [`Cached::DerivedInsig`] — queries on stamped nodes skip the
//!   witness search entirely;
//! * nodes that materialize later (or are unreachable along materialized
//!   edges) fall back to value-keyed inverted indexes: a significant
//!   witness `w` is posted under every bit of its fingerprint `F(w)`, so
//!   a query at `a` only verifies the (shortest) posting list of one of
//!   `a`'s own value bits — a necessary condition for `F(a) ⊆ F(w)`; an
//!   insignificant witness is posted under its first value bit, which
//!   `F(a)` must contain for `w ≤ a` to hold;
//! * pruning clicks accumulate in a bitset over element ids, turning the
//!   pruned-cone test into one word-AND per slot against the elem region
//!   of the node's fingerprint.
//!
//! The observable results are **identical** to the historical scan-based
//! classifier (which survives as [`Classifier::class_by_scan`] and backs
//! a `debug_assert` on every fresh lookup): the first `class()` query on
//! a node decides pruned → significant → insignificant in that order
//! with the knowledge available *at query time*, and that decision is
//! cached permanently — later contradictory answers or pruning clicks
//! never flip an already-queried node, exactly as before. The earlier
//! `cache.retain(|_, c| *c != Class::Unknown)` in `prune_elem` was dead
//! code (Unknown results were never cached) and has been removed.

use crate::assignment::{Assignment, Slot};
use crate::dag::{Dag, DagView, NodeId};
use oassis_ql::Value;
use ontology::{ElemId, Vocabulary};

/// Classification state of an assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Not yet known.
    Unknown,
    /// Average crowd support ≥ Θ.
    Significant,
    /// Average crowd support < Θ.
    Insignificant,
}

/// Per-node cached classification knowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cached {
    /// Queried (or directly answered): the definite, sticky result.
    Queried(Class),
    /// In the generalization cone of a significant witness; the first
    /// query still re-checks pruning (pruned wins, as in the scan order).
    DerivedSig,
    /// In the specialization cone of an insignificant witness; the first
    /// query still re-checks pruning and significant witnesses (both take
    /// precedence in the scan order).
    DerivedInsig,
}

/// A witness-based classifier over (a view of) the assignment DAG.
///
/// The same type serves as the *global* classifier of the multi-user
/// engine and as each member's *personal* exclusion record.
#[derive(Debug, Default)]
pub struct Classifier {
    sig_witnesses: Vec<NodeId>,
    insig_witnesses: Vec<NodeId>,
    pruned_elems: Vec<ElemId>,
    /// Dense per-node cache, grown on demand.
    cache: Vec<Option<Cached>>,
    /// Bitset over [`ElemId`]s of pruning clicks.
    pruned_words: Vec<u64>,
    /// Significant witnesses posted under every set bit of their
    /// fingerprint (dense over global fingerprint bits).
    sig_postings: Vec<Vec<NodeId>>,
    /// Insignificant witnesses posted under their first value bit.
    insig_postings: Vec<Vec<NodeId>>,
    /// Presence bitset over posting bits: bit `b` set iff
    /// `insig_postings[b]` is non-empty. Word-aligned with the fingerprint
    /// layout, so [`Self::insig_hit`] AND-masks whole words of `F(id)`
    /// against it instead of enumerating every set bit.
    insig_bits: Vec<u64>,
    /// Insignificant witnesses with no slot values (≤-bottom elements).
    insig_bottom: Vec<NodeId>,
    /// BFS visit stamps (one generation per propagation).
    visit_mark: Vec<u32>,
    visit_gen: u32,
    /// Scratch queue for propagation.
    queue: Vec<NodeId>,
    /// [`Self::class`] calls answered straight from the sticky cache.
    cache_hits: u64,
    /// [`Self::class`] calls that had to consult witnesses/pruning.
    cache_misses: u64,
    /// Knowledge epoch: bumped by every witness or pruning addition. An
    /// un-stamped node's classification can only change when knowledge
    /// grows, so an `Unknown` computed at the current epoch is still
    /// `Unknown` — [`Self::class`] memoizes that in `unknown_at`.
    knowledge_epoch: u32,
    /// Per node: epoch at which [`Self::class`] last computed `Unknown`
    /// (`u32::MAX` = never).
    unknown_at: Vec<u32>,
    /// Per-fingerprint-word knowledge epochs: `word_epochs[wi]` is the
    /// epoch of the most recent witness or pruning click whose ≤-cone can
    /// involve fingerprint word `wi`. A memoized `Unknown` stays valid as
    /// long as no word of the node's own fingerprint was touched since —
    /// the *delta-cone* refinement of the global epoch test, so an answer
    /// only invalidates the memos it can actually flip.
    word_epochs: Vec<u32>,
    /// Epoch of the most recent knowledge addition the word index cannot
    /// localize: a witness with an empty fingerprint (a valueless
    /// ≤-bottom element can sit below *any* node). Invalidates every
    /// memo, like the historical global test.
    global_reach_epoch: u32,
    /// Skip eager cone propagation on `mark_*`. The derived stamps only
    /// accelerate lookups (the posting indexes compute the same values),
    /// so a classifier with few lookups per mark — a member's personal
    /// exclusion record — comes out ahead without the propagation walks.
    lazy: bool,
}

impl Classifier {
    /// A classifier with no knowledge.
    pub fn new() -> Self {
        Self::default()
    }

    /// A classifier that skips eager cone propagation — same observable
    /// results, tuned for many marks and few lookups (personal records).
    pub fn new_lazy() -> Self {
        Self {
            lazy: true,
            ..Self::default()
        }
    }

    fn ensure_node(&mut self, id: NodeId) {
        if id.index() >= self.cache.len() {
            self.cache.resize(id.index() + 1, None);
            self.visit_mark.resize(id.index() + 1, 0);
            self.unknown_at.resize(id.index() + 1, u32::MAX);
        }
    }

    fn ensure_postings(postings: &mut Vec<Vec<NodeId>>, bit: usize) {
        if bit >= postings.len() {
            postings.resize(bit + 1, Vec::new());
        }
    }

    /// Stamps the delta-cone epochs for a witness whose fingerprint is
    /// `words`: any node this witness can classify must share a nonzero
    /// fingerprint word with it (`F(a) ⊆ F(w)` or `F(w) ⊆ F(a)` both
    /// force word overlap), so only those words' memos need invalidating.
    /// A witness with no nonzero words can sit ≤-below anything —
    /// fall back to global invalidation.
    fn bump_word_epochs(&mut self, words: &[u64]) {
        if self.word_epochs.len() < words.len() {
            self.word_epochs.resize(words.len(), 0);
        }
        let mut any = false;
        for (wi, &w) in words.iter().enumerate() {
            if w != 0 {
                any = true;
                // PANIC-OK: the resize above sized word_epochs to
                // words.len().
                self.word_epochs[wi] = self.knowledge_epoch;
            }
        }
        if !any {
            self.global_reach_epoch = self.knowledge_epoch;
        }
    }

    /// Marks `id` (answered) significant; classifies all its
    /// generalizations by inference. Returns the size of the freshly
    /// stamped cone (the witness plus every node newly derived from it).
    pub fn mark_significant(&mut self, dag: &Dag<'_>, id: NodeId) -> usize {
        self.ensure_node(id);
        self.knowledge_epoch += 1;
        self.sig_witnesses.push(id);
        let words = dag.fp_words(id);
        for bit in crate::fingerprint::iter_bits(words) {
            Self::ensure_postings(&mut self.sig_postings, bit);
            // PANIC-OK: ensure_postings just resized past `bit`.
            self.sig_postings[bit].push(id);
        }
        self.bump_word_epochs(dag.fp_words(id));
        // PANIC-OK: ensure_node(id) at function entry sized the cache.
        self.cache[id.index()] = Some(Cached::Queried(Class::Significant));
        1 + self.propagate(dag, id, true)
    }

    /// Marks `id` (answered) insignificant; classifies all its
    /// specializations by inference. Returns the size of the freshly
    /// stamped cone (the witness plus every node newly derived from it).
    pub fn mark_insignificant(&mut self, dag: &Dag<'_>, id: NodeId) -> usize {
        self.ensure_node(id);
        self.knowledge_epoch += 1;
        self.insig_witnesses.push(id);
        match first_value_bit(dag, id) {
            Some(bit) => {
                Self::ensure_postings(&mut self.insig_postings, bit);
                // PANIC-OK: ensure_postings just resized past `bit`.
                self.insig_postings[bit].push(id);
                let wi = bit / 64;
                if wi >= self.insig_bits.len() {
                    self.insig_bits.resize(wi + 1, 0);
                }
                // PANIC-OK: the resize above guarantees `wi` is in bounds.
                self.insig_bits[wi] |= 1 << (bit % 64);
            }
            None => self.insig_bottom.push(id),
        }
        self.bump_word_epochs(dag.fp_words(id));
        // PANIC-OK: ensure_node(id) at function entry sized the cache.
        self.cache[id.index()] = Some(Cached::Queried(Class::Insignificant));
        1 + self.propagate(dag, id, false)
    }

    /// Stamps the cone of `id` along materialized edges: parent edges for
    /// a significant witness (generalizations), generated child edges for
    /// an insignificant one (specializations). Queried nodes keep their
    /// sticky result but the walk continues through them; a node already
    /// carrying the same derived stamp terminates the branch (its cone
    /// was stamped when it was). Returns the number of freshly stamped
    /// nodes.
    fn propagate(&mut self, dag: &Dag<'_>, start: NodeId, sig: bool) -> usize {
        if self.lazy {
            return 0;
        }
        let mut stamped = 0;
        let last = NodeId(dag.len().saturating_sub(1) as u32);
        self.ensure_node(last);
        self.visit_gen += 1;
        let gen = self.visit_gen;
        let mut queue = std::mem::take(&mut self.queue);
        queue.clear();
        let push_neighbors = |queue: &mut Vec<NodeId>, n: NodeId| {
            if sig {
                queue.extend(dag.parents(n));
            } else {
                queue.extend_from_slice(dag.children_if_generated(n).unwrap_or(&[]));
            }
        };
        push_neighbors(&mut queue, start);
        while let Some(n) = queue.pop() {
            // PANIC-OK: ensure_node(last) above sized visit_mark and
            // cache to dag.len(); every queued id is a node of this dag.
            if self.visit_mark[n.index()] == gen {
                continue;
            }
            // PANIC-OK: in bounds per the ensure_node(last) call above.
            self.visit_mark[n.index()] = gen;
            // PANIC-OK: in bounds per the ensure_node(last) call above.
            match self.cache[n.index()] {
                None => {
                    // PANIC-OK: in bounds per ensure_node(last) above.
                    self.cache[n.index()] = Some(if sig {
                        Cached::DerivedSig
                    } else {
                        Cached::DerivedInsig
                    });
                    stamped += 1;
                    push_neighbors(&mut queue, n);
                }
                Some(Cached::DerivedSig) if sig => {}
                Some(Cached::DerivedInsig) if !sig => {}
                Some(_) => push_neighbors(&mut queue, n),
            }
        }
        self.queue = queue;
        stamped
    }

    /// Records a user-guided pruning click on element `e`. The click's
    /// delta cone is every node whose fingerprint carries `e`'s bit in a
    /// slot's elem region, so only those words' `Unknown` memos are
    /// invalidated; nodes with MORE facts are matched against vocabulary
    /// rows instead and always recompute (see `unknown_memo_valid`).
    pub fn prune_elem(&mut self, dag: &Dag<'_>, e: ElemId) {
        self.knowledge_epoch += 1;
        self.pruned_elems.push(e);
        let wi = e.index() / 64;
        if wi >= self.pruned_words.len() {
            self.pruned_words.resize(wi + 1, 0);
        }
        // PANIC-OK: the resize above guarantees `wi` is in bounds.
        self.pruned_words[wi] |= 1 << (e.index() % 64);
        let space = dag.fp_space();
        if wi < space.elem_words() {
            let nwords = space.num_slots() * space.words_per_slot();
            if self.word_epochs.len() < nwords {
                self.word_epochs.resize(nwords, 0);
            }
            for si in 0..space.num_slots() {
                // PANIC-OK: the resize above covers every slot's region.
                self.word_epochs[si * space.words_per_slot() + wi] = self.knowledge_epoch;
            }
        }
    }

    /// Number of direct decisions recorded (significant + insignificant
    /// witnesses) — a cheap change counter.
    pub fn decisions(&self) -> usize {
        self.sig_witnesses.len() + self.insig_witnesses.len()
    }

    /// The nodes directly answered significant.
    pub fn sig_witnesses(&self) -> &[NodeId] {
        &self.sig_witnesses
    }

    /// The nodes directly answered insignificant.
    pub fn insig_witnesses(&self) -> &[NodeId] {
        &self.insig_witnesses
    }

    /// Number of user-guided pruning clicks recorded. The step-level
    /// monotonicity checker ([`crate::invariants`]) only runs on
    /// pruning-free classifiers, where the sticky first-query semantics
    /// cannot produce legitimate edge contradictions.
    pub fn pruned_clicks(&self) -> usize {
        self.pruned_elems.len()
    }

    /// Sticky-cache hit/miss totals over all [`Self::class`] calls, for
    /// the telemetry flush at the end of a run.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// Classifies `id`, using witnesses and pruning records.
    pub fn class(&mut self, dag: &Dag<'_>, id: NodeId) -> Class {
        self.ensure_node(id);
        // PANIC-OK: ensure_node(id) at function entry sized the cache.
        if matches!(self.cache[id.index()], Some(Cached::Queried(_))) {
            self.cache_hits += 1;
        } else {
            self.cache_misses += 1;
        }
        let c = self.class_frozen(&dag.view(), id);
        // Stickiness: the first query's verdict is cached permanently,
        // exactly as the historical classifier did. An Unknown result is
        // memoized against the current knowledge epoch instead — it stays
        // Unknown until the next witness or pruning click arrives.
        if c != Class::Unknown {
            // PANIC-OK: ensure_node(id) at function entry sized the cache.
            self.cache[id.index()] = Some(Cached::Queried(c));
        } else {
            // PANIC-OK: ensure_node(id) at function entry sized unknown_at.
            self.unknown_at[id.index()] = self.knowledge_epoch;
        }
        c
    }

    /// Fast path for hot pop-side filters: the sticky verdict if `id` was
    /// already queried, else `None` (meaning the caller must fall back to
    /// [`Self::class`]). A `Queried` entry is permanent, so this is
    /// value-identical to `class` whenever it returns `Some` — it only
    /// skips the hit/miss accounting and the view construction.
    #[inline]
    pub fn cached_queried(&self, id: NodeId) -> Option<Class> {
        match self.cache.get(id.index()).copied().flatten() {
            Some(Cached::Queried(c)) => Some(c),
            _ => None,
        }
    }

    /// Read-only classification: the value [`Self::class`] would return,
    /// without stamping the query cache. Because `class` is idempotent in
    /// value (the sticky cache only memoizes, never changes, the verdict
    /// reachable at query time), interleaving `class_frozen` and `class`
    /// calls observes identical results — which is what lets parallel
    /// sweeps share `&Classifier` across `minipool` workers.
    pub fn class_frozen(&self, dag: &DagView<'_>, id: NodeId) -> Class {
        match self.cache.get(id.index()).copied().flatten() {
            Some(Cached::Queried(c)) => c,
            Some(Cached::DerivedSig) => {
                let c = if self.pruned_matches_node(dag, id) {
                    Class::Insignificant
                } else {
                    Class::Significant
                };
                debug_assert_eq!(c, self.class_by_scan_view(dag, id));
                c
            }
            Some(Cached::DerivedInsig) => {
                let c = if self.pruned_matches_node(dag, id) {
                    Class::Insignificant
                } else if self.sig_hit(dag, id) {
                    Class::Significant
                } else {
                    Class::Insignificant
                };
                debug_assert_eq!(c, self.class_by_scan_view(dag, id));
                c
            }
            None => {
                if self.unknown_memo_valid(dag, id) {
                    debug_assert_eq!(Class::Unknown, self.class_by_scan_view(dag, id));
                    return Class::Unknown;
                }
                let c = if self.pruned_matches_node(dag, id) {
                    Class::Insignificant
                } else if self.sig_hit(dag, id) {
                    Class::Significant
                } else if self.insig_hit(dag, id) {
                    Class::Insignificant
                } else {
                    Class::Unknown
                };
                debug_assert_eq!(c, self.class_by_scan_view(dag, id));
                c
            }
        }
    }

    /// Whether a memoized `Unknown` for `id` is still current. The fast
    /// path is the historical global test (nothing learned at all since
    /// the memo); past that, the memo survives as long as no knowledge
    /// delta touched the node's own fingerprint words: a significant
    /// witness needs `F(id) ⊆ F(w)` and an insignificant one `F(w) ⊆
    /// F(id)`, so either direction forces a nonzero-word overlap, and a
    /// pruning click lands on an elem-region word. Nodes whose
    /// classification is not word-localizable — empty fingerprints
    /// (≤ everything) and MORE facts (matched against vocabulary rows) —
    /// keep the conservative global behavior.
    fn unknown_memo_valid(&self, dag: &DagView<'_>, id: NodeId) -> bool {
        let at = match self.unknown_at.get(id.index()) {
            Some(&a) if a != u32::MAX => a,
            _ => return false,
        };
        if at == self.knowledge_epoch {
            return true;
        }
        if self.global_reach_epoch > at {
            return false;
        }
        if !dag.node(id).assignment.more().is_empty() {
            return false;
        }
        let words = dag.fp_words(id);
        let mut any = false;
        for (wi, &w) in words.iter().enumerate() {
            if w != 0 {
                any = true;
                if self.word_epochs.get(wi).copied().unwrap_or(0) > at {
                    return false;
                }
            }
        }
        any
    }

    /// Whether some significant witness `w` has `id ≤ w`, via the
    /// posting index: `F(id) ⊆ F(w)` requires every value bit of `id` to
    /// be set in `F(w)`, so the posting list of any one value bit is a
    /// complete candidate set — verify the shortest. An empty posting
    /// for any value bit refutes all witnesses at once.
    fn sig_hit(&self, dag: &DagView<'_>, id: NodeId) -> bool {
        if self.sig_witnesses.is_empty() {
            return false;
        }
        const EMPTY: &[NodeId] = &[];
        let space = dag.fp_space();
        let a = &dag.node(id).assignment;
        let mut best: Option<&[NodeId]> = None;
        let mut has_values = false;
        for si in 0..a.num_slots() {
            for &v in a.slot(Slot(si as u16)) {
                has_values = true;
                let bit = space.value_bit(si, v);
                let posting = self.sig_postings.get(bit).map_or(EMPTY, |p| p.as_slice());
                if posting.is_empty() {
                    return false;
                }
                if best.is_none_or(|b| posting.len() < b.len()) {
                    best = Some(posting);
                }
            }
        }
        if !has_values {
            // no value bits to key on (⊥-like node): scan the list
            return self.sig_witnesses.iter().any(|&w| dag.leq(id, w));
        }
        // PANIC-OK: has_values means the loop above either returned
        // early on an empty posting or recorded one in `best`.
        best.expect("value bits present but no posting recorded")
            .iter()
            .any(|&w| dag.leq(id, w))
    }

    /// Whether some insignificant witness `w` has `w ≤ id`: `F(w) ⊆
    /// F(id)` puts `w`'s first value bit inside `F(id)`, so walking the
    /// set bits of `F(id)` over the postings covers all candidates;
    /// valueless witnesses are kept aside and always checked.
    fn insig_hit(&self, dag: &DagView<'_>, id: NodeId) -> bool {
        if self.insig_witnesses.is_empty() {
            return false;
        }
        if self.insig_bottom.iter().any(|&w| dag.leq(w, id)) {
            return true;
        }
        if self.insig_postings.is_empty() {
            return false;
        }
        // Walk only the bits of F(id) that actually carry a non-empty
        // posting, by AND-masking against the presence bitset a word at a
        // time — same candidate set (and order) as enumerating every bit.
        let words = dag.fp_words(id);
        for (wi, &w) in words.iter().enumerate().take(self.insig_bits.len()) {
            // PANIC-OK: `take` bounds `wi` by insig_bits.len().
            let mut live = w & self.insig_bits[wi];
            while live != 0 {
                let bit = wi * 64 + live.trailing_zeros() as usize;
                live &= live - 1;
                // PANIC-OK: `bit`'s presence flag is set, so the posting
                // list exists and is non-empty.
                if self.insig_postings[bit].iter().any(|&w| dag.leq(w, id)) {
                    return true;
                }
            }
        }
        false
    }

    /// Whether the node involves a pruned element or a specialization of
    /// one: a pruned element `p` with `p ≤ e` for a slot value `e` is an
    /// ancestor of `e`, i.e. a set bit in the elem region of the node's
    /// fingerprint — one word-AND per slot. MORE-fact components are
    /// checked against the vocabulary's ancestor rows directly.
    fn pruned_matches_node(&self, dag: &DagView<'_>, id: NodeId) -> bool {
        if self.pruned_elems.is_empty() {
            return false;
        }
        let space = dag.fp_space();
        let words = dag.fp_words(id);
        for si in 0..space.num_slots() {
            let base = si * space.words_per_slot();
            // PANIC-OK: fingerprint layout fixes words.len() at
            // num_slots * words_per_slot with elem_words <= words_per_slot,
            // so every per-slot element region is in bounds.
            let elem_region = &words[base..base + space.elem_words()];
            if intersects(elem_region, &self.pruned_words) {
                return true;
            }
        }
        let vocab = dag.vocab();
        dag.node(id).assignment.more().iter().any(|f| {
            intersects(vocab.elem_ancestor_words(f.subject), &self.pruned_words)
                || intersects(vocab.elem_ancestor_words(f.object), &self.pruned_words)
        })
    }

    /// The historical witness-scan classification — the executable
    /// specification the indexed path is checked against (and the
    /// reference for the property tests). Computes from scratch; no
    /// caching.
    pub fn class_by_scan(&self, dag: &Dag<'_>, id: NodeId) -> Class {
        self.class_by_scan_view(&dag.view(), id)
    }

    /// [`Self::class_by_scan`] over a [`DagView`].
    fn class_by_scan_view(&self, dag: &DagView<'_>, id: NodeId) -> Class {
        let a = &dag.node(id).assignment;
        let vocab = dag.vocab();
        if self.pruned_matches(vocab, a) {
            return Class::Insignificant;
        }
        for &w in &self.sig_witnesses {
            if a.leq(vocab, &dag.node(w).assignment) {
                return Class::Significant;
            }
        }
        for &w in &self.insig_witnesses {
            if dag.node(w).assignment.leq(vocab, a) {
                return Class::Insignificant;
            }
        }
        Class::Unknown
    }

    /// Whether the assignment involves a pruned element or a
    /// specialization of one (exact scan form).
    fn pruned_matches(&self, vocab: &Vocabulary, a: &Assignment) -> bool {
        if self.pruned_elems.is_empty() {
            return false;
        }
        let elem_hit = |e: ElemId| self.pruned_elems.iter().any(|&p| vocab.elem_leq(p, e));
        for si in 0..a.num_slots() {
            for &v in a.slot(Slot(si as u16)) {
                if let Value::Elem(e) = v {
                    if elem_hit(e) {
                        return true;
                    }
                }
            }
        }
        a.more()
            .iter()
            .any(|f| elem_hit(f.subject) || elem_hit(f.object))
    }

    /// Whether `id` is classified (not [`Class::Unknown`]).
    pub fn is_classified(&mut self, dag: &Dag<'_>, id: NodeId) -> bool {
        self.class(dag, id) != Class::Unknown
    }
}

/// Tests whether two bitsets of possibly different lengths intersect.
#[inline]
fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(&x, &y)| x & y != 0)
}

/// The first (slot, value) bit of a node's own values, if any.
fn first_value_bit(dag: &Dag<'_>, id: NodeId) -> Option<usize> {
    let space = dag.fp_space();
    let a = &dag.node(id).assignment;
    for si in 0..a.num_slots() {
        if let Some(&v) = a.slot(Slot(si as u16)).first() {
            return Some(space.value_bit(si, v));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_ql::{bind, evaluate_where, parse, BoundQuery, MatchMode};
    use ontology::domains::figure1;

    fn setup() -> (ontology::Ontology, BoundQuery) {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        (ont, b)
    }

    fn node(dag: &mut Dag, ont: &ontology::Ontology, x: &str, y: &str) -> NodeId {
        let v = ont.vocab();
        dag.intern(Assignment::new(
            v,
            vec![
                vec![Value::Elem(v.elem_id(x).unwrap())],
                vec![Value::Elem(v.elem_id(y).unwrap())],
            ],
            vec![],
        ))
    }

    #[test]
    fn significant_witness_classifies_generalizations() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let specific = node(&mut dag, &ont, "Central Park", "Basketball");
        let general = node(&mut dag, &ont, "Park", "Sport");
        let sibling = node(&mut dag, &ont, "Central Park", "Biking");
        cls.mark_significant(&dag, specific);
        assert_eq!(cls.class(&dag, general), Class::Significant);
        assert_eq!(cls.class(&dag, sibling), Class::Unknown);
    }

    #[test]
    fn insignificant_witness_classifies_specializations() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let general = node(&mut dag, &ont, "Central Park", "Ball Game");
        let specific = node(&mut dag, &ont, "Central Park", "Basketball");
        let other = node(&mut dag, &ont, "Central Park", "Biking");
        cls.mark_insignificant(&dag, general);
        assert_eq!(cls.class(&dag, specific), Class::Insignificant);
        assert_eq!(cls.class(&dag, other), Class::Unknown);
    }

    #[test]
    fn pruning_kills_the_element_cone() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let ball = node(&mut dag, &ont, "Central Park", "Ball Game");
        let basket = node(&mut dag, &ont, "Central Park", "Basketball");
        let biking = node(&mut dag, &ont, "Bronx Zoo", "Biking");
        // probe first so Unknown is computed (and must not stick)
        assert_eq!(cls.class(&dag, basket), Class::Unknown);
        cls.prune_elem(&dag, ont.vocab().elem_id("Ball Game").unwrap());
        assert_eq!(cls.class(&dag, ball), Class::Insignificant);
        assert_eq!(cls.class(&dag, basket), Class::Insignificant);
        assert_eq!(cls.class(&dag, biking), Class::Unknown);
    }

    #[test]
    fn later_materialized_nodes_are_classified() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let w = node(&mut dag, &ont, "Central Park", "Sport");
        cls.mark_significant(&dag, w);
        // materialize a more general node afterwards
        let g = node(&mut dag, &ont, "Outdoor", "Activity");
        assert_eq!(cls.class(&dag, g), Class::Significant);
    }

    #[test]
    fn witnesses_classify_themselves() {
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let n = node(&mut dag, &ont, "Central Park", "Biking");
        assert!(!cls.is_classified(&dag, n));
        cls.mark_significant(&dag, n);
        assert_eq!(cls.class(&dag, n), Class::Significant);
    }

    #[test]
    fn queried_results_stick_under_later_contradiction() {
        // historical semantics: the first query's verdict is permanent;
        // later pruning clicks or contradictory answers don't flip it
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let w = node(&mut dag, &ont, "Central Park", "Basketball");
        let g = node(&mut dag, &ont, "Park", "Sport");
        cls.mark_significant(&dag, w);
        assert_eq!(cls.class(&dag, g), Class::Significant);
        cls.prune_elem(&dag, ont.vocab().elem_id("Sport").unwrap());
        // g was already queried — sticks; an unqueried sibling is pruned
        assert_eq!(cls.class(&dag, g), Class::Significant);
        let fresh = node(&mut dag, &ont, "Bronx Zoo", "Sport");
        assert_eq!(cls.class(&dag, fresh), Class::Insignificant);
    }

    #[test]
    fn derived_insig_yields_to_significant_witness() {
        // scan order: significant witnesses take precedence over
        // insignificant inference on a first query
        let (ont, b) = setup();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut cls = Classifier::new();
        let low = node(&mut dag, &ont, "Park", "Sport");
        let mid = node(&mut dag, &ont, "Central Park", "Ball Game");
        let high = node(&mut dag, &ont, "Central Park", "Basketball");
        cls.mark_insignificant(&dag, low); // mid, high ⊇ low ⇒ insig cone
        cls.mark_significant(&dag, high); // but high is answered significant
        assert_eq!(cls.class(&dag, mid), Class::Significant);
        assert_eq!(cls.class(&dag, high), Class::Significant);
    }
}
