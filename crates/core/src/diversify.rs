//! Diversified top-k answers — the "returning the top-k answers or
//! diversified answers" extension of Section 8.
//!
//! Two MSPs can be near-duplicates ("Basketball at Central Park" /
//! "Baseball at Central Park"); when the user asks for `TOP k DIVERSE`,
//! the engine mines the full MSP set and then picks `k` answers by greedy
//! max–min semantic distance.
//!
//! The distance is a Jaccard distance over *generalization features*: the
//! set of `(slot, ancestor)` pairs of every assigned value (plus MORE
//! facts). Two assignments that share deep taxonomy context overlap on
//! many ancestors and count as similar.

use crate::assignment::{Assignment, Slot};
use oassis_ql::Value;
use ontology::Vocabulary;
use std::collections::HashSet;

/// A feature of an assignment: one ancestor of one assigned value, tagged
/// by slot, or a MORE fact component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Feature {
    SlotAncestor(u16, Value),
    MoreFact(ontology::Fact),
}

fn features(vocab: &Vocabulary, a: &Assignment) -> HashSet<Feature> {
    let mut out = HashSet::new();
    for si in 0..a.num_slots() {
        for &v in a.slot(Slot(si as u16)) {
            match v {
                Value::Elem(e) => {
                    // e and all its generalizations
                    let mut stack = vec![e];
                    let mut seen = HashSet::from([e]);
                    while let Some(x) = stack.pop() {
                        out.insert(Feature::SlotAncestor(si as u16, Value::Elem(x)));
                        for &p in vocab.elem_parents(x) {
                            if seen.insert(p) {
                                stack.push(p);
                            }
                        }
                    }
                }
                Value::Rel(r) => {
                    out.insert(Feature::SlotAncestor(si as u16, Value::Rel(r)));
                }
            }
        }
    }
    for &f in a.more() {
        out.insert(Feature::MoreFact(f));
    }
    out
}

/// Jaccard distance between two assignments' generalization features
/// (0 = identical context, 1 = nothing shared).
pub fn semantic_distance(vocab: &Vocabulary, a: &Assignment, b: &Assignment) -> f64 {
    let fa = features(vocab, a);
    let fb = features(vocab, b);
    let inter = fa.intersection(&fb).count();
    let union = fa.union(&fb).count();
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

/// Greedy max–min diversification: start from the first candidate and
/// repeatedly add the candidate maximizing its minimum distance to the
/// picks so far. Returns at most `k` assignments, in pick order.
pub fn diversify(vocab: &Vocabulary, candidates: &[Assignment], k: usize) -> Vec<Assignment> {
    if k == 0 || candidates.is_empty() {
        return Vec::new();
    }
    let mut picked: Vec<usize> = vec![0];
    while picked.len() < k.min(candidates.len()) {
        let next = (0..candidates.len())
            .filter(|i| !picked.contains(i))
            .max_by(|&i, &j| {
                let di = min_dist(vocab, candidates, &picked, i);
                let dj = min_dist(vocab, candidates, &picked, j);
                di.partial_cmp(&dj).unwrap_or(std::cmp::Ordering::Equal)
            });
        match next {
            Some(i) => picked.push(i),
            None => break,
        }
    }
    picked.into_iter().map(|i| candidates[i].clone()).collect() // PANIC-OK: picked indices come from iterating candidates
}

fn min_dist(vocab: &Vocabulary, candidates: &[Assignment], picked: &[usize], i: usize) -> f64 {
    picked
        .iter()
        .map(|&p| semantic_distance(vocab, &candidates[p], &candidates[i])) // PANIC-OK: pair indices come from iterating candidates
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::domains::figure1;

    fn assign(ont: &ontology::Ontology, x: &str, y: &str) -> Assignment {
        let v = ont.vocab();
        Assignment::new(
            v,
            vec![
                vec![Value::Elem(v.elem_id(x).unwrap())],
                vec![Value::Elem(v.elem_id(y).unwrap())],
            ],
            vec![],
        )
    }

    #[test]
    fn distance_is_zero_for_identical() {
        let ont = figure1::ontology();
        let a = assign(&ont, "Central Park", "Biking");
        assert_eq!(semantic_distance(ont.vocab(), &a, &a), 0.0);
    }

    #[test]
    fn siblings_are_closer_than_strangers() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let basketball = assign(&ont, "Central Park", "Basketball");
        let baseball = assign(&ont, "Central Park", "Baseball");
        let monkey = assign(&ont, "Bronx Zoo", "Feed a Monkey");
        let d_sibling = semantic_distance(v, &basketball, &baseball);
        let d_stranger = semantic_distance(v, &basketball, &monkey);
        assert!(d_sibling < d_stranger, "{d_sibling} vs {d_stranger}");
        assert!(d_sibling > 0.0);
    }

    #[test]
    fn diversify_prefers_spread() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let candidates = vec![
            assign(&ont, "Central Park", "Basketball"),
            assign(&ont, "Central Park", "Baseball"), // near-duplicate of [0]
            assign(&ont, "Bronx Zoo", "Feed a Monkey"),
        ];
        let picked = diversify(v, &candidates, 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], candidates[0]);
        // the second pick must be the zoo answer, not the near-duplicate
        assert_eq!(picked[1], candidates[2]);
    }

    #[test]
    fn k_larger_than_candidates_returns_all() {
        let ont = figure1::ontology();
        let candidates = vec![
            assign(&ont, "Central Park", "Biking"),
            assign(&ont, "Bronx Zoo", "Feed a Monkey"),
        ];
        assert_eq!(diversify(ont.vocab(), &candidates, 10).len(), 2);
        assert!(diversify(ont.vocab(), &candidates, 0).is_empty());
        assert!(diversify(ont.vocab(), &[], 3).is_empty());
    }

    #[test]
    fn more_facts_contribute_to_distance() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let plain = assign(&ont, "Central Park", "Biking");
        let tipped = plain.with_more(v, v.fact("Rent Bikes", "doAt", "Boathouse").unwrap());
        let d = semantic_distance(v, &plain, &tipped);
        assert!(d > 0.0 && d < 1.0);
    }
}
