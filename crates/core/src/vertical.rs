//! The vertical algorithm (Algorithm 1): single-user, top-down MSP mining.
//!
//! Repeatedly pick the most general unclassified assignment, ask the crowd
//! member about it, and — if significant — greedily climb to an immediate
//! successor until none is significant; that node is an MSP. Every answer
//! classifies a whole cone by Observation 4.4, so the number of questions
//! stays near the `O((|E|+|R|)·|msp| + |msp⁻|)` bound of Proposition 4.7.
//!
//! Specialization questions (Section 4.1, "Speeding up with specialization
//! questions") are interleaved at a configurable ratio: instead of probing
//! children one by one, the member is shown the unclassified children as
//! auto-completion options and picks a significant one directly (or
//! answers "none of these", classifying all options at once).

use crate::assignment::Assignment;
use crate::classify::{Class, Classifier};
use crate::dag::{Dag, NodeId};
use crate::manifest::{ask_with_retry, PartialManifest};
use crate::oplog::OpVerdict;
use crowd::{Answer, CrowdPolicy, CrowdSource, MemberId, Question};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration shared by the mining algorithms.
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// The support threshold Θ (overrides the query's `WITH SUPPORT` when
    /// set; `None` uses the query value).
    pub threshold: Option<f64>,
    /// Probability of asking a specialization question instead of probing
    /// children with concrete questions (Figure 4f varies this).
    pub specialization_ratio: f64,
    /// Maximum auto-completion options shown in one specialization
    /// question.
    pub max_spec_options: usize,
    /// RNG seed for the question-type policy.
    pub seed: u64,
    /// Question-batch width `k` for the multi-user engine: per round each
    /// member is planned up to `k` mutually non-redundant targets — no
    /// pair ordered by `leq`, so no answer in the batch can classify
    /// another's target by inference — and asked all of them, filling
    /// crowd latency with useful parallelism. The default `1` is the
    /// classic one-question-per-member round, bit-identical to the
    /// pre-batching engine; `0` is treated as `1`. Single-user engines
    /// ignore the field.
    pub batch_width: usize,
    /// Stop after this many answered questions (`None` = run to
    /// completion).
    pub max_questions: Option<usize>,
    /// Fork-join pool for the engine's data-parallel scans (pruning-cone
    /// sweeps, witness verification, final classification sweeps). The
    /// default is sequential; any width produces bit-identical outcomes —
    /// every parallel phase is a pure map merged in input order.
    pub pool: minipool::Pool,
    /// Crowd-access policy: per-question timeout, retry cap, and backoff
    /// for members that stall ([`Answer::NoResponse`]). The default never
    /// activates on a fault-free crowd, so existing outcomes are
    /// unchanged.
    pub policy: CrowdPolicy,
    /// Re-verify the step-level invariants of [`crate::invariants`] after
    /// every answered question, panicking on the first violation. Used by
    /// the simulation harness; off by default (pure frozen reads, so
    /// enabling it never changes an outcome, only the running time).
    pub debug_checks: bool,
    /// Telemetry handle for the run. The default is
    /// [`telemetry::Telemetry::off`], a no-op that records nothing and
    /// keeps every outcome bit-identical; attach a recording sink with
    /// [`telemetry::Telemetry::recording`] to capture spans, counters and
    /// histograms for the run.
    pub telemetry: telemetry::Telemetry,
    /// Streaming op-log consumer ([`crate::oplog::OpTap`]): the
    /// multi-user engine flushes freshly recorded ops to it at round
    /// boundaries and at run end, giving a serving layer write-ahead
    /// durability mid-run. `None` (the default) records nothing extra and
    /// changes no outcome — the tap only *observes* the log.
    pub op_tap: Option<crate::oplog::OpTapHandle>,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            threshold: None,
            specialization_ratio: 0.0,
            max_spec_options: 8,
            seed: 0,
            batch_width: 1,
            max_questions: None,
            pool: minipool::Pool::sequential(),
            policy: CrowdPolicy::default(),
            debug_checks: false,
            telemetry: telemetry::Telemetry::off(),
            op_tap: None,
        }
    }
}

/// A discovery event, for the pace-of-collection curves (Figures 4d–4e).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscoveryEvent {
    /// Number of questions answered when the event occurred.
    pub question: usize,
    /// What was discovered.
    pub kind: DiscoveryKind,
}

/// Kind of discovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DiscoveryKind {
    /// An MSP was identified (valid or not).
    Msp {
        /// Whether the MSP is valid w.r.t. the query.
        valid: bool,
    },
    /// Additional valid assignments became classified; the payload is the
    /// new total.
    ValidClassified {
        /// Total classified valid assignments after this question.
        total: usize,
    },
}

/// Result of a mining run.
#[derive(Debug)]
pub struct MiningOutcome {
    /// All MSPs found (Figure 4a's `#MSPs`).
    pub msps: Vec<Assignment>,
    /// The valid MSPs — the query answer (`M ∩ 𝒜_valid`, Figure 4a's
    /// `#valid`).
    pub valid_msps: Vec<Assignment>,
    /// Every *valid* assignment known significant (materialized), for the
    /// `ALL` keyword: "the other significant assignments can be inferred".
    pub significant_valid: Vec<Assignment>,
    /// Number of valid base assignments (the denominator of the
    /// "classified assign." curve of Figure 4d).
    pub total_valid: usize,
    /// Valid assignments *with multiplicities* (or MORE facts) that the
    /// lazy generator materialized. The exhaustive baseline of Section 6.3
    /// is charged `sample_size × (total_valid + valid_mult_nodes)`
    /// questions ("we fed to the naive algorithm only the assignments with
    /// multiplicities that our algorithm had generated, for fairness").
    pub valid_mult_nodes: usize,
    /// Questions answered by the crowd.
    pub questions: usize,
    /// Discovery events in order.
    pub events: Vec<DiscoveryEvent>,
    /// DAG generation statistics.
    pub gen_stats: crate::dag::GenStats,
    /// Nodes materialized by the end of the run.
    pub nodes_materialized: usize,
    /// Whether the run classified everything (false = question budget or
    /// crowd exhausted first).
    pub complete: bool,
    /// Degradation report: timeouts, retries, and the patterns the run
    /// gave up on that are still unclassified. Empty on fault-free runs.
    pub manifest: PartialManifest,
    /// The run's answer-operation log: every counted interaction as a
    /// replayable delta. Replaying any permutation of it reproduces this
    /// outcome's digest-bearing fields (see [`crate::oplog`]).
    pub ops: crate::oplog::OpLog,
}

/// Tracks how many *valid base* assignments are classified after each
/// answer (the "classified assign." series of Figure 4d).
///
/// Bases are indexed by the global fingerprint bits of their (singleton)
/// slot values, so each witness touches only the bases it can actually
/// classify instead of scanning all of them:
///
/// * a significant witness `w` classifies bases `a ≤ w` — every value
///   bit of `a` lies in `F(w)`, so walking the set bits of `F(w)` over
///   the first-bit buckets enumerates all candidates exactly once;
/// * an insignificant witness classifies bases above it — candidates
///   are the bases holding a descendant of the witness value with the
///   smallest descendant cone;
/// * a pruning click on `e` classifies bases holding a value in `e`'s
///   descendant cone, found the same way.
///
/// The hit conditions are unchanged from the original scan, so the
/// classified set (and the Figure-4d curve) is bit-identical.
pub(crate) struct ValidTracker {
    assignments: std::sync::Arc<Vec<Assignment>>,
    classified: Vec<bool>,
    pub total_classified: usize,
    /// Per-base value bits, one per non-empty slot (bases are singleton
    /// per constrained slot, empty elsewhere).
    base_bits: Vec<Vec<u32>>,
    /// Bases with no values at all (≤ everything; classified by the
    /// first significant witness).
    empty_bases: Vec<u32>,
    /// First value bit → bases whose first bit it is (each base once).
    buckets_first: Vec<Vec<u32>>,
    /// Any value bit → bases holding it (each base once per slot).
    buckets_all: Vec<Vec<u32>>,
    /// Pool for sharded candidate verification (sequential by default).
    pool: minipool::Pool,
    /// Telemetry handle (off by default). Only counters and histograms
    /// are recorded here — never spans — so witness verification can run
    /// from any engine without perturbing the trace tick.
    tele: telemetry::Telemetry,
}

impl ValidTracker {
    pub fn new(dag: &Dag<'_>) -> Self {
        let assignments = dag.validity().valid_base_assignments(dag.vocab());
        let space = dag.fp_space();
        let nbits = space.words_per_node() * 64;
        let mut base_bits = Vec::with_capacity(assignments.len());
        let mut empty_bases = Vec::new();
        let mut buckets_first = vec![Vec::new(); nbits];
        let mut buckets_all = vec![Vec::new(); nbits];
        for (i, a) in assignments.iter().enumerate() {
            let mut bits: Vec<u32> = Vec::new();
            for si in 0..a.num_slots() {
                for &v in a.slot(crate::assignment::Slot(si as u16)) {
                    let bit = space.value_bit(si, v);
                    bits.push(bit as u32);
                    // PANIC-OK: both bucket tables were sized to nbits
                    // and every value bit is below words_per_node * 64.
                    buckets_all[bit].push(i as u32);
                }
            }
            match bits.first() {
                // PANIC-OK: `b` is a value bit below nbits, as above.
                Some(&b) => buckets_first[b as usize].push(i as u32),
                None => empty_bases.push(i as u32),
            }
            base_bits.push(bits);
        }
        let classified = vec![false; assignments.len()];
        ValidTracker {
            assignments,
            classified,
            total_classified: 0,
            base_bits,
            empty_bases,
            buckets_first,
            buckets_all,
            pool: minipool::Pool::sequential(),
            tele: telemetry::Telemetry::off(),
        }
    }

    /// Shards candidate verification across `pool` (shard-and-merge: the
    /// pure hit tests run in parallel, the marks are applied sequentially
    /// in candidate order — the classified set is order-insensitive
    /// anyway, since `mark` is idempotent and commutative).
    pub fn with_pool(mut self, pool: minipool::Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Attaches a telemetry handle for witness/prune counters.
    pub fn with_telemetry(mut self, tele: telemetry::Telemetry) -> Self {
        self.tele = tele;
        self
    }

    #[inline]
    fn mark(&mut self, i: usize) -> bool {
        // PANIC-OK: callers pass base indices drawn from the bucket
        // tables or 0..assignments.len(); classified has that length.
        if self.classified[i] {
            return false;
        }
        // PANIC-OK: in bounds, as above.
        self.classified[i] = true;
        self.total_classified += 1;
        true
    }

    /// Updates after the node `w` became a significant (`sig=true`) or
    /// insignificant witness; returns whether anything newly classified.
    pub fn witness(&mut self, dag: &Dag<'_>, w: NodeId, sig: bool) -> bool {
        self.tele.count("validity.witness_checks", 1);
        let mut changed = false;
        if sig {
            // bases a ≤ w: no MORE facts and singleton slots, so the
            // condition is exactly "every base value bit is set in F(w)"
            let words = dag.fp_words(w);
            if self.pool.threads() > 1 {
                // Shard-and-merge: every base hits at most one first-bit
                // bucket, so the candidate list is duplicate-free and the
                // subset tests are independent pure reads; marks are
                // applied afterwards in candidate order.
                let mut candidates: Vec<u32> = Vec::new();
                for bit in crate::fingerprint::iter_bits(words) {
                    candidates.extend(
                        // PANIC-OK: iter_bits yields bits below nbits.
                        self.buckets_first[bit]
                            .iter()
                            .copied()
                            // PANIC-OK: bucket entries are base indices.
                            .filter(|&i| !self.classified[i as usize]),
                    );
                }
                self.tele
                    .observe("minipool.shard_items", candidates.len() as u64);
                let hits = self.pool.par_map(&candidates, |&i| {
                    // PANIC-OK: candidates hold base indices, as above.
                    self.base_bits[i as usize]
                        .iter()
                        .all(|&b| word_bit(words, b as usize))
                });
                for (&i, hit) in candidates.iter().zip(hits) {
                    if hit {
                        changed |= self.mark(i as usize);
                    }
                }
            } else {
                for bit in crate::fingerprint::iter_bits(words) {
                    // PANIC-OK: iter_bits yields bits below nbits.
                    for bi in 0..self.buckets_first[bit].len() {
                        // PANIC-OK: `bit` and `bi` are loop-bounded.
                        let i = self.buckets_first[bit][bi] as usize;
                        // PANIC-OK: bucket entries are base indices.
                        if !self.classified[i]
                            // PANIC-OK: `i` is a base index, as above.
                            && self.base_bits[i]
                                .iter()
                                .all(|&b| word_bit(words, b as usize))
                        {
                            changed |= self.mark(i);
                        }
                    }
                }
            }
            for bi in 0..self.empty_bases.len() {
                // PANIC-OK: `bi` is loop-bounded by the length.
                let i = self.empty_bases[bi] as usize;
                changed |= self.mark(i);
            }
        } else {
            // bases a ≥ w: a has no MORE facts, so w must have none; each
            // witness value must generalize the base's value in its slot.
            // Enumerate candidates through the witness value with the
            // smallest descendant cone, then verify exactly.
            let assignment = &dag.node(w).assignment;
            if !assignment.more().is_empty() {
                return false;
            }
            let vocab = dag.vocab();
            let mut pick: Option<(usize, oassis_ql::Value, usize)> = None;
            for si in 0..assignment.num_slots() {
                for &v in assignment.slot(crate::assignment::Slot(si as u16)) {
                    let count = match v {
                        oassis_ql::Value::Elem(e) => vocab.elem_descendant_count(e),
                        oassis_ql::Value::Rel(r) => vocab.rel_descendant_count(r),
                    };
                    if pick.is_none_or(|(_, _, c)| count < c) {
                        pick = Some((si, v, count));
                    }
                }
            }
            let Some((si, u, _)) = pick else {
                // valueless witness without MORE facts is ≤ every base
                for i in 0..self.assignments.len() {
                    changed |= self.mark(i);
                }
                return changed;
            };
            let space = dag.fp_space();
            let mut candidates: Vec<u32> = Vec::new();
            match u {
                oassis_ql::Value::Elem(e) => {
                    for d in vocab.elem_descendants(e) {
                        // PANIC-OK: elem_bit is below nbits by layout.
                        candidates.extend_from_slice(&self.buckets_all[space.elem_bit(si, d)]);
                    }
                }
                oassis_ql::Value::Rel(r) => {
                    for d in vocab.rel_descendants(r) {
                        // PANIC-OK: rel_bit is below nbits by layout.
                        candidates.extend_from_slice(&self.buckets_all[space.rel_bit(si, d)]);
                    }
                }
            }
            if self.pool.threads() > 1 {
                // `buckets_all` may list a base once per slot; duplicate
                // candidates verify to the same verdict and `mark` is
                // idempotent, so the classified set is unchanged.
                self.tele
                    .observe("minipool.shard_items", candidates.len() as u64);
                let hits = self.pool.par_map(&candidates, |&i| {
                    let i = i as usize;
                    // PANIC-OK: bucket entries are base indices.
                    !self.classified[i] && assignment.leq(vocab, &self.assignments[i])
                });
                for (&i, hit) in candidates.iter().zip(hits) {
                    if hit {
                        changed |= self.mark(i as usize);
                    }
                }
            } else {
                for i in candidates {
                    let i = i as usize;
                    // PANIC-OK: bucket entries are base indices.
                    if !self.classified[i] && assignment.leq(vocab, &self.assignments[i]) {
                        changed |= self.mark(i);
                    }
                }
            }
        }
        changed
    }

    /// Updates after a pruning click: bases holding a value in the
    /// pruned element's descendant cone (in any slot) are classified.
    pub fn prune(&mut self, dag: &Dag<'_>, elem: ontology::ElemId) -> bool {
        self.tele.count("validity.prune_clicks", 1);
        let space = dag.fp_space();
        let vocab = dag.vocab();
        let mut changed = false;
        for d in vocab.elem_descendants(elem) {
            for si in 0..space.num_slots() {
                let bit = space.elem_bit(si, d);
                // PANIC-OK: elem_bit is below nbits by layout.
                for bi in 0..self.buckets_all[bit].len() {
                    // PANIC-OK: `bit` and `bi` are loop-bounded.
                    let i = self.buckets_all[bit][bi] as usize;
                    changed |= self.mark(i);
                }
            }
        }
        changed
    }

    pub fn len(&self) -> usize {
        self.assignments.len()
    }
}

/// Tests bit `bit` of a word slice.
#[inline]
fn word_bit(words: &[u64], bit: usize) -> bool {
    // PANIC-OK: callers pass fingerprint value bits, which lie below
    // words.len() * 64 by the fingerprint-space layout.
    words[bit / 64] & (1 << (bit % 64)) != 0
}

/// Runs Algorithm 1 with a single crowd member.
pub fn run_vertical<C: CrowdSource>(
    dag: &mut Dag<'_>,
    crowd: &mut C,
    member: MemberId,
    cfg: &MiningConfig,
) -> MiningOutcome {
    let threshold = cfg.threshold.unwrap_or(dag.query().threshold);
    let root = cfg.telemetry.span("mine.vertical");
    let tele = root.tele().clone();
    let mut s = Session {
        cls: Classifier::new(),
        rng: StdRng::seed_from_u64(cfg.seed),
        questions: 0,
        events: Vec::new(),
        ops: crate::oplog::OpLog::new(threshold, false),
        tracker: ValidTracker::new(dag)
            .with_pool(cfg.pool)
            .with_telemetry(tele.clone()),
        available: true,
        threshold,
        cfg,
        manifest: PartialManifest::default(),
        gave_up: Vec::new(),
        gave_up_set: HashSet::new(),
        tele,
    };
    let mut msp_ids: Vec<NodeId> = Vec::new();
    let mut msp_set: HashSet<NodeId> = HashSet::new();

    'outer: loop {
        if s.exhausted() {
            break;
        }
        let Some(mut phi) = find_minimal_unclassified(dag, &mut s.cls, &cfg.pool, &s.gave_up_set)
        else {
            break;
        };
        if !s.ask_concrete(dag, crowd, member, phi) {
            continue;
        }
        // climb: follow significant successors until none remains
        loop {
            if s.exhausted() {
                break 'outer;
            }
            let children = dag.children(phi);
            // jump to an already-classified significant child first
            if let Some(&c) = children
                .iter()
                .find(|&&c| s.cls.class(dag, c) == Class::Significant)
            {
                phi = c;
                continue;
            }
            let unclassified: Vec<NodeId> = children
                .iter()
                .copied()
                .filter(|&c| s.cls.class(dag, c) == Class::Unknown)
                .collect();
            if unclassified.is_empty() {
                if msp_set.insert(phi) {
                    msp_ids.push(phi);
                    s.events.push(DiscoveryEvent {
                        question: s.questions,
                        kind: DiscoveryKind::Msp {
                            valid: dag.node(phi).valid,
                        },
                    });
                    s.ops.record(
                        s.questions,
                        member,
                        phi,
                        crate::oplog::OpVerdict::Msp {
                            valid: dag.node(phi).valid,
                        },
                    );
                    if s.cfg.debug_checks {
                        if let Err(e) =
                            crate::invariants::check_msp_maximality(dag, &s.cls, &msp_ids)
                        {
                            panic!("simulation invariant violated: {e}");
                        }
                    }
                    // TOP k (Section 8 extension): stop as soon as k valid
                    // MSPs are identified — unless DIVERSE needs the full
                    // candidate set to choose from.
                    if let Some(k) = dag.query().top_k {
                        if !dag.query().diverse {
                            let valid = msp_ids.iter().filter(|&&m| dag.node(m).valid).count();
                            if valid >= k {
                                break 'outer;
                            }
                        }
                    }
                }
                break;
            }
            // drop children the retry policy already gave up on — they
            // stay Unknown, so the node can never be confirmed an MSP,
            // but probing them again would loop forever
            let askable: Vec<NodeId> = unclassified
                .iter()
                .copied()
                .filter(|c| !s.gave_up_set.contains(c))
                .collect();
            if askable.is_empty() {
                // every remaining child timed out past the retry budget:
                // abandon the climb without declaring an MSP (a stalled
                // child may well be significant)
                break;
            }
            // question-type policy
            if s.cfg.specialization_ratio > 0.0 && s.rng.gen_bool(s.cfg.specialization_ratio) {
                let options: Vec<NodeId> = askable
                    .iter()
                    .copied()
                    .take(s.cfg.max_spec_options)
                    .collect();
                match s.ask_specialization(dag, crowd, member, phi, &options) {
                    SpecOutcome::Jump(c) => {
                        phi = c;
                        continue;
                    }
                    SpecOutcome::NoneLeft | SpecOutcome::NoJump => continue,
                    SpecOutcome::Gone => break 'outer,
                    // fall through to a concrete probe so the give-up
                    // bookkeeping (and thus climb progress) is guaranteed
                    SpecOutcome::TimedOut => {}
                }
            }
            // PANIC-OK: the is_empty check above guarantees an element.
            let c = askable[0];
            if s.ask_concrete(dag, crowd, member, c) {
                phi = c;
            }
            if !s.available {
                break 'outer;
            }
        }
    }

    // no skip set here: a gave-up node still unclassified must force
    // `complete == false` (one resolved by a later inference does not)
    let complete = s.available
        && !s.exhausted_budget()
        && find_minimal_unclassified(dag, &mut s.cls, &cfg.pool, &HashSet::new()).is_none();
    finish(dag, s, msp_ids, complete)
}

pub(crate) fn finish(
    dag: &mut Dag<'_>,
    mut s: Session<'_>,
    msp_ids: Vec<NodeId>,
    complete: bool,
) -> MiningOutcome {
    let mut manifest = std::mem::take(&mut s.manifest);
    {
        // frozen sweep: a gave-up node that another answer later
        // classified by inference is answered, not missing
        let view = dag.view();
        manifest.unanswered = s
            .gave_up
            .iter()
            .copied()
            .filter(|&id| s.cls.class_frozen(&view, id) == Class::Unknown)
            .map(|id| view.node(id).assignment.clone())
            .collect();
    }
    let msps: Vec<Assignment> = msp_ids
        .iter()
        .map(|&id| dag.node(id).assignment.clone())
        .collect();
    let valid_msps: Vec<Assignment> = msp_ids
        .iter()
        .filter(|&&id| dag.node(id).valid)
        .map(|&id| dag.node(id).assignment.clone())
        .collect();
    let significant_valid = significant_valid_assignments(dag, &s.cls, &s.cfg.pool);
    let total_valid = s.tracker.len();
    let valid_mult_nodes = dag
        .node_ids()
        .filter(|&id| dag.node(id).valid && !dag.node(id).assignment.is_base())
        .count();
    if s.tele.is_enabled() {
        let (hits, misses) = s.cls.cache_stats();
        s.tele.count("classifier.cache_hits", hits);
        s.tele.count("classifier.cache_misses", misses);
        let gs = dag.stats();
        s.tele.count("dag.nodes_created", gs.nodes_created as u64);
        s.tele.count("dag.nodes_expanded", gs.nodes_expanded as u64);
        s.tele.count("dag.admits_calls", gs.admits_calls as u64);
        s.tele.count(
            "validity.bases_classified",
            s.tracker.total_classified as u64,
        );
    }
    let mut ops = s.ops;
    ops.set_complete(complete);
    MiningOutcome {
        msps,
        valid_msps,
        significant_valid,
        total_valid,
        valid_mult_nodes,
        questions: s.questions,
        events: s.events,
        gen_stats: dag.stats(),
        nodes_materialized: dag.len(),
        complete,
        manifest,
        ops,
    }
}

/// All materialized valid assignments classified significant.
///
/// A read-only frozen sweep: classification goes through
/// [`Classifier::class_frozen`] over a [`Dag::view`], which is
/// value-identical to `class` but never stamps the sticky cache, so the
/// scan shards freely across `pool` and merges in node-id order.
pub(crate) fn significant_valid_assignments(
    dag: &Dag<'_>,
    cls: &Classifier,
    pool: &minipool::Pool,
) -> Vec<Assignment> {
    let view = dag.view();
    let ids: Vec<NodeId> = dag.node_ids().collect();
    let hits = pool.par_map(&ids, |&id| {
        view.node(id).valid && cls.class_frozen(&view, id) == Class::Significant
    });
    ids.into_iter()
        .zip(hits)
        .filter(|&(_, hit)| hit)
        .map(|(id, _)| dag.node(id).assignment.clone())
        .collect()
}

/// Shared per-run state: classifier, policy RNG, counters, curve tracker.
pub(crate) struct Session<'c> {
    pub cls: Classifier,
    pub rng: StdRng,
    pub questions: usize,
    pub events: Vec<DiscoveryEvent>,
    /// Answer-operation log: every counted interaction as a replayable
    /// delta (see [`crate::oplog`]).
    pub ops: crate::oplog::OpLog,
    pub tracker: ValidTracker,
    pub available: bool,
    pub threshold: f64,
    pub cfg: &'c MiningConfig,
    /// Timeout/retry counters accumulated by the crowd-access policy.
    pub manifest: PartialManifest,
    /// Nodes the retry policy gave up on, in first-give-up order.
    pub gave_up: Vec<NodeId>,
    pub gave_up_set: HashSet<NodeId>,
    /// Telemetry handle, parented at the engine's root span.
    pub tele: telemetry::Telemetry,
}

pub(crate) enum SpecOutcome {
    /// The member chose a significant option; climb to it.
    Jump(NodeId),
    /// All options were declared insignificant ("none of these").
    NoneLeft,
    /// The member's choice was below the threshold; no climb.
    NoJump,
    /// The member left.
    Gone,
    /// The member stalled past the retry budget; nothing was classified.
    TimedOut,
}

impl Session<'_> {
    pub fn exhausted_budget(&self) -> bool {
        self.cfg.max_questions.is_some_and(|m| self.questions >= m)
    }

    pub fn exhausted(&self) -> bool {
        !self.available || self.exhausted_budget()
    }

    fn record_classification_event(&mut self) {
        self.events.push(DiscoveryEvent {
            question: self.questions,
            kind: DiscoveryKind::ValidClassified {
                total: self.tracker.total_classified,
            },
        });
    }

    /// Bumps the answered-question counters (`engine.questions` plus one
    /// per-kind counter matching [`crate::multi::QuestionStats`] naming).
    fn count_question(&self, kind: &'static str) {
        self.tele.count("engine.questions", 1);
        self.tele.count(kind, 1);
    }

    /// Records that the retry policy gave up on `id` (stays `Unknown`).
    fn give_up(&mut self, id: NodeId) {
        if self.gave_up_set.insert(id) {
            self.gave_up.push(id);
        }
    }

    /// Step-level invariant checks, on when `cfg.debug_checks` is set.
    fn check_step(&self, dag: &Dag<'_>) {
        if let Err(e) = crate::invariants::check_classification_monotonicity(dag, &self.cls) {
            panic!("simulation invariant violated: {e}");
        }
        if let Some(mx) = self.cfg.max_questions {
            assert!(
                self.questions <= mx,
                "simulation invariant violated: {} questions exceed the budget of {mx}",
                self.questions
            );
        }
    }

    /// Asks a concrete question about `id`; returns whether it turned out
    /// significant (for this member).
    pub fn ask_concrete<C: CrowdSource>(
        &mut self,
        dag: &mut Dag<'_>,
        crowd: &mut C,
        member: MemberId,
        id: NodeId,
    ) -> bool {
        let pattern = dag.node(id).assignment.apply(dag.query());
        let question = Question::Concrete { pattern };
        let answer = ask_with_retry(
            crowd,
            member,
            &question,
            &self.cfg.policy,
            &mut self.manifest.timeouts,
            &mut self.manifest.retries,
            &self.tele,
        );
        let sig = match answer {
            Answer::Support { support, more_tip } => {
                self.questions += 1;
                self.count_question("questions.concrete");
                self.ops
                    .record(self.questions, member, id, OpVerdict::Support { support });
                if let Some(tip) = more_tip {
                    // the *more* button: materialize the extended successor
                    dag.attach_more_tip(id, tip);
                }
                let sig = support >= self.threshold;
                if sig {
                    self.cls.mark_significant(dag, id);
                } else {
                    self.cls.mark_insignificant(dag, id);
                }
                if self.tracker.witness(dag, id, sig) {
                    self.record_classification_event();
                }
                sig
            }
            Answer::Irrelevant { elem } => {
                self.questions += 1;
                self.count_question("questions.pruning");
                self.ops.record(
                    self.questions,
                    member,
                    NodeId::SENTINEL,
                    OpVerdict::Prune { elem },
                );
                self.cls.prune_elem(dag, elem);
                if self.tracker.prune(dag, elem) {
                    self.record_classification_event();
                }
                false
            }
            Answer::Unavailable => {
                self.available = false;
                false
            }
            Answer::NoResponse => {
                // retries exhausted: give up, leave the pattern Unknown
                self.give_up(id);
                false
            }
            Answer::Specialized { .. } | Answer::NoneOfThese => {
                unreachable!("specialization answers to a concrete question")
            }
        };
        if self.cfg.debug_checks {
            self.check_step(dag);
        }
        sig
    }

    /// Asks a specialization question at `base` with the given options.
    pub fn ask_specialization<C: CrowdSource>(
        &mut self,
        dag: &mut Dag<'_>,
        crowd: &mut C,
        member: MemberId,
        base: NodeId,
        options: &[NodeId],
    ) -> SpecOutcome {
        let q = Question::Specialization {
            base: dag.node(base).assignment.apply(dag.query()),
            options: options
                .iter()
                .map(|&o| dag.node(o).assignment.apply(dag.query()))
                .collect(),
        };
        let answer = ask_with_retry(
            crowd,
            member,
            &q,
            &self.cfg.policy,
            &mut self.manifest.timeouts,
            &mut self.manifest.retries,
            &self.tele,
        );
        let outcome = match answer {
            Answer::Specialized { choice, support } => {
                self.questions += 1;
                self.count_question("questions.specialization");
                // PANIC-OK: callers pass a non-empty options slice and
                // the clamp keeps any crowd-supplied choice in bounds.
                let chosen = options[choice.min(options.len() - 1)];
                self.ops.record(
                    self.questions,
                    member,
                    chosen,
                    OpVerdict::Support { support },
                );
                let sig = support >= self.threshold;
                if sig {
                    self.cls.mark_significant(dag, chosen);
                } else {
                    self.cls.mark_insignificant(dag, chosen);
                }
                if self.tracker.witness(dag, chosen, sig) {
                    self.record_classification_event();
                }
                if sig {
                    SpecOutcome::Jump(chosen)
                } else {
                    SpecOutcome::NoJump
                }
            }
            Answer::NoneOfThese => {
                self.questions += 1;
                self.count_question("questions.none_of_these");
                self.ops.record(
                    self.questions,
                    member,
                    NodeId::SENTINEL,
                    OpVerdict::NoneOfThese {
                        options: options.to_vec(),
                    },
                );
                let mut changed = false;
                for &o in options {
                    self.cls.mark_insignificant(dag, o);
                    changed |= self.tracker.witness(dag, o, false);
                }
                if changed {
                    self.record_classification_event();
                }
                SpecOutcome::NoneLeft
            }
            Answer::Irrelevant { elem } => {
                self.questions += 1;
                self.count_question("questions.pruning");
                self.ops.record(
                    self.questions,
                    member,
                    NodeId::SENTINEL,
                    OpVerdict::Prune { elem },
                );
                self.cls.prune_elem(dag, elem);
                if self.tracker.prune(dag, elem) {
                    self.record_classification_event();
                }
                SpecOutcome::NoJump
            }
            Answer::Unavailable => {
                self.available = false;
                SpecOutcome::Gone
            }
            // no give-up here: the caller falls back to a concrete probe
            // of the first option, whose own give-up guarantees progress
            Answer::NoResponse => SpecOutcome::TimedOut,
            Answer::Support { .. } => unreachable!("support answer to a specialization question"),
        };
        if self.cfg.debug_checks {
            self.check_step(dag);
        }
        outcome
    }
}

/// Finds a minimal (most general) unclassified node: DFS from the roots
/// through expanded significant nodes, then pick a ≤-minimal candidate.
/// Children of insignificant nodes are skipped — they are classified by
/// inference and need never be materialized. Nodes in `skip` (ones the
/// retry policy gave up on) are not offered as candidates; completeness
/// checks pass an empty set so a gave-up node still forces
/// `complete == false`.
pub(crate) fn find_minimal_unclassified(
    dag: &mut Dag<'_>,
    cls: &mut Classifier,
    pool: &minipool::Pool,
    skip: &HashSet<NodeId>,
) -> Option<NodeId> {
    let mut candidates: Vec<NodeId> = Vec::new();
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = dag.roots().to_vec();
    seen.extend(stack.iter().copied());
    while let Some(id) = stack.pop() {
        match cls.class(dag, id) {
            Class::Unknown => {
                if !skip.contains(&id) {
                    candidates.push(id);
                }
            }
            Class::Significant => {
                for c in dag.children(id) {
                    if seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
            Class::Insignificant => {}
        }
    }
    // Minimal element among candidates. The parallel path computes the
    // dominated flag of every candidate and takes the first undominated
    // one — the same node the sequential early-exit scan returns, since
    // both walk `candidates` in push order.
    let best: Option<NodeId> = if pool.threads() > 1 && candidates.len() >= 32 {
        let view = dag.view();
        let dominated = pool.par_map(&candidates, |&c| {
            candidates.iter().any(|&d| d != c && view.leq(d, c))
        });
        candidates
            .iter()
            .zip(&dominated)
            .find_map(|(&c, &dom)| (!dom).then_some(c))
    } else {
        let mut best: Option<NodeId> = None;
        'cand: for &c in &candidates {
            for &d in &candidates {
                if d != c && dag.leq(d, c) {
                    continue 'cand;
                }
            }
            best = Some(c);
            break;
        }
        best
    };
    best.or_else(|| candidates.first().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
    use crowd::{AnswerModel, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember};
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};
    use ontology::domains::figure1;

    /// Build the u_avg member of Example 4.6: answers are the average of
    /// u1 and u2 — realized exactly by concatenating D_u1 with three
    /// copies of D_u2 (6 + 6 transactions with equal per-user weight).
    fn u_avg(ont: &ontology::Ontology) -> SimulatedMember {
        let [d1, d2] = figure1::personal_dbs(ont);
        let mut tx = d1;
        for _ in 0..3 {
            tx.extend(d2.iter().cloned());
        }
        SimulatedMember::new(
            PersonalDb::from_transactions(tx),
            MemberBehavior::default(),
            AnswerModel::Exact,
            0,
        )
    }

    #[test]
    fn example_4_6_running_example() {
        // Mining the simplified query at Θ = 0.4 with u_avg must find the
        // MSPs of Figure 3 — in particular (Central Park, Ball Game) and
        // (Central Park, Biking) — and classify (CP, Baseball), (CP,
        // Basketball) as insignificant.
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont)]);
        let out = run_vertical(
            &mut dag,
            &mut crowd,
            crowd::MemberId(0),
            &MiningConfig::default(),
        );
        assert!(out.complete);
        let v = ont.vocab();
        let rendered: Vec<String> = out.msps.iter().map(|m| m.apply(&b).to_display(v)).collect();
        // supports at Θ=0.4 (u_avg): Biking@CP = 5/12 ≥ 0.4 ✓;
        // BallGame@CP = avg(2/6, 1/2)=5/12 ✓; Baseball = 1/3 ✗;
        // Basketball = avg(1/6,0)=1/12 ✗; FeedMonkey@BronxZoo = avg(3/6,1/2)=1/2 ✓.
        assert!(
            rendered.iter().any(|r| r == "Biking doAt Central Park"),
            "missing Biking MSP: {rendered:?}"
        );
        assert!(rendered.iter().any(|r| r == "Ball Game doAt Central Park"));
        assert!(rendered.iter().any(|r| r == "Feed a Monkey doAt Bronx Zoo"));
        assert!(!rendered.iter().any(|r| r.contains("Baseball")));
        assert!(!rendered.iter().any(|r| r.contains("Basketball")));
        // all found MSPs are valid here (instances + activity classes)
        assert_eq!(out.msps.len(), out.valid_msps.len());
    }

    #[test]
    fn finds_exactly_the_planted_msps() {
        let d = synthetic_domain(80, 5, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        // ground truth on a fully materialized twin
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 10, true, MspDistribution::Uniform, 7);
        let oracle_ref = PlantedOracle::from_nodes(&full, &planted, 1, 0);
        let expected: HashSet<String> = planted
            .iter()
            .map(|&id| {
                full.node(id)
                    .assignment
                    .apply(&b)
                    .to_display(d.ontology.vocab())
            })
            .collect();

        // lazy mining run
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(
            d.ontology.vocab(),
            planted
                .iter()
                .map(|&id| full.node(id).assignment.apply(&b))
                .collect(),
            1,
            0,
        );
        let out = run_vertical(
            &mut dag,
            &mut oracle,
            crowd::MemberId(0),
            &MiningConfig::default(),
        );
        assert!(out.complete);
        let got: HashSet<String> = out
            .msps
            .iter()
            .map(|m| m.apply(&b).to_display(d.ontology.vocab()))
            .collect();
        assert_eq!(got, expected);
        let _ = oracle_ref;
    }

    #[test]
    fn lazy_run_materializes_fewer_nodes_than_dag() {
        let d = synthetic_domain(150, 6, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let total = full.materialize_all();
        let planted = plant_msps(&mut full, 3, true, MspDistribution::Uniform, 1);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::from_nodes(&full, &planted, 1, 0);
        let out = run_vertical(
            &mut dag,
            &mut oracle,
            crowd::MemberId(0),
            &MiningConfig::default(),
        );
        assert!(out.complete);
        assert!(
            out.nodes_materialized < total,
            "{} < {}",
            out.nodes_materialized,
            total
        );
        // and far fewer questions than nodes (inference prunes)
        assert!(
            out.questions < total / 2,
            "{} questions for {} nodes",
            out.questions,
            total
        );
    }

    #[test]
    fn specialization_questions_reduce_question_count() {
        let d = synthetic_domain(200, 6, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 8, true, MspDistribution::Uniform, 3);

        let run = |ratio: f64| {
            let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
            let mut oracle = PlantedOracle::from_nodes(&full, &planted, 1, 0);
            let cfg = MiningConfig {
                specialization_ratio: ratio,
                ..Default::default()
            };
            let out = run_vertical(&mut dag, &mut oracle, crowd::MemberId(0), &cfg);
            assert!(out.complete);
            (out.questions, out.msps.len())
        };
        let (q0, m0) = run(0.0);
        let (q1, m1) = run(1.0);
        assert_eq!(m0, m1); // same MSP count either way
        assert!(
            q1 <= q0,
            "spec questions should not increase count: {q1} vs {q0}"
        );
    }

    #[test]
    fn question_budget_stops_early() {
        let d = synthetic_domain(150, 6, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 6, true, MspDistribution::Uniform, 2);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::from_nodes(&full, &planted, 1, 0);
        let cfg = MiningConfig {
            max_questions: Some(10),
            ..Default::default()
        };
        let out = run_vertical(&mut dag, &mut oracle, crowd::MemberId(0), &cfg);
        assert!(!out.complete);
        assert!(out.questions <= 10);
    }

    #[test]
    fn member_leaving_stops_the_run() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let [d1, _] = figure1::personal_dbs(&ont);
        let member = SimulatedMember::new(
            PersonalDb::from_transactions(d1),
            MemberBehavior {
                session_limit: Some(3),
                ..Default::default()
            },
            AnswerModel::Exact,
            0,
        );
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![member]);
        let out = run_vertical(
            &mut dag,
            &mut crowd,
            crowd::MemberId(0),
            &MiningConfig::default(),
        );
        assert!(!out.complete);
        assert_eq!(out.questions, 3);
    }

    #[test]
    fn events_are_monotone_in_questions() {
        let d = synthetic_domain(100, 5, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 5, true, MspDistribution::Uniform, 4);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::from_nodes(&full, &planted, 1, 0);
        let out = run_vertical(
            &mut dag,
            &mut oracle,
            crowd::MemberId(0),
            &MiningConfig::default(),
        );
        let mut last_q = 0;
        let mut last_total = 0;
        for e in &out.events {
            assert!(e.question >= last_q);
            last_q = e.question;
            if let DiscoveryKind::ValidClassified { total } = e.kind {
                assert!(total >= last_total);
                last_total = total;
            }
        }
        // everything classified at the end
        let n_msp_events = out
            .events
            .iter()
            .filter(|e| matches!(e.kind, DiscoveryKind::Msp { .. }))
            .count();
        assert_eq!(n_msp_events, out.msps.len());
    }

    #[test]
    fn pruning_answers_classify_without_extra_questions() {
        let d = synthetic_domain(150, 6, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 4, true, MspDistribution::Uniform, 6);
        let patterns: Vec<_> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();

        let run = |pruning: f64| {
            let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
            let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 1, 0);
            oracle.pruning_prob = pruning;
            let out = run_vertical(
                &mut dag,
                &mut oracle,
                crowd::MemberId(0),
                &MiningConfig::default(),
            );
            assert!(out.complete, "run with pruning={pruning} incomplete");
            (out.questions, out.msps.len())
        };
        let (q0, m0) = run(0.0);
        let (q1, m1) = run(0.5);
        assert_eq!(m0, m1);
        // pruning can only help or tie (it classifies cones across slots)
        assert!(q1 <= q0 + 2, "pruning hurt: {q1} vs {q0}");
    }
}
