//! The lazily generated assignment DAG (Section 5 / the paper's
//! `AssignGenerator` module, Section 6.1).
//!
//! Nodes are interned canonical [`Assignment`]s from the expanded set `𝒜`;
//! edges point from an assignment to its immediate successors (one
//! specialization step). Children are generated **on demand** — the lazy
//! strategy the paper credits with generating "less than 1% of the nodes"
//! with multiplicities compared to an eager generator — via three moves:
//!
//! 1. *replace*: specialize one value of one slot by an immediate child in
//!    the vocabulary order;
//! 2. *add* (multiplicity combination): insert a new most-general
//!    admissible value incomparable to the slot's current antichain
//!    (Proposition 5.1's lazy combination);
//! 3. *MORE refinement*: specialize a component of a MORE fact. New MORE
//!    facts themselves enter the DAG only through crowd-volunteered tips
//!    ([`Dag::attach_more_tip`]), mirroring the prototype's *more* button.

// audit: allow-file(D4, node ids are arena indices minted by this module; every access goes through a handle the same arena produced)
use crate::assignment::{value_leq, Assignment, Slot};
use crate::fingerprint::{self, FingerprintSpace};
use crate::validity::ValidityIndex;
use oassis_ql::{BaseAssignment, BoundQuery, Value};
use ontology::{Fact, Vocabulary};
use std::collections::HashMap;

/// Identifier of a DAG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Placeholder id for op-log entries that carry no node payload
    /// (never a valid index into a [`Dag`]).
    pub const SENTINEL: NodeId = NodeId(u32::MAX);

    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One materialized DAG node. Edges live outside the node in flat
/// struct-of-arrays arenas ([`Dag::children_if_generated`],
/// [`Dag::parents`]); the node itself carries only the per-node payload.
#[derive(Debug)]
pub struct Node {
    /// The canonical assignment.
    pub assignment: Assignment,
    /// Whether the assignment itself is valid (`φ ∈ 𝒜_valid`), as opposed
    /// to merely being a generalization of a valid assignment. Figure 3
    /// draws invalid nodes dashed; the final output is `M ∩ 𝒜_valid`.
    pub valid: bool,
}

/// Sentinel for "no entry" in the edge arenas (spans and block links).
const NONE32: u32 = u32::MAX;

/// Parents per unrolled block of the parent arena. Parent lists are
/// append-only and interleave across nodes (every expansion registers the
/// expanding node as parent of each child), so contiguous CSR spans are
/// impossible without relocation — unrolled linked blocks keep appends
/// O(1) while still walking flat memory six entries at a time.
const PAR_BLOCK: usize = 6;

#[derive(Debug)]
struct ParentBlock {
    items: [NodeId; PAR_BLOCK],
    len: u32,
    next: u32,
}

/// In-order iterator over a node's materialized parents.
///
/// Insertion order is preserved: classification scans short-circuit while
/// *stamping* sticky per-node verdicts, so the order predecessors are
/// visited in is observable — it must match the historical per-node `Vec`
/// exactly.
#[derive(Clone)]
pub struct ParentsIter<'d> {
    blocks: &'d [ParentBlock],
    cur: u32,
    pos: u32,
}

impl Iterator for ParentsIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        while self.cur != NONE32 {
            // PANIC-OK: block links only ever hold indices of pushed blocks.
            let b = &self.blocks[self.cur as usize];
            if self.pos < b.len {
                // PANIC-OK: `len` never exceeds PAR_BLOCK.
                let id = b.items[self.pos as usize];
                self.pos += 1;
                return Some(id);
            }
            self.cur = b.next;
            self.pos = 0;
        }
        None
    }
}

/// Generation statistics (for the lazy-vs-eager experiment, Section 6.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Nodes materialized.
    pub nodes_created: usize,
    /// Nodes whose children were generated.
    pub nodes_expanded: usize,
    /// Calls to the validity oracle (`admits`).
    pub admits_calls: usize,
}

/// The lazily generated assignment DAG for one query.
pub struct Dag<'a> {
    q: &'a BoundQuery,
    vocab: &'a Vocabulary,
    validity: ValidityIndex,
    nodes: Vec<Node>,
    index: HashMap<Assignment, NodeId>,
    roots: Vec<NodeId>,
    stats: GenStats,
    /// Bit layout of the per-node closure fingerprints.
    fp_space: FingerprintSpace,
    /// Flat fingerprint storage, [`FingerprintSpace::words_per_node`]
    /// words per node, filled at [`intern`](Self::intern).
    fps: Vec<u64>,
    /// One-word OR-fold summary per node (not-subset prefilter).
    fp_summaries: Vec<u64>,
    /// Per-node `(start, len)` span into [`Self::child_edges`];
    /// `start == NONE32` means children were not generated yet.
    child_span: Vec<(u32, u32)>,
    /// CSR-style flat child-edge arena. A span may be abandoned (dead
    /// segment) when a MORE tip forces an append to a non-tail span — the
    /// node's span then points at a relocated copy at the arena tail.
    child_edges: Vec<NodeId>,
    /// Per-node `(head, tail)` block indices into [`Self::parent_blocks`];
    /// `NONE32` head means no parents recorded.
    parent_link: Vec<(u32, u32)>,
    /// Unrolled-linked-block parent arena (insertion order preserved).
    parent_blocks: Vec<ParentBlock>,
    /// When false, add-value moves (multiplicities) are suppressed — used
    /// to measure the paper's "DAG size without multiplicities".
    allow_multiplicities: bool,
    /// Scratch buffers reused across [`children`](Self::children) /
    /// [`add_candidates`](Self::add_candidates) calls; node expansion is
    /// the mining inner loop, and re-allocating these per call dominated
    /// its allocation profile.
    scratch_succs: Vec<Assignment>,
    scratch_queue: Vec<Value>,
    scratch_seen: std::collections::HashSet<Value>,
}

impl<'a> Dag<'a> {
    /// Builds the DAG skeleton from the WHERE-clause output: computes the
    /// validity index and materializes the root (most general) nodes.
    pub fn new(q: &'a BoundQuery, vocab: &'a Vocabulary, base: &[BaseAssignment]) -> Self {
        let validity = ValidityIndex::new(q, vocab, base);
        let fp_space = FingerprintSpace::new(vocab, validity.slots().len());
        let mut dag = Dag {
            q,
            vocab,
            validity,
            nodes: Vec::new(),
            index: HashMap::new(),
            roots: Vec::new(),
            stats: GenStats::default(),
            fp_space,
            fps: Vec::new(),
            fp_summaries: Vec::new(),
            child_span: Vec::new(),
            child_edges: Vec::new(),
            parent_link: Vec::new(),
            parent_blocks: Vec::new(),
            allow_multiplicities: true,
            scratch_succs: Vec::new(),
            scratch_queue: Vec::new(),
            scratch_seen: std::collections::HashSet::new(),
        };
        dag.make_roots();
        dag
    }

    /// Suppresses multiplicity (add-value) successors.
    pub fn without_multiplicities(mut self) -> Self {
        self.allow_multiplicities = false;
        self
    }

    /// The query this DAG was built for.
    pub fn query(&self) -> &'a BoundQuery {
        self.q
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &'a Vocabulary {
        self.vocab
    }

    /// The validity index.
    pub fn validity(&self) -> &ValidityIndex {
        &self.validity
    }

    /// The root (minimal) nodes.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// A materialized node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of materialized nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes are materialized (empty valid set).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Generation statistics.
    pub fn stats(&self) -> GenStats {
        self.stats
    }

    /// All node ids materialized so far.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The fingerprint bit layout.
    pub fn fp_space(&self) -> &FingerprintSpace {
        &self.fp_space
    }

    /// The closure fingerprint of a node.
    #[inline]
    pub fn fp_words(&self, id: NodeId) -> &[u64] {
        let w = self.fp_space.words_per_node();
        &self.fps[id.index() * w..(id.index() + 1) * w]
    }

    /// The one-word fingerprint summary of a node.
    #[inline]
    pub fn fp_summary(&self, id: NodeId) -> u64 {
        self.fp_summaries[id.index()]
    }

    /// `a ≤ b` on node assignments: summary prefilter, then word-parallel
    /// subset test on the slot fingerprints, then the exact MORE-fact
    /// condition (facts are not fingerprinted).
    pub fn leq(&self, a: NodeId, b: NodeId) -> bool {
        self.view().leq(a, b)
    }

    /// A read-only, [`Sync`] snapshot of the materialized DAG state for
    /// cross-thread scans. The view borrows only the interior-mutability-free
    /// parts of the DAG (nodes, fingerprints, vocabulary) — everything the
    /// order tests and classification lookups need — and deliberately
    /// excludes the memoized [`ValidityIndex`] caches, which is why child
    /// *generation* stays on the owning thread.
    pub fn view(&self) -> DagView<'_> {
        DagView {
            vocab: self.vocab,
            nodes: &self.nodes,
            fp_space: &self.fp_space,
            fps: &self.fps,
            fp_summaries: &self.fp_summaries,
            child_span: &self.child_span,
            child_edges: &self.child_edges,
            parent_link: &self.parent_link,
            parent_blocks: &self.parent_blocks,
        }
    }

    fn make_roots(&mut self) {
        if self.validity.num_tuples() == 0 && !self.validity.slots().iter().any(|s| s.free) {
            return; // empty valid set ⇒ empty DAG
        }
        // Root slot values: the minimal closure values; slots whose
        // multiplicity admits zero values start empty.
        let per_slot: Vec<Vec<Vec<Value>>> = (0..self.validity.slots().len())
            .map(|si| {
                let slot = &self.validity.slots()[si];
                if slot.mult.min() == 0 {
                    vec![Vec::new()]
                } else {
                    self.validity
                        .minimal_values(Slot(si as u16))
                        .iter()
                        .map(|&v| vec![v])
                        .collect()
                }
            })
            .collect();
        // cross product of per-slot root choices
        let mut combos: Vec<Vec<Vec<Value>>> = vec![Vec::new()];
        for choices in per_slot {
            let mut next = Vec::new();
            for c in &combos {
                for choice in &choices {
                    let mut c2 = c.clone();
                    c2.push(choice.clone());
                    next.push(c2);
                }
            }
            combos = next;
        }
        for values in combos {
            let a = Assignment::new(self.vocab, values, Vec::new());
            self.stats.admits_calls += 1;
            if self.validity.admits(self.vocab, &a) {
                let id = self.intern(a);
                if !self.roots.contains(&id) {
                    self.roots.push(id);
                }
            }
        }
    }

    /// Interns an assignment, materializing a node if new.
    pub fn intern(&mut self, a: Assignment) -> NodeId {
        if let Some(&id) = self.index.get(&a) {
            return id;
        }
        let valid = self.validity.is_valid(&a);
        let id = NodeId(self.nodes.len() as u32);
        let start = self.fps.len();
        self.fps.resize(start + self.fp_space.words_per_node(), 0);
        self.fp_space.write(self.vocab, &a, &mut self.fps[start..]);
        self.fp_summaries
            .push(fingerprint::summarize(&self.fps[start..]));
        self.nodes.push(Node {
            assignment: a.clone(),
            valid,
        });
        self.child_span.push((NONE32, 0));
        self.parent_link.push((NONE32, NONE32));
        self.index.insert(a, id);
        self.stats.nodes_created += 1;
        id
    }

    /// The generated children of `id` as a flat arena slice, if
    /// [`Self::children`] / [`Self::ensure_children`] ran for it.
    #[inline]
    pub fn children_if_generated(&self, id: NodeId) -> Option<&[NodeId]> {
        let (s, l) = self.child_span[id.index()];
        if s == NONE32 {
            None
        } else {
            Some(&self.child_edges[s as usize..(s + l) as usize])
        }
    }

    /// The materialized parents of `id`, in insertion order.
    #[inline]
    pub fn parents(&self, id: NodeId) -> ParentsIter<'_> {
        ParentsIter {
            blocks: &self.parent_blocks,
            cur: self.parent_link[id.index()].0,
            pos: 0,
        }
    }

    /// Appends `parent` to `child`'s parent list unless already present.
    fn add_parent(&mut self, child: NodeId, parent: NodeId) {
        let (head, tail) = self.parent_link[child.index()];
        if head != NONE32 {
            let mut cur = head;
            while cur != NONE32 {
                // PANIC-OK: block links only hold indices of pushed blocks.
                let b = &self.parent_blocks[cur as usize];
                if b.items[..b.len as usize].contains(&parent) {
                    return;
                }
                cur = b.next;
            }
            // PANIC-OK: a non-NONE32 head implies a valid tail block.
            let tb = &mut self.parent_blocks[tail as usize];
            if (tb.len as usize) < PAR_BLOCK {
                tb.items[tb.len as usize] = parent;
                tb.len += 1;
                return;
            }
        }
        let nb = self.parent_blocks.len() as u32;
        self.parent_blocks.push(ParentBlock {
            items: [parent; PAR_BLOCK],
            len: 1,
            next: NONE32,
        });
        if head == NONE32 {
            self.parent_link[child.index()] = (nb, nb);
        } else {
            // PANIC-OK: tail is a valid block index when head is set.
            self.parent_blocks[tail as usize].next = nb;
            self.parent_link[child.index()].1 = nb;
        }
    }

    /// Looks up a node by assignment without materializing.
    pub fn lookup(&self, a: &Assignment) -> Option<NodeId> {
        self.index.get(a).copied()
    }

    /// The immediate successors of `id`, generating them on first call.
    ///
    /// Compatibility wrapper that clones the arena span; hot paths use
    /// [`Self::ensure_children`] and borrow the slice instead.
    pub fn children(&mut self, id: NodeId) -> Vec<NodeId> {
        let (s, l) = self.ensure_children(id);
        self.child_edges[s as usize..(s + l) as usize].to_vec()
    }

    /// Generates the children of `id` if needed and returns their
    /// `(start, len)` span in the child-edge arena. The span stays valid
    /// for the life of the DAG (a MORE-tip append may relocate it, but
    /// only to a superset — resolve via [`Self::child_slice`] when fresh).
    pub fn ensure_children(&mut self, id: NodeId) -> (u32, u32) {
        let (s, l) = self.child_span[id.index()];
        if s != NONE32 {
            return (s, l);
        }
        let assignment = self.nodes[id.index()].assignment.clone();
        let mut succs = std::mem::take(&mut self.scratch_succs);
        self.successor_assignments(&assignment, &mut succs);
        let start = self.child_edges.len() as u32;
        for a in succs.drain(..) {
            let cid = self.intern(a);
            if cid != id && !self.child_edges[start as usize..].contains(&cid) {
                self.child_edges.push(cid);
                self.add_parent(cid, id);
            }
        }
        let len = self.child_edges.len() as u32 - start;
        self.child_span[id.index()] = (start, len);
        self.stats.nodes_expanded += 1;
        self.scratch_succs = succs;
        (start, len)
    }

    /// Resolves a span returned by [`Self::ensure_children`].
    #[inline]
    pub fn child_slice(&self, span: (u32, u32)) -> &[NodeId] {
        &self.child_edges[span.0 as usize..(span.0 + span.1) as usize]
    }

    /// Whether children were already generated.
    pub fn is_expanded(&self, id: NodeId) -> bool {
        self.child_span[id.index()].0 != NONE32
    }

    /// Generates the immediate-successor assignments of `a` within `𝒜`,
    /// appending into the caller-provided buffer (cleared first).
    fn successor_assignments(&mut self, a: &Assignment, out: &mut Vec<Assignment>) {
        out.clear();
        let vocab = self.vocab;
        let nslots = self.validity.slots().len();
        // 1. replace: one vocabulary child step on one value
        for si in 0..nslots {
            let slot = Slot(si as u16);
            for &v in a.slot(slot) {
                for c in value_children(vocab, v) {
                    let cand = a.with_replaced(vocab, slot, v, c);
                    if cand != *a {
                        self.stats.admits_calls += 1;
                        if self.validity.admits(vocab, &cand) {
                            out.push(cand);
                        }
                    }
                }
            }
        }
        // 2. add (multiplicity combination)
        if self.allow_multiplicities {
            for si in 0..nslots {
                let slot = Slot(si as u16);
                let info = &self.validity.slots()[si];
                let len = a.slot(slot).len();
                if info.mult.max().is_some_and(|m| len >= m) {
                    continue;
                }
                for v in self.add_candidates(a, slot) {
                    out.push(a.with_value(vocab, slot, v));
                }
            }
        }
        // 3. MORE-fact component specialization
        for &f in a.more() {
            for g in self.fact_children(f) {
                let cand = a.with_more_replaced(vocab, f, g);
                if cand != *a {
                    out.push(cand);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    fn fact_children(&self, f: Fact) -> Vec<Fact> {
        let mut out = Vec::new();
        for &s in self.vocab.elem_children(f.subject) {
            out.push(Fact::new(s, f.rel, f.object));
        }
        for &r in self.vocab.rel_children(f.rel) {
            out.push(Fact::new(f.subject, r, f.object));
        }
        for &o in self.vocab.elem_children(f.object) {
            out.push(Fact::new(f.subject, f.rel, o));
        }
        out
    }

    /// Most-general admissible values incomparable to the slot's current
    /// antichain — the immediate "add a value" successors. BFS from the
    /// slot's minimal values; subtrees are pruned on comparability or
    /// inadmissibility (both are inherited downward).
    fn add_candidates(&mut self, a: &Assignment, slot: Slot) -> Vec<Value> {
        let vocab = self.vocab;
        let existing = a.slot(slot);
        let mut out = Vec::new();
        let mut queue = std::mem::take(&mut self.scratch_queue);
        let mut seen = std::mem::take(&mut self.scratch_seen);
        queue.clear();
        seen.clear();
        queue.extend_from_slice(self.validity.minimal_values(slot));
        seen.extend(queue.iter().copied());
        while let Some(v) = queue.pop() {
            if existing.iter().any(|&w| value_leq(vocab, w, v)) {
                // v (or everything below it) is dominated-by/equal-to an
                // existing value's specialization cone: adding it is a
                // replace-move, not an add — skip the subtree.
                continue;
            }
            if existing.iter().any(|&w| value_leq(vocab, v, w)) {
                // v is more general than an existing value: adding it
                // collapses; descend to find incomparable children.
                for c in value_children(vocab, v) {
                    if seen.insert(c) {
                        queue.push(c);
                    }
                }
                continue;
            }
            // incomparable: admissible ⇒ minimal add; inadmissible ⇒ the
            // whole cone is inadmissible (𝒜 is downward closed) — prune.
            let cand = a.with_value(vocab, slot, v);
            self.stats.admits_calls += 1;
            if self.validity.admits(vocab, &cand) {
                out.push(v);
            }
        }
        self.scratch_queue = queue;
        self.scratch_seen = seen;
        out.sort_unstable();
        out
    }

    /// Attaches a crowd-volunteered MORE fact as a successor of `id`
    /// (the prototype's *more* button). Returns the new node, or `None`
    /// when the extension collapses to the same assignment or the query
    /// did not request MORE facts.
    pub fn attach_more_tip(&mut self, id: NodeId, fact: Fact) -> Option<NodeId> {
        if !self.q.more {
            return None;
        }
        let a = self.nodes[id.index()].assignment.clone();
        let extended = a.with_more(self.vocab, fact);
        if extended == a {
            return None;
        }
        let cid = self.intern(extended);
        // register the edge on both sides (keep children coherent whether
        // or not they were already generated; a volunteered tip is not
        // guaranteed to be rediscovered as a regular successor)
        let span = self.ensure_children(id);
        if !self.child_slice(span).contains(&cid) {
            self.append_child(id, cid);
        }
        self.add_parent(cid, id);
        Some(cid)
    }

    /// Appends one child to an already-generated span. If the span is not
    /// at the arena tail it is relocated there (the old segment becomes a
    /// dead gap — tips are rare, contiguity of every live span is not).
    fn append_child(&mut self, id: NodeId, cid: NodeId) {
        let (s, l) = self.child_span[id.index()];
        if (s + l) as usize == self.child_edges.len() {
            self.child_edges.push(cid);
            self.child_span[id.index()] = (s, l + 1);
        } else {
            let new_start = self.child_edges.len() as u32;
            self.child_edges
                .extend_from_within(s as usize..(s + l) as usize);
            self.child_edges.push(cid);
            self.child_span[id.index()] = (new_start, l + 1);
        }
    }

    /// Fully materializes the DAG reachable from the roots and returns the
    /// node count — the paper's "DAG size" statistic. Use
    /// [`without_multiplicities`](Self::without_multiplicities) first to
    /// match the paper's "without multiplicities" counts.
    pub fn materialize_all(&mut self) -> usize {
        let mut cursor = 0usize;
        // roots already materialized; expand breadth-first
        while cursor < self.nodes.len() {
            let id = NodeId(cursor as u32);
            self.ensure_children(id);
            cursor += 1;
        }
        self.nodes.len()
    }
}

/// A read-only view of a [`Dag`]'s materialized nodes and fingerprints.
///
/// Unlike `&Dag`, a `DagView` is [`Sync`]: it borrows none of the DAG's
/// generation-side scratch or the validity index's memoization cells, so
/// it can be shared freely across `minipool` workers for order tests and
/// frozen classification sweeps. It cannot expand nodes — materialization
/// is sequential by design (interning and the validity oracle are serial).
#[derive(Clone, Copy)]
pub struct DagView<'d> {
    vocab: &'d Vocabulary,
    nodes: &'d [Node],
    fp_space: &'d FingerprintSpace,
    fps: &'d [u64],
    fp_summaries: &'d [u64],
    child_span: &'d [(u32, u32)],
    child_edges: &'d [NodeId],
    parent_link: &'d [(u32, u32)],
    parent_blocks: &'d [ParentBlock],
}

impl<'d> DagView<'d> {
    /// The vocabulary.
    pub fn vocab(&self) -> &'d Vocabulary {
        self.vocab
    }

    /// A materialized node.
    pub fn node(&self, id: NodeId) -> &'d Node {
        &self.nodes[id.index()]
    }

    /// Number of materialized nodes in the underlying DAG at view time.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the view covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids covered by this view.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The fingerprint bit layout.
    pub fn fp_space(&self) -> &'d FingerprintSpace {
        self.fp_space
    }

    /// The closure fingerprint of a node.
    #[inline]
    pub fn fp_words(&self, id: NodeId) -> &'d [u64] {
        let w = self.fp_space.words_per_node();
        &self.fps[id.index() * w..(id.index() + 1) * w]
    }

    /// The one-word fingerprint summary of a node.
    #[inline]
    pub fn fp_summary(&self, id: NodeId) -> u64 {
        self.fp_summaries[id.index()]
    }

    /// The generated children of `id` as an arena slice, if generated at
    /// view time.
    #[inline]
    pub fn children_if_generated(&self, id: NodeId) -> Option<&'d [NodeId]> {
        let (s, l) = self.child_span[id.index()];
        if s == NONE32 {
            None
        } else {
            Some(&self.child_edges[s as usize..(s + l) as usize])
        }
    }

    /// The materialized parents of `id`, in insertion order.
    #[inline]
    pub fn parents(&self, id: NodeId) -> ParentsIter<'d> {
        ParentsIter {
            blocks: self.parent_blocks,
            cur: self.parent_link[id.index()].0,
            pos: 0,
        }
    }

    /// `a ≤ b`; same test as [`Dag::leq`] (which delegates here).
    pub fn leq(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let res = self.fp_summaries[a.index()] & !self.fp_summaries[b.index()] == 0
            && fingerprint::subset(self.fp_words(a), self.fp_words(b))
            && self.more_leq(a, b);
        debug_assert_eq!(
            res,
            self.nodes[a.index()]
                .assignment
                .leq(self.vocab, &self.nodes[b.index()].assignment)
        );
        res
    }

    fn more_leq(&self, a: NodeId, b: NodeId) -> bool {
        let am = self.nodes[a.index()].assignment.more();
        if am.is_empty() {
            return true;
        }
        let bm = self.nodes[b.index()].assignment.more();
        am.iter()
            .all(|&f| bm.iter().any(|&g| self.vocab.fact_leq(f, g)))
    }
}

/// The immediate vocabulary children of a value, as an iterator borrowing
/// only the vocabulary (no per-call `Vec`; node expansion calls this in
/// its innermost loops).
fn value_children(vocab: &Vocabulary, v: Value) -> impl Iterator<Item = Value> + '_ {
    let (elems, rels): (&[_], &[_]) = match v {
        Value::Elem(e) => (vocab.elem_children(e), &[]),
        Value::Rel(r) => (&[], vocab.rel_children(r)),
    };
    elems
        .iter()
        .map(|&c| Value::Elem(c))
        .chain(rels.iter().map(|&c| Value::Rel(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};
    use ontology::domains::figure1;

    fn dag_for<'a>(ont: &'a ontology::Ontology, b: &'a BoundQuery) -> Dag<'a> {
        let base = evaluate_where(b, ont, MatchMode::Exact);
        Dag::new(b, ont.vocab(), &base)
    }

    fn name_of(dag: &Dag, id: NodeId, slot: usize) -> Vec<String> {
        dag.node(id)
            .assignment
            .slot(Slot(slot as u16))
            .iter()
            .map(|&v| match v {
                Value::Elem(e) => dag.vocab().elem_name(e).to_owned(),
                Value::Rel(r) => dag.vocab().rel_name(r).to_owned(),
            })
            .collect()
    }

    #[test]
    fn single_root_at_thing_thing() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let dag = dag_for(&ont, &b);
        assert_eq!(dag.roots().len(), 1);
        let r = dag.roots()[0];
        assert_eq!(name_of(&dag, r, 0), vec!["Thing"]);
        assert_eq!(name_of(&dag, r, 1), vec!["Thing"]);
        assert!(!dag.node(r).valid);
    }

    #[test]
    fn children_specialize_one_step() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let mut dag = dag_for(&ont, &b);
        let r = dag.roots()[0];
        let kids = dag.children(r);
        // (Thing,Thing) → (Place,Thing) and (Thing,Activity): only
        // admissible branches survive (x must generalize an attraction,
        // y an activity).
        let mut rendered: Vec<(Vec<String>, Vec<String>)> = kids
            .iter()
            .map(|&k| (name_of(&dag, k, 0), name_of(&dag, k, 1)))
            .collect();
        rendered.sort();
        assert_eq!(
            rendered,
            vec![
                (vec!["Place".to_owned()], vec!["Thing".to_owned()]),
                (vec!["Thing".to_owned()], vec!["Activity".to_owned()]),
            ]
        );
    }

    #[test]
    fn materialized_count_matches_closure_product() {
        // x-closure (8) × y-closure (14: 13 + Thing) at multiplicity 1.
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let mut dag = dag_for(&ont, &b).without_multiplicities();
        let n = dag.materialize_all();
        // not a full product: e.g. (Madison Square, …) inadmissible; but
        // every product of closure values that admits is reachable.
        // x closure: {CP, BZ, Park, Zoo, Outdoor, Attraction, Place, Thing}
        // y closure: 13 activity values + Thing = 14 ⇒ 8 × 14 = 112.
        assert_eq!(n, 112);
    }

    #[test]
    fn valid_nodes_are_marked() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let mut dag = dag_for(&ont, &b);
        dag.materialize_all();
        let valid: Vec<NodeId> = dag.node_ids().filter(|&i| dag.node(i).valid).collect();
        // 2 x-instances × 13 y-classes = 26 valid mult-1 nodes, plus valid
        // multiplicity combinations.
        let mult1 = valid
            .iter()
            .filter(|&&i| dag.node(i).assignment.is_base())
            .count();
        assert_eq!(mult1, 26);
    }

    #[test]
    fn add_candidates_produce_antichains() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let mut dag = dag_for(&ont, &b);
        // (Central Park, {Ball Game}) should get an add-successor carrying
        // an incomparable second y-value (e.g. most-general incomparable
        // admissible: Food / Biking / Water Sport / Feed a Monkey ancestors)
        let v = ont.vocab();
        let a = Assignment::new(
            v,
            vec![
                vec![Value::Elem(v.elem_id("Central Park").unwrap())],
                vec![Value::Elem(v.elem_id("Ball Game").unwrap())],
            ],
            vec![],
        );
        let id = dag.intern(a);
        let kids = dag.children(id);
        // find a multiplicity-2 child
        let pair_kids: Vec<Vec<String>> = kids
            .iter()
            .filter(|&&k| dag.node(k).assignment.slot(Slot(1)).len() == 2)
            .map(|&k| name_of(&dag, k, 1))
            .collect();
        assert!(!pair_kids.is_empty());
        for names in &pair_kids {
            assert!(names.contains(&"Ball Game".to_owned()));
        }
        // added values are most-general: Biking and Water Sport and Food
        // and Feed a Monkey are the incomparable frontier under Activity
        let added: Vec<String> = pair_kids
            .iter()
            .flat_map(|n| n.iter().cloned())
            .filter(|n| n != "Ball Game")
            .collect();
        assert!(added.contains(&"Biking".to_owned()));
        assert!(added.contains(&"Food".to_owned()));
        assert!(!added.contains(&"Basketball".to_owned())); // not minimal
    }

    #[test]
    fn children_are_strict_successors() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let mut dag = dag_for(&ont, &b);
        let r = dag.roots()[0];
        let mut frontier = vec![r];
        for _ in 0..3 {
            let mut next = Vec::new();
            for id in frontier {
                for c in dag.children(id) {
                    assert!(dag.leq(id, c), "child not ≥ parent");
                    assert!(!dag.leq(c, id), "child equals parent");
                    next.push(c);
                }
            }
            frontier = next;
        }
    }

    #[test]
    fn attach_more_tip_creates_successor() {
        let ont = figure1::ontology();
        let q = parse(figure1::SAMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let v = ont.vocab();
        let a = Assignment::new(
            v,
            vec![
                vec![Value::Elem(v.elem_id("Central Park").unwrap())],
                vec![Value::Elem(v.elem_id("Biking").unwrap())],
                vec![Value::Elem(v.elem_id("Maoz Veg").unwrap())],
            ],
            vec![],
        );
        let id = dag.intern(a);
        let tip = v.fact("Rent Bikes", "doAt", "Boathouse").unwrap();
        let cid = dag.attach_more_tip(id, tip).unwrap();
        assert!(dag.leq(id, cid));
        assert_eq!(dag.node(cid).assignment.more(), &[tip]);
        assert!(dag.children(id).contains(&cid));
        // the extension is still valid (MORE is part of the query)
        assert!(dag.node(cid).valid);
    }

    #[test]
    fn more_tip_rejected_when_query_has_no_more() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let mut dag = dag_for(&ont, &b);
        let r = dag.roots()[0];
        let tip = ont.vocab().fact("Rent Bikes", "doAt", "Boathouse").unwrap();
        assert!(dag.attach_more_tip(r, tip).is_none());
    }

    #[test]
    fn empty_valid_set_gives_empty_dag() {
        let ont = figure1::ontology();
        // Swimming Pool has no child-friendly instances inside NYC
        let src = r#"
SELECT FACT-SETS
WHERE
  $x instanceOf "Swimming Pool".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.2
"#;
        let q = parse(src).unwrap();
        let b = bind(&q, &ont).unwrap();
        let dag = dag_for(&ont, &b);
        assert!(dag.is_empty());
        assert!(dag.roots().is_empty());
    }

    #[test]
    fn lazy_generation_creates_fewer_nodes_than_full() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let mut full = dag_for(&ont, &b);
        full.materialize_all();
        let full_n = full.len();
        let lazy = dag_for(&ont, &b);
        assert!(lazy.len() < full_n / 2, "{} vs {}", lazy.len(), full_n);
    }
}
