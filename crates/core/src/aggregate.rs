//! Black-box answer aggregation (Section 4.2).
//!
//! "Given a set of answers from different crowd members to some question,
//! we assume a black-box aggregator that decides (i) whether enough
//! answers have been gathered and (ii) whether the assignment in question
//! is significant or not." The aggregator used in the paper's experiments
//! required 5 answers and compared their average to the threshold
//! ([`FixedSampleAggregator`]); alternatives can weight members by trust
//! ([`TrustWeightedAggregator`]) or stop early when the undecided answers
//! cannot change the outcome ([`EarlyDecisionAggregator`]).

/// The aggregator's decision for one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggVerdict {
    /// Enough answers; average support ≥ Θ.
    Significant,
    /// Enough answers; average support < Θ.
    Insignificant,
    /// "not enough answers have been collected … and no inference takes
    /// place."
    Undecided,
}

/// A black-box aggregation policy over the answers collected for one
/// assignment. `answers` are `(member, reported support)` pairs in arrival
/// order.
pub trait Aggregator {
    /// Decides from the answers gathered so far.
    fn verdict(&self, answers: &[(crowd::MemberId, f64)], threshold: f64) -> AggVerdict;
}

/// The paper's experimental black box: a fixed sample of `sample_size`
/// answers per assignment; significant iff the average exceeds Θ.
#[derive(Debug, Clone, Copy)]
pub struct FixedSampleAggregator {
    /// Answers required before deciding (the paper used 5).
    pub sample_size: usize,
}

impl Default for FixedSampleAggregator {
    fn default() -> Self {
        FixedSampleAggregator { sample_size: 5 }
    }
}

impl Aggregator for FixedSampleAggregator {
    fn verdict(&self, answers: &[(crowd::MemberId, f64)], threshold: f64) -> AggVerdict {
        if answers.len() < self.sample_size {
            return AggVerdict::Undecided;
        }
        let avg: f64 = answers.iter().map(|&(_, s)| s).sum::<f64>() / answers.len() as f64;
        if avg >= threshold {
            AggVerdict::Significant
        } else {
            AggVerdict::Insignificant
        }
    }
}

/// Decides as soon as the remaining answers cannot flip the outcome
/// (supports are bounded in `[0, 1]`), with the same sample budget.
#[derive(Debug, Clone, Copy)]
pub struct EarlyDecisionAggregator {
    /// Maximum answers per assignment.
    pub sample_size: usize,
}

impl Aggregator for EarlyDecisionAggregator {
    fn verdict(&self, answers: &[(crowd::MemberId, f64)], threshold: f64) -> AggVerdict {
        let n = self.sample_size;
        let k = answers.len();
        let sum: f64 = answers.iter().map(|&(_, s)| s).sum();
        if k >= n {
            return if sum / k as f64 >= threshold {
                AggVerdict::Significant
            } else {
                AggVerdict::Insignificant
            };
        }
        let remaining = (n - k) as f64;
        // best / worst possible final averages
        if (sum + 0.0) / n as f64 >= threshold {
            return AggVerdict::Significant; // already over even if rest are 0
        }
        if (sum + remaining) / (n as f64) < threshold {
            return AggVerdict::Insignificant; // can't reach Θ even with all 1s
        }
        AggVerdict::Undecided
    }
}

/// Weights each member's answer by a trust score (defaulting to 1.0),
/// "e.g., an average weighted by trust" (Section 4.2).
#[derive(Debug, Clone, Default)]
pub struct TrustWeightedAggregator {
    /// Answers required before deciding.
    pub sample_size: usize,
    /// Per-member trust weights; missing members weigh 1.0.
    pub trust: std::collections::HashMap<crowd::MemberId, f64>,
}

impl Aggregator for TrustWeightedAggregator {
    fn verdict(&self, answers: &[(crowd::MemberId, f64)], threshold: f64) -> AggVerdict {
        if answers.len() < self.sample_size.max(1) {
            return AggVerdict::Undecided;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for &(m, s) in answers {
            let w = self.trust.get(&m).copied().unwrap_or(1.0);
            num += w * s;
            den += w;
        }
        if den == 0.0 {
            return AggVerdict::Undecided;
        }
        if num / den >= threshold {
            AggVerdict::Significant
        } else {
            AggVerdict::Insignificant
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd::MemberId;

    fn ans(vals: &[f64]) -> Vec<(MemberId, f64)> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| (MemberId(i as u32), v))
            .collect()
    }

    #[test]
    fn fixed_sample_waits_for_quorum() {
        let a = FixedSampleAggregator { sample_size: 5 };
        assert_eq!(a.verdict(&ans(&[1.0; 4]), 0.4), AggVerdict::Undecided);
        assert_eq!(a.verdict(&ans(&[1.0; 5]), 0.4), AggVerdict::Significant);
        assert_eq!(
            a.verdict(&ans(&[0.0, 0.0, 0.25, 0.5, 0.5]), 0.4),
            AggVerdict::Insignificant
        );
        // exactly at threshold counts as significant (≥)
        assert_eq!(a.verdict(&ans(&[0.4; 5]), 0.4), AggVerdict::Significant);
    }

    #[test]
    fn early_decision_short_circuits() {
        let a = EarlyDecisionAggregator { sample_size: 5 };
        // two answers of 1.0 already guarantee avg ≥ 0.4 over 5
        assert_eq!(a.verdict(&ans(&[1.0, 1.0]), 0.4), AggVerdict::Significant);
        // three zeros: even two 1.0s can only reach 0.4 — boundary stays
        // undecided only if it could still reach Θ: (0+2)/5 = 0.4 ≥ 0.4
        assert_eq!(
            a.verdict(&ans(&[0.0, 0.0, 0.0]), 0.4),
            AggVerdict::Undecided
        );
        assert_eq!(
            a.verdict(&ans(&[0.0, 0.0, 0.0, 0.0]), 0.4),
            AggVerdict::Insignificant
        );
    }

    #[test]
    fn early_decision_agrees_with_fixed_at_quorum() {
        let fixed = FixedSampleAggregator { sample_size: 3 };
        let early = EarlyDecisionAggregator { sample_size: 3 };
        for vals in [[0.1, 0.2, 0.3], [0.5, 0.5, 0.5], [0.0, 1.0, 0.3]] {
            assert_eq!(
                fixed.verdict(&ans(&vals), 0.35),
                early.verdict(&ans(&vals), 0.35)
            );
        }
    }

    #[test]
    fn trust_weighting_discounts_spammers() {
        let mut trust = std::collections::HashMap::new();
        trust.insert(MemberId(0), 0.0); // known spammer
        let a = TrustWeightedAggregator {
            sample_size: 2,
            trust,
        };
        // spammer says 1.0, honest member says 0.0 → insignificant
        let answers = vec![(MemberId(0), 1.0), (MemberId(1), 0.0)];
        assert_eq!(a.verdict(&answers, 0.4), AggVerdict::Insignificant);
        // unweighted average would have been 0.5 ≥ 0.4
        let unweighted = FixedSampleAggregator { sample_size: 2 };
        assert_eq!(unweighted.verdict(&answers, 0.4), AggVerdict::Significant);
    }
}
